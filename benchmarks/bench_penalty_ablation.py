"""A3 — ablation: which skipped timing factor contributes what error.

The paper attributes its 5–7 % estimation error to clock-domain
synchronization, SA granting activity and related control timing (section
4, Discussion).  This ablation enables the reference simulator's penalty
knobs one at a time and reports each factor's share of the estimate-vs-
actual gap.  The timed kernel is one single-knob run.
"""

from repro.apps.mp3 import paper_platform
from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import emulate

from conftest import print_once

KNOBS = (
    "grant_latency_ticks",
    "bus_turnaround_ticks",
    "master_handshake_ticks",
    "bu_sync_ticks",
    "ca_decision_ticks",
    "slave_ack_ticks",
)


def run_with(mp3_graph, platform, **overrides):
    return emulate(
        mp3_graph, platform, config=EmulationConfig(**overrides)
    ).execution_time_us


def test_penalty_ablation(benchmark, mp3_graph, platform_3seg):
    reference = EmulationConfig.reference()
    baseline = run_with(mp3_graph, platform_3seg)
    benchmark(run_with, mp3_graph, platform_3seg, grant_latency_ticks=3)

    full = emulate(
        mp3_graph, platform_3seg, config=reference
    ).execution_time_us
    gap = full - baseline

    lines = ["A3 — per-factor contribution to the estimation gap:",
             f"  emulator (all factors skipped): {baseline:9.2f} us",
             f"  reference (all factors on):     {full:9.2f} us  "
             f"(gap {gap:.2f} us, {gap / full:.1%})"]
    contributions = {}
    for knob in KNOBS:
        value = getattr(reference, knob)
        with_knob = run_with(mp3_graph, platform_3seg, **{knob: value})
        delta = with_knob - baseline
        contributions[knob] = delta
        lines.append(
            f"  + {knob:<24} = {value}  ->  {with_knob:9.2f} us "
            f"(+{delta:6.2f} us, {delta / gap:5.1%} of gap)"
        )
    print_once("penalty_ablation", "\n".join(lines))

    # gates: every factor slows execution; factors roughly compose the gap
    assert all(delta >= 0 for delta in contributions.values())
    assert sum(contributions.values()) > 0.5 * gap
    assert gap > 0
    benchmark.extra_info["gap_us"] = round(gap, 2)
    benchmark.extra_info["contributions_us"] = {
        k: round(v, 2) for k, v in contributions.items()
    }
