"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (the experiment ids of DESIGN.md section 4).  The pattern:

* the *timed* part (what pytest-benchmark measures) is the emulation or
  analysis that produces the artifact;
* the regenerated rows/series are printed once per session (run with
  ``pytest benchmarks/ --benchmark-only -s`` to see them) and attached to
  ``benchmark.extra_info`` so they land in saved benchmark JSON.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.apps.mp3 import mp3_decoder_psdf, paper_allocation, paper_platform

_printed: Dict[str, bool] = {}


def print_once(key: str, text: str) -> None:
    """Print a regenerated artifact exactly once per pytest session."""
    if not _printed.get(key):
        _printed[key] = True
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def fmt_row(label: str, paper, measured, unit: str = "") -> str:
    """One paper-vs-measured comparison line."""
    return f"  {label:<38} paper: {paper!s:>12}  measured: {measured!s:>12} {unit}"


@pytest.fixture(scope="session")
def mp3_graph():
    return mp3_decoder_psdf()


@pytest.fixture(scope="session")
def platform_3seg():
    return paper_platform(segment_count=3)


@pytest.fixture(scope="session")
def allocation_3seg():
    return paper_allocation(3)
