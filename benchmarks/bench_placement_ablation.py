"""A2 — ablation: segment count and allocation quality.

Compares the three paper configurations (Fig. 9) against PlaceTool-derived
allocations, and quantifies the cost of a deliberately bad allocation —
the designer's decision loop the emulator exists to support.  The timed
kernel is one design-space exploration pass.
"""

from repro.analysis.dse import explore_design_space
from repro.apps.mp3 import (
    PAPER_CA_FREQUENCY_MHZ,
    paper_allocation,
    paper_platform,
    paper_segment_frequencies_mhz,
)
from repro.emulator.emulator import emulate

from conftest import print_once


def explore(mp3_graph):
    return explore_design_space(
        mp3_graph,
        segment_counts=[2, 3],
        package_sizes=[36],
        segment_frequencies_mhz=paper_segment_frequencies_mhz,
        ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
        extra_allocations=[
            ("paper[2seg]", paper_allocation(2)),
            ("paper[3seg]", paper_allocation(3)),
        ],
    )


def test_placement_ablation(benchmark, mp3_graph):
    points = benchmark(explore, mp3_graph)

    lines = ["A2 — placement / segment-count ablation (s = 36):",
             f"  {'rank':>4} {'segs':>4} {'time (us)':>10}  allocation"]
    for rank, point in enumerate(points, start=1):
        lines.append(
            f"  {rank:>4} {point.segment_count:>4} "
            f"{point.execution_time_us:>10.2f}  "
            f"{point.allocation_source}: {point.allocation}"
        )
    # the deliberately bad allocation: split the hot P0-P1/P8 cluster apart
    bad = paper_allocation(3).moved("P1", 3).moved("P8", 2).moved("P9", 3)
    bad_report = emulate(mp3_graph, paper_platform(3, allocation=bad))
    good_time = min(p.execution_time_us for p in points
                    if p.segment_count == 3)
    lines.append(
        f"  bad allocation ({bad}): {bad_report.execution_time_us:.2f} us "
        f"(best 3-seg: {good_time:.2f} us)"
    )
    # emulation-validated placement: the cost model as filter, the emulator
    # as judge (PlaceTool.solve_emulated)
    from repro.apps.mp3 import paper_segment_frequencies_mhz, PAPER_CA_FREQUENCY_MHZ
    from repro.placement.placetool import PlaceTool

    validated = PlaceTool().solve_emulated(
        mp3_graph, 3,
        segment_frequencies_mhz=paper_segment_frequencies_mhz(3),
        ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
    )
    lines.append(
        f"  emulation-validated placement: {validated.execution_time_us:.2f} us "
        f"({validated.candidates_evaluated} candidates emulated)"
    )
    print_once("placement_ablation", "\n".join(lines))

    # gates: every point ran; the bad allocation is strictly worse; the
    # emulation-validated allocation is at least as good as the paper's
    assert len(points) == 4
    assert bad_report.execution_time_us > good_time
    assert validated.execution_time_us <= good_time + 1e-6
    benchmark.extra_info["best_time_us"] = round(points[0].execution_time_us, 2)
    benchmark.extra_info["bad_alloc_time_us"] = round(
        bad_report.execution_time_us, 2
    )
