"""E7 — BU utilization: useful period vs waiting period.

The paper's Discussion computes, from the emulator's TCTs:
UP12 = 2304, TCT12 = 2336, W̄P12 = 1; UP23 = 144, TCT23 = 146, W̄P23 = 1.
This reproduction matches all six numbers exactly.  The timed kernel is
emulation plus the UP/WP analysis.
"""

from repro.analysis.bu_utilization import bu_utilization
from repro.apps.mp3 import PAPER_BU_ANALYSIS
from repro.emulator.emulator import emulate

from conftest import fmt_row, print_once


def run_analysis(mp3_graph, platform_3seg):
    return bu_utilization(emulate(mp3_graph, platform_3seg))


def test_bu_useful_and_waiting_periods(benchmark, mp3_graph, platform_3seg):
    utilization = benchmark(run_analysis, mp3_graph, platform_3seg)
    by_name = {u.name: u for u in utilization}
    paper = PAPER_BU_ANALYSIS

    lines = ["E7 — BU useful period / waiting period (clock ticks):"]
    lines.append(fmt_row("UP12", paper["UP12"], by_name["BU12"].useful_period))
    lines.append(fmt_row("TCT12", paper["TCT12"], by_name["BU12"].tct))
    lines.append(fmt_row("mean WP12", paper["WP12"],
                         by_name["BU12"].mean_waiting_period))
    lines.append(fmt_row("UP23", paper["UP23"], by_name["BU23"].useful_period))
    lines.append(fmt_row("TCT23", paper["TCT23"], by_name["BU23"].tct))
    lines.append(fmt_row("mean WP23", paper["WP23"],
                         by_name["BU23"].mean_waiting_period))
    print_once("bu_up_wp", "\n".join(lines))

    # gates: exact reproduction of all six numbers
    assert by_name["BU12"].useful_period == paper["UP12"]
    assert by_name["BU12"].tct == paper["TCT12"]
    assert by_name["BU12"].mean_waiting_period == paper["WP12"]
    assert by_name["BU23"].useful_period == paper["UP23"]
    assert by_name["BU23"].tct == paper["TCT23"]
    assert by_name["BU23"].mean_waiting_period == paper["WP23"]
    benchmark.extra_info["wp12"] = by_name["BU12"].mean_waiting_period
    benchmark.extra_info["wp23"] = by_name["BU23"].mean_waiting_period
