"""A4 — extension: activity-based energy comparison across configurations.

The paper argues early configuration decisions *"also improve power
consumption up to some extent"* (section 5) without quantifying; this bench
adds the numbers: per-element energy for the three Fig. 9 configurations
and two package sizes, using the activity model of
:mod:`repro.analysis.power`.  The timed kernel is one emulate+estimate pass.
"""

from repro.analysis.power import estimate_power
from repro.apps.mp3 import paper_platform
from repro.emulator.emulator import SegBusEmulator

from conftest import print_once


def run_power(mp3_graph, segments, package_size):
    emulator = SegBusEmulator.from_models(
        mp3_graph, paper_platform(segments, package_size=package_size)
    )
    emulator.run()
    return estimate_power(emulator.simulation)


def test_power_comparison(benchmark, mp3_graph):
    benchmark(run_power, mp3_graph, 3, 36)

    lines = ["A4 — energy comparison (arbitrary units):",
             f"  {'config':<12} {'runtime(us)':>12} {'dynamic':>10} "
             f"{'static':>10} {'total':>10} {'avg power':>10}"]
    results = {}
    for segments in (1, 2, 3):
        for size in (18, 36):
            report = run_power(mp3_graph, segments, size)
            results[(segments, size)] = report
            lines.append(
                f"  {segments}seg/s{size:<6} {report.runtime_us:>12.2f} "
                f"{report.dynamic_energy:>10.0f} {report.static_energy:>10.0f} "
                f"{report.total_energy:>10.0f} {report.average_power:>10.2f}"
            )
    print_once("power", "\n".join(lines))

    # gates: BU energy appears only on segmented configs; smaller packages
    # cost more dynamic energy (more transfers); totals positive everywhere
    assert "BU12" not in results[(1, 36)].elements
    assert "BU12" in results[(3, 36)].elements
    assert (
        results[(3, 18)].dynamic_energy > results[(3, 36)].dynamic_energy
    )
    for report in results.values():
        assert report.total_energy > 0
    benchmark.extra_info["total_3seg_s36"] = round(
        results[(3, 36)].total_energy
    )
