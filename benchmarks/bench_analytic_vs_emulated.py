"""A7 — extension: analytical estimate vs emulation (contention diagnosis).

The analytical walk (contention-free precedence traversal) gives the same
answer as the emulator in microseconds of compute time instead of a full
simulation; the gap between the two *is* the configuration's contention
cost.  The timed kernel is one analytic pass — the speed advantage over
emulation is the point of the technique.
"""

from repro.analysis.analytic import analytic_estimate, diagnose_contention
from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform
from repro.apps.mp3 import paper_platform
from repro.emulator.kernel import PlatformSpec

from conftest import print_once


def run_analytic(mp3_graph, spec):
    return analytic_estimate(mp3_graph, spec)


def test_analytic_vs_emulated(benchmark, mp3_graph, platform_3seg):
    spec = PlatformSpec.from_platform(platform_3seg)
    estimate = benchmark(run_analytic, mp3_graph, spec)

    lines = ["A7 — analytic (contention-free) vs emulated execution time:",
             f"  {'configuration':<24} {'analytic(us)':>13} "
             f"{'emulated(us)':>13} {'contention':>11}"]
    rows = {}
    for label, app, platform in (
        ("MP3 3seg s36", mp3_graph, platform_3seg),
        ("MP3 3seg s18", mp3_graph, paper_platform(3, package_size=18)),
        ("MP3 1seg s36", mp3_graph, paper_platform(1)),
        ("JPEG 3seg s36", jpeg_decoder_psdf(), jpeg_platform(3)),
    ):
        diagnosis = diagnose_contention(app, PlatformSpec.from_platform(platform))
        rows[label] = diagnosis
        lines.append(
            f"  {label:<24} {diagnosis.analytic_us:>13.2f} "
            f"{diagnosis.emulated_us:>13.2f} {diagnosis.contention_share:>10.1%}"
        )
    print_once("analytic", "\n".join(lines))

    # gates: lower bound everywhere; contention small on these lightly
    # loaded configurations; the benchmarked estimate matches the table row
    for diagnosis in rows.values():
        # lower bound up to clock-domain alignment (< 0.5 us on these runs)
        assert diagnosis.analytic_us <= diagnosis.emulated_us + 0.5
        assert diagnosis.contention_share < 0.20
    assert estimate.execution_time_us == rows["MP3 3seg s36"].analytic_us
    benchmark.extra_info["mp3_contention_share"] = round(
        rows["MP3 3seg s36"].contention_share, 4
    )
