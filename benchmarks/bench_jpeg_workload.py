"""A6 — extension: the JPEG decoder as a second application study.

The paper's future work asks for more application models on the emulator;
this bench runs the baseline-JPEG pipeline (4:2:0, luma/chroma fork-join)
across the three platform configurations and reports the comparison table.
The timed kernel is one 3-segment emulation.
"""

from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform
from repro.emulator.emulator import emulate
from repro.reference.accuracy import compare_estimate_to_reference

from conftest import print_once


def run_jpeg(segments):
    return emulate(jpeg_decoder_psdf(), jpeg_platform(segments))


def test_jpeg_workload(benchmark):
    benchmark(run_jpeg, 3)
    application = jpeg_decoder_psdf()

    lines = ["A6 — JPEG decoder on 1/2/3 segments (uniform 100 MHz, s=36):",
             f"  {'config':>7} {'time (us)':>10} {'BU crossings':>13} "
             f"{'accuracy':>9}"]
    results = {}
    for segments in (1, 2, 3):
        platform = jpeg_platform(segments)
        accuracy = compare_estimate_to_reference(application, platform)
        crossings = sum(
            b.input_packages for b in accuracy.estimated_report.bu_results
        )
        results[segments] = accuracy
        lines.append(
            f"  {segments:>4}seg {accuracy.estimated_us:>10.2f} "
            f"{crossings:>13} {accuracy.accuracy:>9.1%}"
        )
    print_once("jpeg", "\n".join(lines))

    # gates: all configurations run; the estimator stays below the
    # reference everywhere; accuracy in the same band as the MP3 study
    for accuracy in results.values():
        assert accuracy.estimated_us < accuracy.actual_us
        assert 0.88 <= accuracy.accuracy <= 0.99
    benchmark.extra_info["jpeg_3seg_us"] = round(results[3].estimated_us, 2)
