"""E1 — Fig. 8: the communication matrix of the MP3 decoder.

Regenerates the 15x15 matrix from the PSDF model (the emulator's first
setup step, section 3.5) and prints it in the paper's layout.  The timed
kernel is matrix construction.
"""

from repro.psdf.matrix import build_communication_matrix

from conftest import print_once

# Fig. 8's non-zero cells, for the correctness gate.
FIG8 = {
    ("P0", "P1"): 576, ("P0", "P8"): 576,
    ("P1", "P2"): 540, ("P1", "P3"): 36,
    ("P2", "P3"): 540,
    ("P3", "P4"): 36, ("P3", "P5"): 540, ("P3", "P10"): 36, ("P3", "P11"): 540,
    ("P4", "P5"): 36,
    ("P5", "P6"): 576, ("P6", "P7"): 576, ("P7", "P14"): 576,
    ("P8", "P3"): 36, ("P8", "P9"): 540,
    ("P9", "P3"): 540,
    ("P10", "P11"): 36,
    ("P11", "P12"): 576, ("P12", "P13"): 576, ("P13", "P14"): 576,
}


def test_fig8_communication_matrix(benchmark, mp3_graph):
    matrix = benchmark(build_communication_matrix, mp3_graph)
    # gate: cell-exact reproduction of Fig. 8
    for source in matrix.names:
        for target in matrix.names:
            assert matrix[source, target] == FIG8.get((source, target), 0)
    benchmark.extra_info["total_items"] = matrix.total_items()
    benchmark.extra_info["nonzero_cells"] = len(list(matrix.pairs()))
    print_once(
        "fig8",
        "E1 / Fig. 8 — communication matrix (cell-exact vs paper):\n"
        + matrix.to_table(),
    )
