"""E6 — the accuracy experiments: estimated vs actual execution time.

The paper's three rows:

* s = 36:          489.79 us estimated / 515.2 us actual  -> 95 %
* s = 18:          560.16 us / 600.02 us                  -> ~93 %
* P9 -> segment 3: 540.4 us / 570.12 us                   -> just below 95 %

"Actual" here is the reference simulator (the FPGA-platform substitute,
DESIGN.md section 3).  The timed kernel is one full estimate+actual pair.
"""

import pytest

from repro.apps.mp3 import PAPER_ACCURACY_EXPERIMENTS, paper_allocation, paper_platform
from repro.reference.accuracy import compare_estimate_to_reference

from conftest import fmt_row, print_once


def run_pair(mp3_graph, package_size, allocation):
    platform = paper_platform(3, package_size=package_size, allocation=allocation)
    return compare_estimate_to_reference(mp3_graph, platform)


@pytest.fixture(scope="module")
def results(mp3_graph):
    return {
        "s36": run_pair(mp3_graph, 36, None),
        "s18": run_pair(mp3_graph, 18, None),
        "p9_moved": run_pair(mp3_graph, 36, paper_allocation(3).moved("P9", 3)),
    }


def test_accuracy_table(benchmark, mp3_graph, results):
    benchmark(run_pair, mp3_graph, 36, None)

    lines = ["E6 — estimated vs actual execution time:"]
    for label, result in results.items():
        paper = PAPER_ACCURACY_EXPERIMENTS[label]
        lines.append(
            f"  {label:<10} paper: {paper['estimated_us']:7.2f}/"
            f"{paper['actual_us']:7.2f} us ({paper['accuracy']:.0%})   "
            f"measured: {result.estimated_us:7.2f}/{result.actual_us:7.2f} us "
            f"({result.accuracy:.1%})"
        )
    print_once("accuracy", "\n".join(lines))

    # gates (DESIGN.md E6)
    for result in results.values():
        assert result.estimated_us < result.actual_us
    assert 0.93 <= results["s36"].accuracy <= 0.97
    assert results["s18"].accuracy < results["s36"].accuracy
    assert results["p9_moved"].estimated_us > results["s36"].estimated_us
    assert results["p9_moved"].actual_us > results["s36"].actual_us
    for label, result in results.items():
        benchmark.extra_info[f"{label}_accuracy"] = round(result.accuracy, 3)
