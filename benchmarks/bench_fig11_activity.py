"""E5 — Fig. 11: activity graph of platform elements, s in {18, 36}.

Regenerates the per-element utilization-over-time series of the 3-segment
linear configuration at both package sizes.  The timed kernel is the
emulation plus activity binning for one package size.
"""

from repro.apps.mp3 import paper_platform
from repro.emulator.activity import activity_series
from repro.emulator.emulator import SegBusEmulator

from conftest import print_once

BINS = 24


def run_activity(mp3_graph, package_size):
    platform = paper_platform(3, package_size=package_size)
    emulator = SegBusEmulator.from_models(mp3_graph, platform)
    emulator.run()
    return activity_series(emulator.simulation, bins=BINS)


def _sparkline(series):
    marks = " .:-=+*#%@"
    return "".join(marks[min(int(v * (len(marks) - 1) + 0.5), len(marks) - 1)]
                   for v in series)


def test_fig11_activity_graph(benchmark, mp3_graph):
    series36 = benchmark(run_activity, mp3_graph, 36)
    series18 = run_activity(mp3_graph, 18)

    lines = ["E5 / Fig. 11 — activity of platform elements (utilization per bin):"]
    for size, series in ((36, series36), (18, series18)):
        lines.append(f"  package size {size} "
                     f"(run length {series.bin_edges_us[-1]:.1f} us):")
        for element in series.elements:
            lines.append(
                f"    {element:<10} |{_sparkline(series.utilization[element])}| "
                f"avg {series.busy_fraction(element):.1%}"
            )
    print_once("fig11", "\n".join(lines))

    # gates: the Fig. 11 shape — segment 1 active early, segment 2 late,
    # BU23 nearly idle; the s=18 run is longer than the s=36 run
    assert series36.peak_bin("Segment 1") < series36.peak_bin("Segment 2")
    assert series36.busy_fraction("BU23") < series36.busy_fraction("BU12")
    assert series18.bin_edges_us[-1] > series36.bin_edges_us[-1]
    for series in (series36, series18):
        for element in series.elements:
            assert all(0 <= v <= 1 for v in series.utilization[element])
    benchmark.extra_info["run_us_s36"] = round(series36.bin_edges_us[-1], 2)
    benchmark.extra_info["run_us_s18"] = round(series18.bin_edges_us[-1], 2)
