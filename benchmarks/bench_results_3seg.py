"""E3 — the section-4 results listing (3 segments, s = 36).

Regenerates the full emulator output block — per-process times, CA/SA
TCTs, BU package counts, request counters, execution time — and compares
every published number.  The timed kernel is the complete emulation from
the XML schemes (parse + setup + run), the paper's tool invocation.
"""

from repro.apps.mp3 import PAPER_3SEG_RESULTS
from repro.emulator.emulator import SegBusEmulator
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml

from conftest import fmt_row, print_once


def run_from_xml(psdf_xml, psm_xml):
    return SegBusEmulator(psdf_xml, psm_xml).run()


def test_results_listing_3seg(benchmark, mp3_graph, platform_3seg):
    psdf_xml = psdf_to_xml(mp3_graph, 36)
    psm_xml = psm_to_xml(platform_3seg)
    report = benchmark(run_from_xml, psdf_xml, psm_xml)

    paper = PAPER_3SEG_RESULTS
    lines = ["E3 — emulation results, 3 segments, s = 36:", report.format_listing(), ""]
    lines.append(fmt_row("Execution time (us)", paper["execution_time_us"],
                         round(report.execution_time_us, 2)))
    lines.append(fmt_row("CA TCT", paper["ca_tct"], report.ca_tct))
    lines.append(fmt_row("BU12 TCT", paper["bu12_tct"], report.bu(1, 2).tct))
    lines.append(fmt_row("BU23 TCT", paper["bu23_tct"], report.bu(2, 3).tct))
    for index in (1, 2, 3):
        sa = report.sa(index)
        lines.append(fmt_row(f"SA{index} TCT", paper[f"sa{index}_tct"], sa.tct))
        lines.append(fmt_row(f"SA{index} intra requests",
                             paper[f"sa{index}_intra_requests"], sa.intra_requests))
        lines.append(fmt_row(f"SA{index} inter requests",
                             paper[f"sa{index}_inter_requests"], sa.inter_requests))
    print_once("results3seg", "\n".join(lines))

    # gates (DESIGN.md E3): exact package accounting, ±15 % on the headline
    assert report.bu(1, 2).received_from_left == 32
    assert report.bu(2, 3).input_packages == 2
    assert report.sa(3).inter_requests == 1
    assert report.bu(1, 2).tct == paper["bu12_tct"]
    assert report.bu(2, 3).tct == paper["bu23_tct"]
    measured = report.execution_time_us
    assert abs(measured - paper["execution_time_us"]) / paper["execution_time_us"] < 0.15
    assert report.execution_time_ps == report.ca_time_ps  # CA dominates
    benchmark.extra_info["execution_time_us"] = round(measured, 2)
    benchmark.extra_info["paper_execution_time_us"] = paper["execution_time_us"]
