"""A8 — extension: per-flow package latency distribution.

Quantifies the paper's Discussion beyond BU averages: for each flow of the
MP3 decoder, the request→delivery latency per package (mean / p50 / p95 /
max), separating intra- from inter-segment flows.  The timed kernel is a
traced emulation plus the latency matching pass.
"""

from repro.analysis.latency import measure_latencies
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.trace import Tracer

from conftest import print_once


def run_latency(mp3_graph, spec):
    tracer = Tracer()
    sim = Simulation(mp3_graph, spec, tracer=tracer).run()
    return sim, measure_latencies(sim, tracer)


def test_flow_latency_distribution(benchmark, mp3_graph, platform_3seg):
    spec = PlatformSpec.from_platform(platform_3seg)
    sim, report = benchmark(run_latency, mp3_graph, spec)

    placement = spec.placement
    lines = ["A8 — per-flow package latency (3 segments, s = 36):",
             report.format_table()]
    inter = [
        f for f in report.flows
        if placement[f.source] != placement[f.target]
    ]
    intra = [
        f for f in report.flows
        if placement[f.source] == placement[f.target]
    ]
    mean_inter = sum(f.mean_us for f in inter) / len(inter)
    mean_intra = sum(f.mean_us for f in intra) / len(intra)
    lines.append(
        f"  mean latency: intra-segment {mean_intra:.3f} us, "
        f"inter-segment {mean_inter:.3f} us "
        f"({mean_inter / mean_intra:.1f}x)"
    )
    print_once("latency", "\n".join(lines))

    # gates: every flow measured; crossing flows strictly slower on average
    assert len(report.flows) == len(mp3_graph.flows)
    assert mean_inter > mean_intra
    assert report.worst().p95_us >= report.worst().p50_us
    benchmark.extra_info["inter_over_intra"] = round(mean_inter / mean_intra, 2)
