"""E2 — Fig. 9: allocation of processes on the three platform configurations.

Regenerates the allocation table (paper notation, '||' as segment border)
and costs each row with the PlaceTool objective.  The timed kernel is the
PlaceTool solve for 3 segments — the step the paper delegates to [16].
"""

from repro.apps.mp3 import paper_allocation
from repro.placement.placetool import PlaceTool
from repro.psdf.matrix import build_communication_matrix

from conftest import fmt_row, print_once

PAPER_ROWS = {
    1: "All FU on the same segment",
    2: "P4 P5 P6 P7 P10 P11 P12 P13 P14 || P0 P1 P2 P3 P8 P9",
    3: "P0 P1 P2 P3 P8 P9 P10 || P5 P6 P7 P11 P12 P13 P14 || P4",
}


def test_fig9_allocations(benchmark, mp3_graph):
    matrix = build_communication_matrix(mp3_graph)
    tool = PlaceTool()
    solved = benchmark(tool.solve, mp3_graph, 3)

    lines = ["E2 / Fig. 9 — allocation of processes per configuration:"]
    for count in (1, 2, 3):
        alloc = paper_allocation(count)
        cost = tool.evaluate(matrix, alloc)
        lines.append(
            f"  {count} segment(s): {alloc}   (traffic cost {cost.traffic_cost})"
        )
    paper3 = tool.evaluate(matrix, paper_allocation(3))
    lines.append(
        fmt_row("PlaceTool vs Fig. 9 cost (3 seg)", paper3.total_cost, solved.total_cost)
    )
    print_once("fig9", "\n".join(lines))

    # gates: Fig. 9 groups reproduced exactly; PlaceTool at least as good
    assert set(paper_allocation(2).groups[1]) == {"P0", "P1", "P2", "P3", "P8", "P9"}
    assert paper_allocation(3).groups[2] == ("P4",)
    assert solved.total_cost <= paper3.total_cost
    benchmark.extra_info["placetool_cost"] = solved.total_cost
    benchmark.extra_info["paper_cost"] = paper3.total_cost
