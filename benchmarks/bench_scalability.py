"""A9 — tool scalability: emulator cost vs application size.

The emulator must stay interactive for the design loop; this bench measures
how its wall time and event count grow with the application (random layered
DAGs of 10–160 processes on a 3-segment platform).  Events grow linearly
with the package count and the emulator sustains hundreds of thousands of
events per second in pure Python — comfortably within "early design
estimate" budgets.  The timed kernel is the 40-process case.
"""

from repro.emulator.kernel import PlatformSpec, Simulation
from repro.psdf.generators import random_dag_psdf
from repro.psdf.metrics import summary

from conftest import print_once

SIZES = (10, 20, 40, 80, 160)


def build_case(processes):
    graph = random_dag_psdf(processes, seed=processes, max_items=360, max_ticks=150)
    placement = {
        name: (i % 3) + 1 for i, name in enumerate(graph.process_names)
    }
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={1: 91.0, 2: 98.0, 3: 89.0},
        ca_frequency_mhz=111.0,
        placement=placement,
    )
    return graph, spec


def run_case(processes):
    graph, spec = build_case(processes)
    return Simulation(graph, spec).run()


def test_emulator_scalability(benchmark):
    import time

    benchmark(run_case, 40)

    lines = ["A9 — emulator scalability on random layered DAGs:",
             f"  {'procs':>6} {'flows':>6} {'packages':>9} {'events':>8} "
             f"{'sim time(us)':>13} {'wall (ms)':>10} {'events/s':>10}"]
    rows = {}
    for processes in SIZES:
        graph, spec = build_case(processes)
        start = time.perf_counter()
        sim = Simulation(graph, spec).run()
        wall = time.perf_counter() - start
        rows[processes] = (sim, wall)
        shape = summary(graph)
        lines.append(
            f"  {processes:>6} {shape.flows:>6} "
            f"{graph.total_packages(36):>9} {sim.queue.executed:>8} "
            f"{sim.execution_time_fs() / 1e9:>13.1f} {wall * 1e3:>10.2f} "
            f"{sim.queue.executed / wall:>10.0f}"
        )
    print_once("scalability", "\n".join(lines))

    # gates: events scale with packages (linear-ish), never explode
    for processes, (sim, _) in rows.items():
        graph, _spec = build_case(processes)
        packages = graph.total_packages(36)
        assert sim.queue.executed < 25 * packages + 200
    # throughput stays usable even at the largest size
    big_sim, big_wall = rows[160]
    assert big_sim.queue.executed / big_wall > 20_000  # events per second
