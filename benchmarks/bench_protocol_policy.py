"""A5 — extension: protocol and arbitration-policy ablation.

Two architecture-exploration questions the emulator can now answer:

* circuit switching (the paper's protocol) vs store-and-forward hopping —
  how much does full-path locking cost/save on the MP3 workload?
* round-robin vs fixed-priority segment arbitration — fairness vs makespan
  under contention.

The timed kernel is one store-and-forward emulation.
"""

from repro.apps.mp3 import paper_allocation, paper_platform
from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import emulate
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.psdf.graph import PSDFGraph

from conftest import print_once

SF = EmulationConfig(inter_segment_protocol="store-and-forward")


def run_sf(mp3_graph, platform_3seg):
    return emulate(mp3_graph, platform_3seg, config=SF)


def _contention_makespans():
    """A saturated three-master segment under both arbitration policies."""
    graph = PSDFGraph.from_edges(
        [("A", "D", 360, 1, 10), ("B", "D", 360, 1, 10), ("C", "D", 360, 1, 10)]
    )
    results = {}
    for policy in ("round-robin", "fixed-priority"):
        spec = PlatformSpec(
            package_size=36,
            segment_frequencies_mhz={1: 100.0},
            ca_frequency_mhz=100.0,
            placement={"A": 1, "B": 1, "C": 1, "D": 1},
            sa_policies={1: policy},
        )
        sim = Simulation(graph, spec).run()
        results[policy] = {
            "A_end_us": sim.process_counters["A"].end_fs / 1e9,
            "C_end_us": sim.process_counters["C"].end_fs / 1e9,
            "makespan_us": sim.execution_time_fs() / 1e9,
        }
    return results


def test_protocol_and_policy_ablation(benchmark, mp3_graph, platform_3seg):
    sf_report = benchmark(run_sf, mp3_graph, platform_3seg)
    circuit_report = emulate(mp3_graph, platform_3seg)
    moved = paper_allocation(3).moved("P9", 3)
    circuit_moved = emulate(mp3_graph, paper_platform(3, allocation=moved))
    sf_moved = emulate(
        mp3_graph, paper_platform(3, allocation=moved), config=SF
    )
    policies = _contention_makespans()

    lines = ["A5 — protocol and arbitration-policy ablation:",
             "  inter-segment protocol (MP3, 3 segments, s=36):",
             f"    circuit-switched:      {circuit_report.execution_time_us:8.2f} us",
             f"    store-and-forward:     {sf_report.execution_time_us:8.2f} us",
             "  same with P9 moved to segment 3 (heavier cross traffic):",
             f"    circuit-switched:      {circuit_moved.execution_time_us:8.2f} us",
             f"    store-and-forward:     {sf_moved.execution_time_us:8.2f} us",
             "  arbitration policy under saturation (three masters, one bus):"]
    for policy, row in policies.items():
        lines.append(
            f"    {policy:<15} A ends {row['A_end_us']:7.2f} us, "
            f"C ends {row['C_end_us']:7.2f} us, "
            f"makespan {row['makespan_us']:7.2f} us"
        )
    print_once("protocol_policy", "\n".join(lines))

    # gates: identical package accounting across protocols; fixed priority
    # starves the low-priority master without changing the makespan
    assert sf_report.bu(1, 2).input_packages == \
        circuit_report.bu(1, 2).input_packages
    rr, fp = policies["round-robin"], policies["fixed-priority"]
    assert fp["A_end_us"] < rr["A_end_us"]  # the favourite finishes earlier
    assert fp["C_end_us"] > rr["C_end_us"]  # the lowest priority is starved
    # the unfairness buys no makespan: within 10 % of round robin
    assert abs(fp["makespan_us"] - rr["makespan_us"]) / rr["makespan_us"] < 0.10
    benchmark.extra_info["circuit_us"] = round(circuit_report.execution_time_us, 2)
    benchmark.extra_info["sf_us"] = round(sf_report.execution_time_us, 2)
