"""A1 — ablation: package-size sweep.

The paper's Discussion predicts: *"the higher the data package, the less
impact of these figures should be observed in the estimation results"* —
i.e. larger packages mean fewer transfers, less per-package overhead,
shorter execution and better accuracy.  This sweep verifies the trend over
s in {9, 12, 18, 24, 36, 72}.  The timed kernel is one sweep point.
"""

from repro.analysis.sweep import package_size_sweep
from repro.apps.mp3 import paper_platform

from conftest import print_once

SIZES = (9, 12, 18, 24, 36, 72)


def one_point(mp3_graph):
    return package_size_sweep(
        mp3_graph,
        platform_factory=lambda s: paper_platform(3, package_size=s),
        package_sizes=[36],
    )


def test_package_size_sweep(benchmark, mp3_graph):
    benchmark(one_point, mp3_graph)
    points = package_size_sweep(
        mp3_graph,
        platform_factory=lambda s: paper_platform(3, package_size=s),
        package_sizes=SIZES,
    )

    lines = ["A1 — package-size sweep (3 segments, paper clocks):",
             "  size   estimated(us)   actual(us)   accuracy"]
    for point in points:
        lines.append(
            f"  {point.parameter:>4}   {point.estimated_us:12.2f}  "
            f"{point.actual_us:11.2f}   {point.accuracy:8.1%}"
        )
    print_once("pkg_sweep", "\n".join(lines))

    by_size = {p.parameter: p for p in points}
    # trends: time decreases with package size, accuracy increases
    assert by_size[9].estimated_us > by_size[36].estimated_us
    assert by_size[18].estimated_us > by_size[36].estimated_us
    assert by_size[9].accuracy < by_size[36].accuracy <= by_size[72].accuracy + 0.01
    for point in points:
        assert point.estimated_us < point.actual_us
    benchmark.extra_info["accuracies"] = {
        p.parameter: round(p.accuracy, 3) for p in points
    }
