"""E4 — Fig. 10: progress on time of each application process.

Regenerates the per-process start/end series (3 segments, linear topology,
s = 36) and checks the published checkpoints.  The timed kernel is the
emulation plus timeline extraction.
"""

from repro.apps.mp3 import PAPER_3SEG_RESULTS
from repro.emulator.emulator import SegBusEmulator

from conftest import fmt_row, print_once


def run_and_extract(mp3_graph, platform_3seg):
    report = SegBusEmulator.from_models(mp3_graph, platform_3seg).run()
    return report.timeline


def test_fig10_process_timeline(benchmark, mp3_graph, platform_3seg):
    timeline = benchmark(run_and_extract, mp3_graph, platform_3seg)

    lines = ["E4 / Fig. 10 — process progress (start -> end, us):"]
    for entry in timeline:
        start = (entry.start_ps or 0) / 1e6
        end = (entry.end_ps or 0) / 1e6
        bar_start = int(start / 10)
        bar_len = max(1, int((end - start) / 10))
        lines.append(
            f"  {entry.process:>4} {start:8.2f} -> {end:8.2f}  "
            + " " * bar_start + "#" * bar_len
        )
    paper = PAPER_3SEG_RESULTS
    lines.append("")
    lines.append(fmt_row("P0 start (ps)", paper["p0_start_ps"],
                         timeline.entry("P0").start_ps))
    lines.append(fmt_row("P0 end (ps)", paper["p0_end_ps"],
                         timeline.entry("P0").end_ps))
    lines.append(fmt_row("P8 end (ps)", paper["p8_end_ps"],
                         timeline.entry("P8").end_ps))
    lines.append(fmt_row("P7 start (ps)", paper["p7_start_ps"],
                         timeline.entry("P7").start_ps))
    lines.append(fmt_row("P14 last package (ps)", paper["p14_last_package_ps"],
                         timeline.entry("P14").last_input_fs // 1000))
    print_once("fig10", "\n".join(lines))

    # gates: exact tick-one start; checkpoint proximity; finishing order
    assert timeline.entry("P0").start_ps == paper["p0_start_ps"]
    assert abs(timeline.entry("P0").end_ps - paper["p0_end_ps"]) \
        / paper["p0_end_ps"] < 0.01
    assert abs(timeline.entry("P7").start_ps - paper["p7_start_ps"]) \
        / paper["p7_start_ps"] < 0.05
    order = timeline.finishing_order()
    pos = {name: i for i, name in enumerate(order)}
    assert pos["P0"] < pos["P8"] < pos["P3"] < pos["P7"]
    benchmark.extra_info["finishing_order"] = " ".join(order)
