"""Self-generating experiment reports.

:func:`write_experiment_report` re-runs the paper's headline experiments
live and renders a Markdown report with paper-vs-measured tables — the
programmatic twin of the hand-maintained EXPERIMENTS.md, usable after any
model or kernel change to see exactly where the reproduction stands.

Designed for CI artifacts and design logs: deterministic content (modulo
the library version line), plain Markdown, no plotting dependencies.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

from repro.analysis.bu_utilization import bu_utilization
from repro.analysis.sweep import package_size_sweep
from repro.apps.mp3 import (
    PAPER_3SEG_RESULTS,
    PAPER_ACCURACY_EXPERIMENTS,
    PAPER_BU_ANALYSIS,
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
)
from repro.emulator.emulator import emulate
from repro.reference.accuracy import compare_estimate_to_reference


def _table(headers: List[str], rows: List[List[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    out += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(out)


def _pct(measured: float, paper: float) -> str:
    return f"{(measured - paper) / paper:+.1%}"


def generate_experiment_report() -> str:
    """Run the headline experiments and render the Markdown report."""
    import repro

    application = mp3_decoder_psdf()
    report = emulate(application, paper_platform(3))
    paper = PAPER_3SEG_RESULTS

    out = io.StringIO()
    out.write("# SegBus reproduction report (generated)\n\n")
    out.write(
        f"Library version {repro.__version__}; every number below was "
        "measured by running the emulator now — compare against the "
        "curated analysis in EXPERIMENTS.md.\n\n"
    )

    out.write("## Headline experiment: 3 segments, s = 36\n\n")
    rows = [
        ["Execution time (us)", f"{paper['execution_time_us']:.2f}",
         f"{report.execution_time_us:.2f}",
         _pct(report.execution_time_us, paper["execution_time_us"])],
        ["CA TCT", str(paper["ca_tct"]), str(report.ca_tct),
         _pct(report.ca_tct, paper["ca_tct"])],
        ["BU12 TCT", str(paper["bu12_tct"]), str(report.bu(1, 2).tct),
         _pct(report.bu(1, 2).tct, paper["bu12_tct"])],
        ["BU23 TCT", str(paper["bu23_tct"]), str(report.bu(2, 3).tct),
         _pct(report.bu(2, 3).tct, paper["bu23_tct"])],
    ]
    for index in (1, 2, 3):
        sa = report.sa(index)
        rows.append(
            [f"SA{index} inter-segment requests",
             str(paper[f"sa{index}_inter_requests"]),
             str(sa.inter_requests),
             _pct(sa.inter_requests, paper[f"sa{index}_inter_requests"])
             if paper[f"sa{index}_inter_requests"] else "—"]
        )
    out.write(_table(["quantity", "paper", "measured", "delta"], rows))
    out.write("\n\n")

    out.write("## BU useful/waiting period\n\n")
    util = {u.name: u for u in bu_utilization(report)}
    rows = []
    for name, up_key, tct_key, wp_key in (
        ("BU12", "UP12", "TCT12", "WP12"),
        ("BU23", "UP23", "TCT23", "WP23"),
    ):
        u = util[name]
        rows.append(
            [name,
             f"{PAPER_BU_ANALYSIS[up_key]} / {PAPER_BU_ANALYSIS[tct_key]} / "
             f"{PAPER_BU_ANALYSIS[wp_key]}",
             f"{u.useful_period} / {u.tct} / {u.mean_waiting_period:.0f}"]
        )
    out.write(_table(["BU", "paper UP/TCT/W̄P", "measured UP/TCT/W̄P"], rows))
    out.write("\n\n")

    out.write("## Accuracy experiments (estimated vs reference)\n\n")
    rows = []
    for label, size, allocation in (
        ("s36", 36, None),
        ("s18", 18, None),
        ("p9_moved", 36, paper_allocation(3).moved("P9", 3)),
    ):
        platform = paper_platform(3, package_size=size, allocation=allocation)
        result = compare_estimate_to_reference(application, platform)
        paper_row = PAPER_ACCURACY_EXPERIMENTS[label]
        rows.append(
            [label,
             f"{paper_row['estimated_us']:.2f} / {paper_row['actual_us']:.2f}"
             f" ({paper_row['accuracy']:.0%})",
             f"{result.estimated_us:.2f} / {result.actual_us:.2f}"
             f" ({result.accuracy:.1%})"]
        )
    out.write(_table(["experiment", "paper est/act", "measured est/act"], rows))
    out.write("\n\n")

    out.write("## Package-size sweep (ablation A1)\n\n")
    points = package_size_sweep(
        application,
        platform_factory=lambda size: paper_platform(3, package_size=size),
        package_sizes=[18, 36, 72],
    )
    rows = [
        [str(p.parameter), f"{p.estimated_us:.2f}", f"{p.actual_us:.2f}",
         f"{p.accuracy:.1%}"]
        for p in points
    ]
    out.write(
        _table(["package size", "estimated (us)", "actual (us)", "accuracy"], rows)
    )
    out.write("\n\n")

    out.write("## Process timeline checkpoints\n\n")
    timeline = report.timeline
    rows = [
        ["P0 start (ps)", str(paper["p0_start_ps"]),
         str(timeline.entry("P0").start_ps)],
        ["P0 end (ps)", str(paper["p0_end_ps"]),
         str(timeline.entry("P0").end_ps)],
        ["P7 start (ps)", str(paper["p7_start_ps"]),
         str(timeline.entry("P7").start_ps)],
        ["P14 last package (ps)", str(paper["p14_last_package_ps"]),
         str(timeline.entry("P14").last_input_fs // 1000)],
    ]
    out.write(_table(["checkpoint", "paper", "measured"], rows))
    out.write("\n")
    return out.getvalue()


def write_experiment_report(path: Union[str, Path]) -> Path:
    """Generate the report and write it to ``path``; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(generate_experiment_report(), encoding="utf-8")
    return target
