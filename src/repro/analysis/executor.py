"""Supervised campaign execution: retries, timeouts, checkpoints, chaos.

:func:`parallel_emulate` used to be a bare ``pool.map``: one hung worker
stalled a whole reliability sweep, one dead worker process lost every
completed result, and an interrupted campaign restarted from zero.  This
module replaces that path with a *supervised* executor:

* jobs are submitted individually (or in small chunks) to a pool of
  worker processes, each owning a private pipe — a ``SIGKILL``-ed worker
  can corrupt only its own channel, never the shared result stream;
* every job gets a per-job **timeout** (measured from the worker's last
  progress) and a bounded number of **retries** with exponential backoff
  plus deterministic seeded jitter — the delay schedule reuses
  :class:`repro.faults.policy.RetryPolicy` and
  :class:`repro.faults.prng.DeterministicStream`, so a rerun of the same
  campaign waits the same milliseconds;
* a worker that dies (chaos kill, OOM, segfault) is detected, its
  in-flight jobs are requeued, and a replacement process is spawned —
  the supervised equivalent of ``BrokenProcessPool`` recovery, except
  completed results survive;
* failures degrade gracefully: the batch finishes and returns a
  :class:`BatchResult` carrying the completed results *plus* a
  structured ledger of :class:`JobFailure` entries, instead of an
  all-or-nothing exception;
* completed results are journaled to a crash-safe, digest-keyed
  append-only JSONL checkpoint (``.segbus/checkpoints/`` by default,
  one fsync per record, atomic rename on finalize), so an interrupted
  campaign resumes by replaying the journal and re-running only the
  missing jobs — byte-identical final reports, proven by the chaos
  suite (``tests/testing/test_chaos.py``).

The chaos harness (:mod:`repro.testing.chaos`) plugs in through the
``SEGBUS_CHAOS`` environment variable or the ``chaos=`` parameter and
injects worker kills, stalls, poisoned jobs and mid-campaign SIGTERM —
all decided by the same seeded-PRNG discipline the fault injector uses.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import hashlib
import json
import logging
import multiprocessing
import os
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import SegBusError
from repro.faults.policy import RetryPolicy
from repro.faults.prng import DeterministicStream

logger = logging.getLogger("repro.analysis.executor")

DEFAULT_CHECKPOINT_DIR = Path(".segbus") / "checkpoints"
JOURNAL_VERSION = 1

#: supervisor poll cadence (seconds) — bounds timeout/death detection lag
_POLL_S = 0.05
#: graceful worker join budget before escalating to SIGKILL
_JOIN_S = 5.0
#: traceback lines a worker ships back with a failed attempt
_TRACEBACK_TAIL_LINES = 6


class ExecutorError(SegBusError):
    """Executor infrastructure failure (not an individual job failure)."""


class CheckpointError(ExecutorError):
    """The checkpoint journal is unreadable or corrupt (beyond a torn tail)."""


class ExecutorInterrupted(ExecutorError):
    """The campaign was interrupted (SIGTERM); the journal survives.

    Re-run the same campaign with ``resume=True`` (CLI ``--resume``) to
    replay the checkpoint and run only the missing jobs.
    """


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutorPolicy:
    """Retry/timeout/backoff discipline for one campaign.

    ``max_attempts``
        total tries per job (first attempt included); crashes and
        timeouts of the *running* job count as failed attempts, so a
        job that always kills its worker cannot respawn forever.
    ``timeout_s``
        per-job wall-clock budget measured from the worker's last
        progress; ``None`` disables it.  Expiry kills the worker
        (a stalled process cannot be cancelled politely) and counts as
        a failed attempt.  Not enforceable on the in-process serial
        path.
    ``backoff`` / ``backoff_base_s`` / ``backoff_max_s`` / ``jitter``
        delay before retry ``n``: the tick schedule of
        :meth:`repro.faults.policy.RetryPolicy.delay_ticks` scaled by
        ``backoff_base_s`` and capped at ``backoff_max_s``, stretched
        by ``jitter`` × a deterministic uniform draw keyed on
        ``(seed, label, attempt)`` — reruns wait identically.
    ``seed``
        keys the jitter stream (and nothing else).
    """

    max_attempts: int = 3
    timeout_s: Optional[float] = None
    backoff: str = "exponential"
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutorError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ExecutorError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ExecutorError("backoff delays must be non-negative")
        if self.jitter < 0:
            raise ExecutorError("jitter must be non-negative")
        # delegate backoff-mode validation (and the delay math) to the
        # fault subsystem's policy — one backoff discipline repo-wide
        self._tick_policy()

    def _tick_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            backoff=self.backoff,
            base_delay_ticks=1,
            max_delay_ticks=1 << 20,
            on_exhaustion="degrade",
        )

    def delay_s(self, label: str, failures: int) -> float:
        """Backoff delay before the retry after the ``failures``-th failure."""
        ticks = self._tick_policy().delay_ticks(failures)
        base = min(ticks * self.backoff_base_s, self.backoff_max_s)
        if base <= 0:
            return 0.0
        draw = DeterministicStream(
            self.seed, "executor-backoff", label, str(failures)
        ).next_float()
        return base * (1.0 + self.jitter * draw)


# ---------------------------------------------------------------------------
# failure ledger and batch result
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobFailure:
    """One exhausted job: what failed, how often, and why.

    ``kind`` is ``"error"`` (the job raised), ``"timeout"`` (per-job
    budget expired) or ``"crash"`` (the worker process died while
    running it).
    """

    label: str
    attempts: int
    kind: str
    error: str
    message: str
    traceback_tail: str = ""

    def format(self) -> str:
        return f"{self.label}: {self.error}: {self.message}"


@dataclass(frozen=True)
class ExecutorStats:
    """Supervision counters for one batch (chaos tests pin these)."""

    attempts: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    respawned_workers: int = 0
    replayed: int = 0


@dataclass(frozen=True)
class BatchResult:
    """Everything one campaign run produced, completed and failed alike.

    ``results`` is in input order with ``None`` at failed positions;
    ``failures`` is the structured ledger, also in input order.
    """

    results: Tuple[Optional[object], ...]
    failures: Tuple[JobFailure, ...]
    stats: ExecutorStats = ExecutorStats()

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> List[object]:
        return [r for r in self.results if r is not None]

    def raise_on_failure(self, what: str = "job") -> "BatchResult":
        if self.failures:
            raise JobError.from_batch(self, what=what)
        return self


class JobError(SegBusError):
    """A batch had exhausted jobs; carries the ledger and partial results.

    Raw worker exceptions surface out of a process pool stripped of any
    hint of *which* configuration died, which makes hundred-job sweeps
    miserable to debug — the message names every failed label, and the
    structured attributes keep what the old joined string threw away:

    ``failures``
        the :class:`JobFailure` ledger (label, attempt count, error
        class, message, traceback tail), in input order;
    ``partial_results``
        every completed result of the batch — a single bad variant no
        longer discards the rest of the sweep.
    """

    def __init__(
        self,
        message: str,
        failures: Sequence[JobFailure] = (),
        partial_results: Sequence[object] = (),
    ) -> None:
        super().__init__(message)
        self.failures = list(failures)
        self.partial_results = list(partial_results)

    @classmethod
    def from_batch(cls, batch: BatchResult, what: str = "job") -> "JobError":
        total = len(batch.results)
        summary = "; ".join(f.format() for f in batch.failures)
        return cls(
            f"{len(batch.failures)} of {total} {what}(s) failed — {summary}",
            failures=batch.failures,
            partial_results=batch.completed,
        )


# ---------------------------------------------------------------------------
# canonical digests (checkpoint keys)
# ---------------------------------------------------------------------------


def canonical_form(value: object) -> object:
    """A JSON-able, hash-seed-independent canonical view of ``value``.

    Handles primitives, dataclasses, enums, mappings (sorted), sequences
    and the repo's model types (a :class:`~repro.psdf.graph.PSDFGraph`
    by name/processes/flows, a platform via its
    :class:`~repro.emulator.kernel.PlatformSpec` projection).  Unknown
    objects fall back to ``repr`` — fine for digesting as long as the
    repr is stable across processes.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.name]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        form: Dict[str, object] = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            form[f.name] = canonical_form(getattr(value, f.name))
        return form
    if isinstance(value, Mapping):
        entries = sorted(
            (
                json.dumps(canonical_form(k), sort_keys=True, default=repr),
                canonical_form(v),
            )
            for k, v in value.items()
        )
        return {"__map__": entries}
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                json.dumps(canonical_form(v), sort_keys=True, default=repr)
                for v in value
            )
        }
    if isinstance(value, (list, tuple)):
        return [canonical_form(v) for v in value]

    from repro.psdf.graph import PSDFGraph  # local: avoid import cycles

    if isinstance(value, PSDFGraph):
        return {
            "__psdf__": value.name,
            "processes": [
                canonical_form(p)
                for p in sorted(value.processes, key=lambda p: p.name)
            ],
            "flows": [canonical_form(f) for f in value.flows],
        }

    from repro.model.elements import SegBusPlatform

    if isinstance(value, SegBusPlatform):
        from repro.emulator.kernel import PlatformSpec

        return {
            "__platform__": canonical_form(PlatformSpec.from_platform(value))
        }
    if callable(value):
        return {
            "__callable__": f"{getattr(value, '__module__', '?')}."
            f"{getattr(value, '__qualname__', repr(value))}"
        }
    return {"__repr__": repr(value)}


def canonical_digest(*values: object) -> str:
    """SHA-256 (hex) over the canonical forms of ``values``."""
    payload = json.dumps(
        [canonical_form(v) for v in values],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_digest(job: object) -> str:
    """Default checkpoint key: the job's own digest, or its canonical form."""
    method = getattr(job, "digest", None)
    if callable(method):
        return str(method())
    return canonical_digest(job)


# ---------------------------------------------------------------------------
# checkpoint journal
# ---------------------------------------------------------------------------


def _encode_payload(result: object) -> str:
    return base64.b64encode(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode_payload(text: str) -> object:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class CheckpointJournal:
    """Append-only JSONL journal of completed results, keyed by job digest.

    Crash safety contract:

    * every completed result is one JSON line, flushed and fsynced
      before the supervisor moves on — a ``kill -9`` at any instant
      loses at most the in-flight jobs, never a journaled one;
    * :meth:`load` tolerates a torn trailing line (the record a crash
      interrupted mid-write) and rejects corruption anywhere else;
    * :meth:`finalize` consolidates every entry of the finished batch
      into ``<name>.done.jsonl`` via an atomic ``os.replace`` and
      removes the live journal — a finished campaign is a single
      self-contained snapshot.
    """

    def __init__(self, directory, name: str) -> None:
        self.directory = Path(directory)
        self.name = name
        self.path = self.directory / f"{name}.jsonl"
        self.done_path = self.directory / f"{name}.done.jsonl"
        self._fh = None

    # -- reading --------------------------------------------------------------

    def load(self) -> Dict[str, Tuple[str, object]]:
        """Replay: digest -> (label, result), from snapshot then live journal."""
        entries: Dict[str, Tuple[str, object]] = {}
        for path in (self.done_path, self.path):
            if not path.is_file():
                continue
            lines = path.read_bytes().splitlines()
            for lineno, raw in enumerate(lines):
                if not raw.strip():
                    continue
                try:
                    record = json.loads(raw.decode("utf-8"))
                    if record.get("v") != JOURNAL_VERSION:
                        raise ValueError(
                            f"unsupported journal version {record.get('v')!r}"
                        )
                    digest = str(record["digest"])
                    payload = _decode_payload(record["payload"])
                    label = str(record.get("label", ""))
                except Exception as exc:  # noqa: BLE001 - classified below
                    if path == self.path and lineno == len(lines) - 1:
                        # the record a crash tore mid-write; the job it
                        # belonged to simply re-runs
                        logger.debug(
                            "checkpoint %s: dropping torn trailing record",
                            path,
                        )
                        continue
                    raise CheckpointError(
                        f"corrupt checkpoint record {path}:{lineno + 1} "
                        f"({exc}) — delete the file to start over"
                    ) from exc
                entries[digest] = (label, payload)
        return entries

    # -- writing --------------------------------------------------------------

    def open(self, fresh: bool) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        if fresh:
            # a new campaign under an old name: stale snapshots would
            # otherwise leak into a later --resume
            self.done_path.unlink(missing_ok=True)
        self._fh = open(  # noqa: SIM115 - held across the whole batch
            self.path, "w" if fresh else "a", encoding="utf-8"
        )

    def record(self, digest: str, label: str, result: object) -> None:
        if self._fh is None:
            return
        line = json.dumps(
            {
                "v": JOURNAL_VERSION,
                "digest": digest,
                "label": label,
                "payload": _encode_payload(result),
            },
            sort_keys=True,
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def finalize(self, entries: Mapping[str, Tuple[str, object]]) -> Path:
        """Atomically snapshot the finished batch and drop the live journal."""
        self.close()
        tmp = self.directory / f".{self.name}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for digest, (label, result) in sorted(entries.items()):
                fh.write(
                    json.dumps(
                        {
                            "v": JOURNAL_VERSION,
                            "digest": digest,
                            "label": label,
                            "payload": _encode_payload(result),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.done_path)
        self.path.unlink(missing_ok=True)
        return self.done_path


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_main(conn) -> None:  # pragma: no cover - runs in worker processes
    """Worker loop: receive a chunk, report one message per job, repeat."""
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        for index, attempt, call, job in task:
            try:
                result = call(job)
            except Exception as exc:  # noqa: BLE001 - shipped to supervisor
                tail = "\n".join(
                    traceback.format_exc().strip().splitlines()[
                        -_TRACEBACK_TAIL_LINES:
                    ]
                )
                message = (
                    index,
                    attempt,
                    "error",
                    (type(exc).__name__, str(exc), tail),
                )
            else:
                message = (index, attempt, "ok", result)
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                return


class _Worker:
    """One supervised worker process plus its private pipe."""

    __slots__ = ("proc", "conn", "pending", "last_progress")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.pending: List["_Task"] = []
        self.last_progress = time.monotonic()

    @property
    def busy(self) -> bool:
        return bool(self.pending)

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self.proc.join(timeout=_JOIN_S)
        self.conn.close()


@dataclass
class _Task:
    """Supervisor-side bookkeeping for one job."""

    index: int
    attempts: int = 0
    ready_at: float = 0.0


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------


class CampaignExecutor:
    """Run batches of independent jobs under supervision.

    ``runner`` must be a picklable callable (a module-level function or
    a picklable dataclass instance) mapping one job to one picklable
    result; each worker process rebuilds its own state.  Jobs should
    expose a ``label`` attribute for diagnostics and, for checkpointing,
    be canonically digestible (see :func:`canonical_digest`).

    Parameters mirror the CLI flags: ``policy`` (timeout/retries),
    ``workers``/``serial_threshold``/``chunksize`` (scheduling),
    ``checkpoint_dir``/``checkpoint_name``/``resume`` (journal), and
    ``chaos`` (a :class:`repro.testing.chaos.ChaosPlan`; defaults to the
    ``SEGBUS_CHAOS`` environment spec, which is how the chaos suite
    reaches a ``segbus`` subprocess).
    """

    def __init__(
        self,
        runner: Callable[[object], object],
        *,
        policy: Optional[ExecutorPolicy] = None,
        workers: Optional[int] = None,
        serial_threshold: int = 3,
        chunksize: Optional[int] = None,
        checkpoint_dir=None,
        checkpoint_name: Optional[str] = None,
        resume: bool = False,
        digest_fn: Callable[[object], str] = job_digest,
        on_result: Optional[Callable[[str, object], None]] = None,
        chaos=None,
    ) -> None:
        self.runner = runner
        self.policy = policy or ExecutorPolicy()
        self.workers = workers
        self.serial_threshold = serial_threshold
        self.chunksize = chunksize
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_name = checkpoint_name
        self.resume = resume
        self.digest_fn = digest_fn
        self.on_result = on_result
        if chaos is None:
            from repro.testing.chaos import ChaosPlan  # local: no cycle

            chaos = ChaosPlan.from_env()
        self.chaos = chaos

        # per-run state
        self._results: List[Optional[object]] = []
        self._failures: Dict[int, JobFailure] = {}
        self._labels: List[str] = []
        self._digests: List[str] = []
        self._journal: Optional[CheckpointJournal] = None
        self._completed = 0
        self._stats: Dict[str, int] = {}
        self._interrupted = False

    # -- public entry ---------------------------------------------------------

    def run(self, jobs: Sequence[object]) -> BatchResult:
        jobs = list(jobs)
        self._results = [None] * len(jobs)
        self._failures = {}
        self._completed = 0
        self._interrupted = False
        self._stats = {
            "attempts": 0,
            "retries": 0,
            "crashes": 0,
            "timeouts": 0,
            "respawned_workers": 0,
            "replayed": 0,
        }
        self._labels = [
            getattr(job, "label", None) or f"job{i}"
            for i, job in enumerate(jobs)
        ]
        self._digests = [self.digest_fn(job) for job in jobs]

        self._open_journal()
        pending = self._replay(jobs)

        if not pending:
            return self._finish()

        serial = self.workers == 1 or len(pending) < self.serial_threshold
        if serial:
            logger.debug(
                "executor: serial path (%d job(s) < threshold %d or "
                "workers=1); per-job timeout not enforced in-process",
                len(pending),
                self.serial_threshold,
            )
        previous_handler = self._install_sigterm()
        try:
            if serial:
                self._run_serial(jobs, pending)
            else:
                self._run_parallel(jobs, pending)
        finally:
            self._restore_sigterm(previous_handler)
            if self._journal is not None:
                self._journal.close()
        return self._finish()

    # -- signal handling ------------------------------------------------------

    def _install_sigterm(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        try:
            previous = signal.getsignal(signal.SIGTERM)
            signal.signal(signal.SIGTERM, self._on_sigterm)
            return previous
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            return None

    def _restore_sigterm(self, previous) -> None:
        if previous is None:
            return
        try:
            signal.signal(signal.SIGTERM, previous)
        except (ValueError, OSError):  # pragma: no cover
            pass

    def _on_sigterm(self, signum, frame) -> None:  # noqa: ARG002
        self._interrupted = True

    def _interrupt(self) -> None:
        where = (
            f"checkpoint journal retained at {self._journal.path}"
            if self._journal is not None
            else "no checkpoint journal configured"
        )
        raise ExecutorInterrupted(
            f"campaign interrupted after {self._completed} completed "
            f"job(s) — {where}; re-run with resume to continue"
        )

    # -- journal --------------------------------------------------------------

    def _open_journal(self) -> None:
        if self.checkpoint_dir is None:
            self._journal = None
            return
        name = self.checkpoint_name or f"batch-{canonical_digest(self._digests)[:16]}"
        self._journal = CheckpointJournal(self.checkpoint_dir, name)
        self._replayed_entries: Dict[str, Tuple[str, object]] = (
            self._journal.load() if self.resume else {}
        )
        self._journal.open(fresh=not self.resume)

    def _replay(self, jobs: Sequence[object]) -> "deque[_Task]":
        pending: deque[_Task] = deque()
        entries = getattr(self, "_replayed_entries", {}) if self._journal else {}
        for index in range(len(jobs)):
            digest = self._digests[index]
            if digest in entries:
                self._results[index] = entries[digest][1]
                self._completed += 1
                self._stats["replayed"] += 1
            else:
                pending.append(_Task(index=index))
        if self._stats["replayed"]:
            logger.debug(
                "executor: replayed %d of %d job(s) from checkpoint %s",
                self._stats["replayed"],
                len(jobs),
                self._journal.name if self._journal else "?",
            )
        return pending

    # -- completion bookkeeping -----------------------------------------------

    def _complete(self, index: int, result: object) -> None:
        if self._results[index] is not None or index in self._failures:
            return  # stale duplicate (late message after a requeue)
        self._results[index] = result
        self._completed += 1
        if self._journal is not None:
            self._journal.record(
                self._digests[index], self._labels[index], result
            )
        if self.on_result is not None:
            self.on_result(self._labels[index], result)
        if (
            self.chaos is not None
            and self.chaos.interrupt_after is not None
            and self._stats["attempts"] > 0
            and (self._completed - self._stats["replayed"])
            >= self.chaos.interrupt_after
        ):
            # deterministic mid-campaign SIGTERM: delivered as a real
            # signal so the chaos suite exercises the handler path
            self._interrupted = True
            os.kill(os.getpid(), signal.SIGTERM)

    def _attempt_failed(
        self,
        task: _Task,
        kind: str,
        error: str,
        message: str,
        tail: str = "",
        requeue: "Optional[deque[_Task]]" = None,
    ) -> None:
        """Count a failed attempt; retry with backoff or close the ledger."""
        task.attempts += 1
        label = self._labels[task.index]
        if kind == "crash":
            self._stats["crashes"] += 1
        elif kind == "timeout":
            self._stats["timeouts"] += 1
        if task.attempts >= self.policy.max_attempts:
            self._failures[task.index] = JobFailure(
                label=label,
                attempts=task.attempts,
                kind=kind,
                error=error,
                message=message,
                traceback_tail=tail,
            )
            logger.debug(
                "executor: %s exhausted after %d attempt(s): %s: %s",
                label,
                task.attempts,
                error,
                message,
            )
            return
        self._stats["retries"] += 1
        delay = self.policy.delay_s(label, task.attempts)
        task.ready_at = time.monotonic() + delay
        logger.debug(
            "executor: %s attempt %d failed (%s: %s); retrying in %.3fs",
            label,
            task.attempts,
            error,
            message,
            delay,
        )
        if requeue is not None:
            requeue.append(task)

    def _finish(self) -> BatchResult:
        failures = tuple(
            self._failures[i] for i in sorted(self._failures)
        )
        stats = ExecutorStats(
            attempts=self._stats["attempts"],
            retries=self._stats["retries"],
            crashes=self._stats["crashes"],
            timeouts=self._stats["timeouts"],
            respawned_workers=self._stats["respawned_workers"],
            replayed=self._stats["replayed"],
        )
        if self._journal is not None:
            if not failures and all(r is not None for r in self._results):
                entries = {
                    self._digests[i]: (self._labels[i], self._results[i])
                    for i in range(len(self._results))
                }
                done = self._journal.finalize(entries)
                logger.debug("executor: finalized checkpoint at %s", done)
            else:
                # keep the live journal: a rerun with resume retries the
                # failed/missing jobs and replays the completed ones
                self._journal.close()
        return BatchResult(
            results=tuple(self._results), failures=failures, stats=stats
        )

    # -- serial path ----------------------------------------------------------

    def _run_serial(
        self, jobs: Sequence[object], pending: "deque[_Task]"
    ) -> None:
        if self.chaos is not None and self.chaos.active:
            logger.debug(
                "executor: chaos plan ignored on the serial path "
                "(worker kills need worker processes)"
            )
        while pending:
            if self._interrupted:
                self._interrupt()
            task = pending.popleft()
            job = jobs[task.index]
            while True:
                self._stats["attempts"] += 1
                try:
                    result = self.runner(job)
                except Exception as exc:  # noqa: BLE001 - ledgered
                    tail = "\n".join(
                        traceback.format_exc().strip().splitlines()[
                            -_TRACEBACK_TAIL_LINES:
                        ]
                    )
                    self._attempt_failed(
                        task, "error", type(exc).__name__, str(exc), tail
                    )
                    if task.index in self._failures:
                        break
                    time.sleep(max(0.0, task.ready_at - time.monotonic()))
                    if self._interrupted:
                        self._interrupt()
                else:
                    self._complete(task.index, result)
                    break
            if self._interrupted:
                self._interrupt()

    # -- parallel path --------------------------------------------------------

    def _worker_count(self, pending: int) -> int:
        configured = self.workers or os.cpu_count() or 2
        count = max(1, min(configured, pending))
        logger.debug(
            "executor: parallel path with %d worker(s) for %d job(s) "
            "(configured %s, cpu %s)",
            count,
            pending,
            self.workers,
            os.cpu_count(),
        )
        return count

    def _chunk_size(self, pending: int, workers: int) -> int:
        if self.chunksize is not None:
            size = max(1, self.chunksize)
        else:
            # large batches amortize pipe round-trips; small ones keep
            # per-job supervision (timeout attribution) exact
            size = max(1, min(16, pending // (workers * 4)))
        logger.debug(
            "executor: chunksize %d (%d job(s) over %d worker(s))",
            size,
            pending,
            workers,
        )
        return size

    def _attempt_call(self, attempt: int) -> Callable[[object], object]:
        if self.chaos is None or not self.chaos.active:
            return self.runner
        from repro.testing.chaos import chaotic_call  # local: no cycle
        from functools import partial

        return partial(chaotic_call, self.runner, self.chaos, attempt)

    def _run_parallel(
        self, jobs: Sequence[object], pending: "deque[_Task]"
    ) -> None:
        ctx = multiprocessing.get_context()
        count = self._worker_count(len(pending))
        chunk = self._chunk_size(len(pending), count)
        workers: List[_Worker] = [_Worker(ctx) for _ in range(count)]
        try:
            while True:
                if self._interrupted:
                    self._interrupt()
                open_tasks = len(pending) + sum(
                    len(w.pending) for w in workers
                )
                if open_tasks == 0:
                    return
                self._assign(jobs, pending, workers, chunk)
                self._wait_for_progress(pending, workers)
                self._reap_and_requeue(pending, workers, ctx, jobs)
        finally:
            self._shutdown(workers)

    def _assign(
        self,
        jobs: Sequence[object],
        pending: "deque[_Task]",
        workers: List[_Worker],
        chunk: int,
    ) -> None:
        now = time.monotonic()
        for worker in workers:
            if worker.busy or not pending:
                continue
            ready: List[_Task] = []
            deferred: List[_Task] = []
            while pending and len(ready) < chunk:
                task = pending.popleft()
                (ready if task.ready_at <= now else deferred).append(task)
            pending.extendleft(reversed(deferred))
            if not ready:
                return  # everything left is backing off
            payload = []
            for task in ready:
                attempt = task.attempts + 1
                payload.append(
                    (
                        task.index,
                        attempt,
                        self._attempt_call(attempt),
                        jobs[task.index],
                    )
                )
                self._stats["attempts"] += 1
            try:
                worker.conn.send(payload)
            except (BrokenPipeError, OSError):
                # the worker died between batches; no attempt consumed
                self._stats["attempts"] -= len(payload)
                pending.extendleft(reversed(ready))
                continue
            worker.pending = ready
            worker.last_progress = time.monotonic()

    def _wait_for_progress(
        self, pending: "deque[_Task]", workers: List[_Worker]
    ) -> None:
        busy = [w for w in workers if w.busy]
        if not busy:
            # nothing in flight: sleep until the nearest backoff expires
            if pending:
                wake = min(t.ready_at for t in pending)
                time.sleep(
                    min(_POLL_S, max(0.0, wake - time.monotonic()))
                )
            return
        try:
            ready = mp_connection.wait(
                [w.conn for w in busy], timeout=_POLL_S
            )
        except OSError:  # pragma: no cover - a conn died mid-wait
            ready = []
        for worker in busy:
            if worker.conn not in ready:
                continue
            self._drain(worker, pending)

    def _drain(self, worker: _Worker, pending: "deque[_Task]") -> None:
        """Consume every buffered message from one worker."""
        while True:
            try:
                if not worker.conn.poll():
                    return
                index, attempt, status, payload = worker.conn.recv()
            except (EOFError, OSError):
                return  # death is handled by _reap_and_requeue
            worker.last_progress = time.monotonic()
            task = next(
                (t for t in worker.pending if t.index == index), None
            )
            if task is None:
                continue  # stale duplicate after a requeue
            worker.pending.remove(task)
            if status == "ok":
                task.attempts = attempt
                self._complete(index, payload)
            else:
                error, message, tail = payload
                task.attempts = attempt - 1  # _attempt_failed adds one
                self._attempt_failed(
                    task, "error", error, message, tail, requeue=pending
                )

    def _reap_and_requeue(
        self,
        pending: "deque[_Task]",
        workers: List[_Worker],
        ctx,
        jobs: Sequence[object],
    ) -> None:
        now = time.monotonic()
        for i, worker in enumerate(workers):
            crashed = not worker.proc.is_alive()
            timed_out = (
                worker.busy
                and self.policy.timeout_s is not None
                and now - worker.last_progress > self.policy.timeout_s
            )
            if not crashed and not timed_out:
                continue
            # collect results the worker managed to ship first
            self._drain(worker, pending)
            if not crashed:
                # progress may have arrived while draining
                if (
                    not worker.busy
                    or time.monotonic() - worker.last_progress
                    <= self.policy.timeout_s
                ):
                    continue
                logger.debug(
                    "executor: killing stalled worker pid=%s "
                    "(no progress for %.1fs)",
                    worker.proc.pid,
                    self.policy.timeout_s,
                )
                worker.kill()
            else:
                worker.conn.close()
                worker.proc.join(timeout=_JOIN_S)
            victims = list(worker.pending)
            worker.pending = []
            if victims:
                # the first pending task is the one that was running;
                # chunk-mates behind it requeue without losing an attempt
                head, rest = victims[0], victims[1:]
                if crashed:
                    self._attempt_failed(
                        head,
                        "crash",
                        "WorkerCrashed",
                        "worker process died while running the job",
                        requeue=pending,
                    )
                else:
                    self._attempt_failed(
                        head,
                        "timeout",
                        "JobTimeout",
                        f"no progress within {self.policy.timeout_s}s",
                        requeue=pending,
                    )
                pending.extend(rest)
            open_tasks = len(pending) + sum(
                len(w.pending) for w in workers
            )
            if open_tasks > 0:
                workers[i] = _Worker(ctx)
                self._stats["respawned_workers"] += 1

    def _shutdown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            if worker.proc.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + (0.5 if self._interrupted else _JOIN_S)
        for worker in workers:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in workers:
            if worker.proc.is_alive():
                worker.kill()
            else:
                worker.conn.close()


def execute_batch(
    jobs: Sequence[object],
    runner: Callable[[object], object],
    **kwargs,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`CampaignExecutor`."""
    return CampaignExecutor(runner, **kwargs).run(jobs)
