"""Parameter sweeps over platform configurations.

The emulator's purpose is comparing configurations early (section 1); these
drivers run the same application across package sizes or segment counts and
collect (estimated, actual, accuracy) triples — the machinery behind
benchmarks A1/A2 and the paper's 36-vs-18 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.emulator.config import EmulationConfig
from repro.model.elements import SegBusPlatform
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph
from repro.reference.accuracy import AccuracyResult, compare_estimate_to_reference

PlatformFactory = Callable[[int], SegBusPlatform]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied parameter plus the accuracy pair."""

    parameter: int
    result: AccuracyResult

    @property
    def estimated_us(self) -> float:
        return self.result.estimated_us

    @property
    def actual_us(self) -> float:
        return self.result.actual_us

    @property
    def accuracy(self) -> float:
        return self.result.accuracy


def package_size_sweep(
    application: PSDFGraph,
    platform_factory: PlatformFactory,
    package_sizes: Sequence[int],
    reference_config: Optional[EmulationConfig] = None,
) -> Tuple[SweepPoint, ...]:
    """Run the application at each package size.

    ``platform_factory(s)`` must return the platform configured with package
    size ``s`` (allocation and clocks held fixed).
    """
    points = []
    for size in package_sizes:
        platform = platform_factory(size)
        result = compare_estimate_to_reference(
            application,
            platform,
            label=f"s={size}",
            reference_config=reference_config,
        )
        points.append(SweepPoint(parameter=size, result=result))
    return tuple(points)


def frequency_sweep(
    application: PSDFGraph,
    allocation: Allocation,
    base_frequencies_mhz: Sequence[float],
    ca_frequency_mhz: float,
    package_size: int,
    scales: Sequence[float],
    reference_config: Optional[EmulationConfig] = None,
) -> Tuple[SweepPoint, ...]:
    """Scale every segment clock by each factor in ``scales``.

    The sweep parameter of the returned points is the scale in percent
    (so 1.25 appears as 125).  Used to find where the platform stops being
    compute-bound: beyond the knee, faster clocks stop paying off because
    inter-segment transfers and the CA dominate.
    """
    points = []
    for scale in scales:
        frequencies = [mhz * scale for mhz in base_frequencies_mhz]
        psm = map_application(
            application,
            allocation,
            segment_frequencies_mhz=frequencies,
            ca_frequency_mhz=ca_frequency_mhz,
            package_size=package_size,
        )
        result = compare_estimate_to_reference(
            application,
            psm.platform,
            label=f"x{scale:g}",
            reference_config=reference_config,
        )
        points.append(SweepPoint(parameter=int(round(scale * 100)), result=result))
    return tuple(points)


def segment_count_sweep(
    application: PSDFGraph,
    allocations: Sequence[Allocation],
    segment_frequencies_mhz: Callable[[int], Sequence[float]],
    ca_frequency_mhz: float,
    package_size: int,
    reference_config: Optional[EmulationConfig] = None,
) -> Tuple[SweepPoint, ...]:
    """Run the application on each allocation (one per segment count)."""
    points = []
    for allocation in allocations:
        count = allocation.segment_count
        psm = map_application(
            application,
            allocation,
            segment_frequencies_mhz=segment_frequencies_mhz(count),
            ca_frequency_mhz=ca_frequency_mhz,
            package_size=package_size,
        )
        result = compare_estimate_to_reference(
            application,
            psm.platform,
            label=f"{count} segment(s)",
            reference_config=reference_config,
        )
        points.append(SweepPoint(parameter=count, result=result))
    return tuple(points)
