"""Parameter sweeps over platform configurations.

The emulator's purpose is comparing configurations early (section 1); these
drivers run the same application across package sizes or segment counts and
collect (estimated, actual, accuracy) triples — the machinery behind
benchmarks A1/A2 and the paper's 36-vs-18 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    canonical_digest,
)
from repro.emulator.config import EmulationConfig
from repro.model.elements import SegBusPlatform
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph
from repro.reference.accuracy import AccuracyResult, compare_estimate_to_reference

PlatformFactory = Callable[[int], SegBusPlatform]


@dataclass(frozen=True)
class _AccuracyJob:
    """One estimate-vs-reference comparison, picklable for the executor.

    Platforms are built in the parent (factories/frequency callables need
    not pickle); the worker runs both the estimation and the reference
    emulation and ships the :class:`AccuracyResult` back.
    """

    label: str
    parameter: int
    application: PSDFGraph
    platform: SegBusPlatform
    reference_config: Optional[EmulationConfig] = field(default=None)

    def digest(self) -> str:
        return canonical_digest(
            self.label,
            self.parameter,
            self.application,
            self.platform,
            self.reference_config,
        )


def _run_accuracy_job(job: _AccuracyJob) -> AccuracyResult:
    return compare_estimate_to_reference(
        job.application,
        job.platform,
        label=job.label,
        reference_config=job.reference_config,
    )


def _sweep(
    jobs: Sequence[_AccuracyJob],
    workers: Optional[int],
    executor_policy: Optional[ExecutorPolicy],
    checkpoint_dir,
    checkpoint_name: Optional[str],
    resume: bool,
) -> Tuple[SweepPoint, ...]:
    """Run the prepared comparison jobs and zip results back into points."""
    executor = CampaignExecutor(
        _run_accuracy_job,
        policy=executor_policy,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name,
        resume=resume,
    )
    batch = executor.run(list(jobs)).raise_on_failure(what="sweep point")
    return tuple(
        SweepPoint(parameter=job.parameter, result=result)
        for job, result in zip(jobs, batch.results)
    )


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied parameter plus the accuracy pair."""

    parameter: int
    result: AccuracyResult

    @property
    def estimated_us(self) -> float:
        return self.result.estimated_us

    @property
    def actual_us(self) -> float:
        return self.result.actual_us

    @property
    def accuracy(self) -> float:
        return self.result.accuracy


def package_size_sweep(
    application: PSDFGraph,
    platform_factory: PlatformFactory,
    package_sizes: Sequence[int],
    reference_config: Optional[EmulationConfig] = None,
    workers: Optional[int] = None,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> Tuple[SweepPoint, ...]:
    """Run the application at each package size.

    ``platform_factory(s)`` must return the platform configured with package
    size ``s`` (allocation and clocks held fixed).  ``workers`` and the
    checkpoint parameters route the sweep through the supervised campaign
    executor (see :mod:`repro.analysis.executor`).
    """
    jobs = [
        _AccuracyJob(
            label=f"s={size}",
            parameter=size,
            application=application,
            platform=platform_factory(size),
            reference_config=reference_config,
        )
        for size in package_sizes
    ]
    return _sweep(
        jobs, workers, executor_policy, checkpoint_dir, checkpoint_name, resume
    )


def frequency_sweep(
    application: PSDFGraph,
    allocation: Allocation,
    base_frequencies_mhz: Sequence[float],
    ca_frequency_mhz: float,
    package_size: int,
    scales: Sequence[float],
    reference_config: Optional[EmulationConfig] = None,
    workers: Optional[int] = None,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> Tuple[SweepPoint, ...]:
    """Scale every segment clock by each factor in ``scales``.

    The sweep parameter of the returned points is the scale in percent
    (so 1.25 appears as 125).  Used to find where the platform stops being
    compute-bound: beyond the knee, faster clocks stop paying off because
    inter-segment transfers and the CA dominate.
    """
    jobs: List[_AccuracyJob] = []
    for scale in scales:
        frequencies = [mhz * scale for mhz in base_frequencies_mhz]
        psm = map_application(
            application,
            allocation,
            segment_frequencies_mhz=frequencies,
            ca_frequency_mhz=ca_frequency_mhz,
            package_size=package_size,
        )
        jobs.append(
            _AccuracyJob(
                label=f"x{scale:g}",
                parameter=int(round(scale * 100)),
                application=application,
                platform=psm.platform,
                reference_config=reference_config,
            )
        )
    return _sweep(
        jobs, workers, executor_policy, checkpoint_dir, checkpoint_name, resume
    )


def segment_count_sweep(
    application: PSDFGraph,
    allocations: Sequence[Allocation],
    segment_frequencies_mhz: Callable[[int], Sequence[float]],
    ca_frequency_mhz: float,
    package_size: int,
    reference_config: Optional[EmulationConfig] = None,
    workers: Optional[int] = None,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> Tuple[SweepPoint, ...]:
    """Run the application on each allocation (one per segment count)."""
    jobs: List[_AccuracyJob] = []
    for allocation in allocations:
        count = allocation.segment_count
        psm = map_application(
            application,
            allocation,
            segment_frequencies_mhz=segment_frequencies_mhz(count),
            ca_frequency_mhz=ca_frequency_mhz,
            package_size=package_size,
        )
        jobs.append(
            _AccuracyJob(
                label=f"{count} segment(s)",
                parameter=count,
                application=application,
                platform=psm.platform,
                reference_config=reference_config,
            )
        )
    return _sweep(
        jobs, workers, executor_policy, checkpoint_dir, checkpoint_name, resume
    )
