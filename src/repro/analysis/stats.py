"""Small statistics helpers shared by sweeps and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sample.

    >>> summarize([1.0, 2.0, 3.0]).mean
    2.0
    """
    if not len(values):
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` (reference must be non-zero)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return abs(measured - reference) / abs(reference)
