"""Text-artifact visualization exports: DOT graphs, Gantt charts, CSV series.

Plotting libraries are deliberately not a dependency; these exporters
produce the standard text formats that external tools render:

* :func:`psdf_to_dot` — the application graph in Graphviz DOT, nodes
  colored by segment when a placement is given, edges weighted by traffic;
* :func:`timeline_to_gantt` — the Fig. 10 progress chart as ASCII art or
  as Mermaid ``gantt`` markup for documentation;
* :func:`activity_to_csv` — the Fig. 11 series as CSV (one column per
  element) for spreadsheets or gnuplot.
"""

from __future__ import annotations

import io
from typing import Dict, Mapping, Optional

from repro.emulator.activity import ActivitySeries
from repro.emulator.timeline import ProcessTimeline
from repro.psdf.graph import PSDFGraph

#: fill colors per segment index for DOT output (colorblind-safe-ish)
_SEGMENT_COLORS = (
    "#a6cee3", "#b2df8a", "#fdbf6f", "#cab2d6", "#fb9a99",
    "#ffff99", "#1f78b4", "#33a02c",
)


def psdf_to_dot(
    graph: PSDFGraph,
    placement: Optional[Mapping[str, int]] = None,
    package_size: Optional[int] = None,
) -> str:
    """Render the PSDF graph as Graphviz DOT.

    With ``placement``, nodes are clustered and colored by segment; with
    ``package_size``, edge labels show packages instead of raw items.
    """
    out = io.StringIO()
    out.write(f'digraph "{graph.name}" {{\n')
    out.write("  rankdir=LR;\n  node [shape=box, style=filled];\n")
    if placement:
        by_segment: Dict[int, list] = {}
        for name in graph.process_names:
            by_segment.setdefault(placement[name], []).append(name)
        for segment in sorted(by_segment):
            color = _SEGMENT_COLORS[(segment - 1) % len(_SEGMENT_COLORS)]
            out.write(f"  subgraph cluster_segment{segment} {{\n")
            out.write(f'    label="Segment {segment}";\n')
            for name in by_segment[segment]:
                out.write(f'    "{name}" [fillcolor="{color}"];\n')
            out.write("  }\n")
    else:
        for name in graph.process_names:
            out.write(f'  "{name}" [fillcolor="#eeeeee"];\n')
    for flow in graph.flows:
        if package_size:
            label = f"{flow.packages(package_size)} pkg (T={flow.order})"
        else:
            label = f"{flow.data_items} (T={flow.order})"
        crossing = placement and placement[flow.source] != placement[flow.target]
        style = ' color="red", penwidth=2.0,' if crossing else ""
        out.write(
            f'  "{flow.source}" -> "{flow.target}" [{style} label="{label}"];\n'
        )
    out.write("}\n")
    return out.getvalue()


def timeline_to_gantt(
    timeline: ProcessTimeline,
    width: int = 60,
    mermaid: bool = False,
) -> str:
    """Render the process timeline as an ASCII Gantt chart (or Mermaid).

    ASCII: one row per process, ``#`` spanning [start, end] scaled to
    ``width`` columns.  Mermaid: a ``gantt`` block for Markdown docs.
    """
    entries = [e for e in timeline if e.start_ps is not None]
    if not entries:
        return "(empty timeline)"
    horizon = max(e.end_ps or 0 for e in entries) or 1
    if mermaid:
        lines = ["gantt", "    dateFormat X", "    axisFormat %s",
                 "    title Process progress (us)"]
        for entry in entries:
            start_us = int((entry.start_ps or 0) / 1e6)
            end_us = max(int((entry.end_ps or 0) / 1e6), start_us + 1)
            lines.append(
                f"    {entry.process} : {start_us}, {end_us}"
            )
        return "\n".join(lines)
    lines = []
    for entry in entries:
        start_col = int((entry.start_ps or 0) / horizon * (width - 1))
        end_col = max(int((entry.end_ps or 0) / horizon * (width - 1)),
                      start_col + 1)
        bar = " " * start_col + "#" * (end_col - start_col)
        lines.append(
            f"{entry.process:>6} |{bar:<{width}}| "
            f"{(entry.start_ps or 0) / 1e6:8.2f} -> "
            f"{(entry.end_ps or 0) / 1e6:8.2f} us"
        )
    return "\n".join(lines)


def activity_to_csv(series: ActivitySeries) -> str:
    """The activity series as CSV: ``bin_start_us`` plus one column per element."""
    out = io.StringIO()
    elements = list(series.elements)
    out.write("bin_start_us," + ",".join(elements) + "\n")
    for i in range(series.bins):
        cells = [f"{series.bin_edges_us[i]:.3f}"]
        cells += [f"{series.utilization[e][i]:.4f}" for e in elements]
        out.write(",".join(cells) + "\n")
    return out.getvalue()
