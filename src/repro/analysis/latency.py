"""Per-flow package latency analysis over emulation traces.

The paper's counters are aggregates; latency distributions answer the finer
question of *how long one package waits* between the master's bus request
and its delivery at the target — per flow, with percentiles.  This is the
quantitative view of the paper's "communication bottlenecks expressed as
the time one package has to wait" Discussion, taken beyond the BU-average.

Requires a traced run (``Simulation(..., tracer=Tracer())``): latencies are
matched request→completion per flow label from the event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.emulator.kernel import Simulation
from repro.emulator.trace import Tracer
from repro.errors import SegBusError
from repro.units import fs_to_us


@dataclass(frozen=True)
class FlowLatency:
    """Latency statistics for one flow (microseconds)."""

    source: str
    target: str
    packages: int
    mean_us: float
    p50_us: float
    p95_us: float
    max_us: float
    min_us: float

    @property
    def label(self) -> str:
        return f"{self.source}->{self.target}"


@dataclass(frozen=True)
class LatencyReport:
    """Per-flow latency table for one traced run."""

    flows: Tuple[FlowLatency, ...]

    def flow(self, source: str, target: str) -> FlowLatency:
        for entry in self.flows:
            if (entry.source, entry.target) == (source, target):
                return entry
        raise KeyError(f"{source}->{target}")

    def worst(self, metric: str = "p95_us") -> FlowLatency:
        if not self.flows:
            raise SegBusError("no flows in latency report")
        return max(self.flows, key=lambda f: getattr(f, metric))

    def format_table(self) -> str:
        lines = [
            f"{'flow':<12} {'pkgs':>5} {'mean':>8} {'p50':>8} "
            f"{'p95':>8} {'max':>8}  (us)"
        ]
        for entry in sorted(self.flows, key=lambda f: -f.p95_us):
            lines.append(
                f"{entry.label:<12} {entry.packages:>5} {entry.mean_us:>8.3f} "
                f"{entry.p50_us:>8.3f} {entry.p95_us:>8.3f} {entry.max_us:>8.3f}"
            )
        return "\n".join(lines)


def _parse_label(detail: str) -> Optional[Tuple[str, str, int]]:
    if "#" not in detail or "->" not in detail:
        return None
    pair, seq = detail.split("#", 1)
    source, target = pair.split("->", 1)
    return source, target, int(seq.split("/", 1)[0])


def measure_latencies(sim: Simulation, tracer: Tracer) -> LatencyReport:
    """Match request→delivery events per package and aggregate per flow.

    A package's latency spans from the master's bus request (compute done)
    to the completion of its final bus occupation: the local transfer for
    intra-segment flows, the destination hop for inter-segment ones.
    """
    requests: Dict[Tuple[str, str, int], int] = {}
    latencies: Dict[Tuple[str, str], List[int]] = {}

    def finish(source: str, target: str, seq: int, t_fs: int) -> None:
        start = requests.pop((source, target, seq), None)
        if start is None:
            return
        latencies.setdefault((source, target), []).append(t_fs - start)

    for event in tracer.events:
        parsed = _parse_label(event.detail)
        if parsed is None:
            continue
        source, target, seq = parsed
        if event.kind == "request":
            requests[(source, target, seq)] = event.time_fs
        elif event.kind == "transfer_done":
            finish(source, target, seq, event.time_fs)
        elif event.kind == "hop_done":
            target_segment = sim.spec.placement[target]
            if event.subject in (
                f"BU{target_segment - 1}{target_segment}",
                f"BU{target_segment}{target_segment + 1}",
            ):
                finish(source, target, seq, event.time_fs)

    flows: List[FlowLatency] = []
    for (source, target), samples_fs in sorted(latencies.items()):
        samples = np.asarray([fs_to_us(v) for v in samples_fs], dtype=float)
        flows.append(
            FlowLatency(
                source=source,
                target=target,
                packages=int(samples.size),
                mean_us=float(samples.mean()),
                p50_us=float(np.percentile(samples, 50)),
                p95_us=float(np.percentile(samples, 95)),
                max_us=float(samples.max()),
                min_us=float(samples.min()),
            )
        )
    return LatencyReport(flows=tuple(flows))
