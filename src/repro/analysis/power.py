"""Activity-based power/energy estimation on top of the emulator.

The paper motivates early configuration decisions partly by power:
*"such decisions in the early stages ... not only improve the quality of the
eventual system in terms of performance, but also improve power consumption
up to some extent"* (section 5, citing [9]).  This module adds the missing
quantitative side: an activity-based energy model over the emulator's
counters.

Energy is split per platform element:

* **segment buses** — dynamic energy per occupied tick (wire switching,
  proportional to activity recorded in the busy intervals) plus leakage for
  every cycle of the run in that clock domain;
* **arbiters** — dynamic energy per arbitration event (grants, request
  observations) plus idle polling energy per cycle;
* **border units** — energy per package load/unload plus the
  synchronizer's per-crossing cost;
* **functional units** — compute energy per tick of per-package production
  cost (from the schedule), plus leakage.

Coefficients are technology-normalized *arbitrary units* (1 au = the
dynamic energy of one bus-tick at the reference voltage); what the model
supports is configuration *comparison*, the paper's use case — absolute
joules would need a characterized library the paper does not provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.emulator.kernel import Simulation


@dataclass(frozen=True)
class PowerCoefficients:
    """Energy coefficients in arbitrary units (au).

    Defaults are chosen so dynamic and static shares are comparable on the
    paper's MP3 workload — tune per technology for real studies.
    """

    bus_dynamic_per_tick: float = 1.0
    bus_leakage_per_tick: float = 0.05
    arbiter_event: float = 2.0
    arbiter_idle_per_tick: float = 0.02
    bu_per_package_side: float = 20.0
    bu_sync_per_crossing: float = 4.0
    fu_compute_per_tick: float = 0.6
    fu_leakage_per_tick: float = 0.03

    def scaled(self, factor: float) -> "PowerCoefficients":
        """All coefficients scaled by ``factor`` (voltage/frequency studies)."""
        return PowerCoefficients(
            **{name: getattr(self, name) * factor for name in self.__dataclass_fields__}
        )


@dataclass(frozen=True)
class ElementEnergy:
    """Energy breakdown of one platform element (arbitrary units)."""

    name: str
    dynamic: float
    static: float

    @property
    def total(self) -> float:
        return self.dynamic + self.static


@dataclass(frozen=True)
class PowerReport:
    """Per-element energies plus derived totals."""

    elements: Dict[str, ElementEnergy]
    runtime_us: float

    @property
    def total_energy(self) -> float:
        return sum(e.total for e in self.elements.values())

    @property
    def dynamic_energy(self) -> float:
        return sum(e.dynamic for e in self.elements.values())

    @property
    def static_energy(self) -> float:
        return sum(e.static for e in self.elements.values())

    @property
    def average_power(self) -> float:
        """Mean power in au/µs over the run."""
        return self.total_energy / self.runtime_us if self.runtime_us else 0.0

    def element(self, name: str) -> ElementEnergy:
        return self.elements[name]

    def format_table(self) -> str:
        """Human-readable per-element energy table."""
        lines = [f"{'element':<12} {'dynamic':>12} {'static':>12} {'total':>12}"]
        for name in sorted(self.elements):
            e = self.elements[name]
            lines.append(
                f"{name:<12} {e.dynamic:>12.1f} {e.static:>12.1f} {e.total:>12.1f}"
            )
        lines.append(
            f"{'TOTAL':<12} {self.dynamic_energy:>12.1f} "
            f"{self.static_energy:>12.1f} {self.total_energy:>12.1f}"
        )
        return "\n".join(lines)


def estimate_power(
    sim: Simulation, coefficients: PowerCoefficients = PowerCoefficients()
) -> PowerReport:
    """Estimate per-element energy for a finished simulation."""
    c = coefficients
    elements: Dict[str, ElementEnergy] = {}
    horizon_fs = max(sim.global_end_fs, 1)

    for index in sorted(sim.segments):
        segment = sim.segments[index]
        busy_ticks = segment.clock.ticks(segment.counters.busy_fs)
        run_ticks = segment.clock.ticks(horizon_fs)
        elements[f"Segment{index}"] = ElementEnergy(
            name=f"Segment{index}",
            dynamic=busy_ticks * c.bus_dynamic_per_tick,
            static=run_ticks * c.bus_leakage_per_tick,
        )
        events = (
            segment.counters.grants
            + segment.counters.intra_requests
            + segment.counters.inter_requests
        )
        elements[f"SA{index}"] = ElementEnergy(
            name=f"SA{index}",
            dynamic=events * c.arbiter_event,
            static=run_ticks * c.arbiter_idle_per_tick,
        )

    ca_ticks = sim.ca.clock.ticks(horizon_fs)
    ca_events = sim.ca.counters.inter_requests + sim.ca.counters.grants
    elements["CA"] = ElementEnergy(
        name="CA",
        dynamic=ca_events * c.arbiter_event,
        static=ca_ticks * c.arbiter_idle_per_tick,
    )

    for pair in sorted(sim.bus_units):
        bu = sim.bus_units[pair]
        sides = bu.counters.input_packages + bu.counters.output_packages
        elements[bu.name] = ElementEnergy(
            name=bu.name,
            dynamic=sides * c.bu_per_package_side
            + bu.counters.output_packages * c.bu_sync_per_crossing,
            static=0.0,
        )

    compute_ticks = 0
    for transfers in sim.schedule.transfers_of.values():
        for transfer in transfers:
            compute_ticks += transfer.packages * transfer.ticks_per_package
    fu_count = len(sim.process_counters)
    # FU leakage accrues in each FU's segment clock; approximate with the
    # mean segment tick count (exact split adds nothing to comparisons).
    mean_run_ticks = sum(
        sim.segments[i].clock.ticks(horizon_fs) for i in sim.segments
    ) / len(sim.segments)
    elements["FUs"] = ElementEnergy(
        name="FUs",
        dynamic=compute_ticks * c.fu_compute_per_tick,
        static=fu_count * mean_run_ticks * c.fu_leakage_per_tick,
    )

    return PowerReport(elements=elements, runtime_us=horizon_fs / 1e9)
