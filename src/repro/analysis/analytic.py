"""Closed-form analytical performance estimation (no emulation).

The emulator answers "how long does this configuration take" by executing
the schedule; this module answers the same question analytically, in
microseconds per arithmetic pass, by walking the PSDF precedence graph:

* every process fires when its slowest input flow completes;
* a flow's completion time is its firing time plus, per package, the
  production cost ``C`` and the bus occupation — for inter-segment flows
  the fill plus one hop per crossed segment in that segment's clock, plus
  the one-tick BU sampling delay;
* **no contention**: buses are assumed free when requested.

The result lower-bounds the emulated time up to one destination-clock tick
per BU crossing (the analytic walk charges the inter-clock-domain
alignment as a full tick where the kernel's edge alignment is fractional);
on aligned clocks it is *exact* for contention-free runs, both properties
enforced by the test suite.  It typically lands within a few percent on
lightly loaded platforms — the designer's instant first cut before
spending emulation time.  The gap ``emulated − analytic`` *is* (almost
entirely) the contention cost of a configuration, a useful diagnostic in
its own right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.emulator.clock import ClockDomain
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec
from repro.model.topology import LinearTopology
from repro.psdf.graph import PSDFGraph
from repro.psdf.schedule import extract_schedule
from repro.units import Frequency, fs_to_us


@dataclass(frozen=True)
class AnalyticEstimate:
    """The analytical walk's results."""

    completion_fs: Mapping[str, int]
    execution_time_fs: int

    @property
    def execution_time_us(self) -> float:
        return fs_to_us(self.execution_time_fs)

    def completion_us(self, process: str) -> float:
        return fs_to_us(self.completion_fs[process])


def analytic_estimate(
    application: PSDFGraph,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
) -> AnalyticEstimate:
    """Contention-free completion-time walk over the precedence graph."""
    schedule = extract_schedule(application, spec.package_size)
    topology = LinearTopology(spec.segment_count)
    clocks: Dict[int, ClockDomain] = {
        index: ClockDomain(
            f"Segment{index}", Frequency.from_mhz(mhz)
        )
        for index, mhz in spec.segment_frequencies_mhz.items()
    }
    ca_clock = ClockDomain("CA", Frequency.from_mhz(spec.ca_frequency_mhz))
    s = spec.package_size

    def transfer_duration_fs(source_seg: int, target_seg: int) -> int:
        """Bus time of one package from grant to delivery (no waiting)."""
        src = clocks[source_seg]
        occupation = s + config.slave_ack_ticks
        if source_seg == target_seg:
            return src.ticks_to_fs(config.grant_latency_ticks + occupation)
        total = ca_clock.ticks_to_fs(config.ca_decision_ticks)
        total += src.ticks_to_fs(config.grant_latency_ticks + s)  # fill
        path = topology.path(source_seg, target_seg)
        for index in path[1:]:
            hop_clock = clocks[index]
            wait = config.bu_sampling_ticks + config.bu_sync_ticks
            is_destination = index == path[-1]
            ticks = wait + s + (config.slave_ack_ticks if is_destination else 0)
            total += hop_clock.ticks_to_fs(ticks)
        return total

    # completion time of each flow (source, target, order) and each process
    ready: Dict[str, int] = {}
    flow_done: Dict[Tuple[str, str, int], int] = {}
    for name in application.topological_order():
        incoming = application.incoming(name)
        if incoming:
            fire = max(
                flow_done[(f.source, f.target, f.order)] for f in incoming
            )
        else:
            fire = 0
        segment = spec.placement[name]
        clock = clocks[segment]
        cursor = clock.edge_after(fire)
        ready[name] = cursor
        for transfer in schedule.transfers_of[name]:
            per_package_compute = clock.ticks_to_fs(
                transfer.ticks_per_package + config.master_handshake_ticks
            )
            duration = transfer_duration_fs(
                segment, spec.placement[transfer.target]
            )
            for _ in range(transfer.packages):
                cursor += per_package_compute + duration
            flow_done[(transfer.source, transfer.target, transfer.order)] = cursor

    completion: Dict[str, int] = {}
    for name in application.process_names:
        outgoing = schedule.transfers_of[name]
        if outgoing:
            completion[name] = max(
                flow_done[(t.source, t.target, t.order)] for t in outgoing
            )
        else:
            # a sink completes at its firing edge (kernel semantics)
            completion[name] = ready[name]
    end = max(completion.values(), default=0)
    # the CA epilogue is part of the reported execution time
    execution = ca_clock.ticks(end) + config.ca_epilogue_ticks
    return AnalyticEstimate(
        completion_fs=completion,
        execution_time_fs=execution * ca_clock.period_fs,
    )


def critical_path(
    application: PSDFGraph, estimate: AnalyticEstimate
) -> Tuple[str, ...]:
    """The chain of processes realizing the analytic completion time.

    Walk backwards from the process that completes last: at each step,
    follow the incoming flow whose producer completes latest (the binding
    precedence).  The returned tuple is source→…→last in execution order —
    the stages to optimize first (speeding up anything off this path cannot
    improve the estimate).
    """
    last = max(estimate.completion_fs, key=lambda p: estimate.completion_fs[p])
    chain = [last]
    current = last
    while True:
        incoming = application.incoming(current)
        if not incoming:
            break
        predecessor = max(
            (f.source for f in incoming),
            key=lambda name: estimate.completion_fs[name],
        )
        chain.append(predecessor)
        current = predecessor
    return tuple(reversed(chain))


@dataclass(frozen=True)
class ContentionDiagnosis:
    """Emulated vs analytic: how much time contention costs."""

    analytic_us: float
    emulated_us: float

    @property
    def contention_us(self) -> float:
        return self.emulated_us - self.analytic_us

    @property
    def contention_share(self) -> float:
        """Fraction of the emulated time attributable to contention."""
        return self.contention_us / self.emulated_us if self.emulated_us else 0.0


def diagnose_contention(
    application: PSDFGraph,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
) -> ContentionDiagnosis:
    """Run both estimators and report the contention gap."""
    from repro.emulator.fastkernel import (  # local import: avoid cycle
        make_simulation,
    )

    analytic = analytic_estimate(application, spec, config)
    emulated = make_simulation(application, spec, config).run()
    return ContentionDiagnosis(
        analytic_us=analytic.execution_time_us,
        emulated_us=fs_to_us(emulated.execution_time_fs()),
    )
