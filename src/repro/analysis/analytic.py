"""Closed-form analytical performance estimation (no emulation).

The emulator answers "how long does this configuration take" by executing
the schedule; this module answers the same question analytically, in
microseconds per arithmetic pass, by walking the PSDF precedence graph:

* every process fires when its slowest input flow completes;
* a flow's completion time is its firing time plus, per package, the
  production cost ``C`` and the bus occupation — for inter-segment flows
  the fill plus one hop per crossed segment in that segment's clock, plus
  the one-tick BU sampling delay;
* **no contention**: buses are assumed free when requested.

The result lower-bounds the emulated time up to one destination-clock tick
per BU crossing (the analytic walk charges the inter-clock-domain
alignment as a full tick where the kernel's edge alignment is fractional);
on aligned clocks it is *exact* for contention-free runs, both properties
enforced by the test suite.  It typically lands within a few percent on
lightly loaded platforms — the designer's instant first cut before
spending emulation time.  The gap ``emulated − analytic`` *is* (almost
entirely) the contention cost of a configuration, a useful diagnostic in
its own right.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Optional, Tuple

from repro.emulator.clock import ClockDomain
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec
from repro.model.topology import LinearTopology
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import MultiModeApplication, resolve_iterations
from repro.psdf.schedule import Schedule, extract_schedule
from repro.units import Frequency, fs_to_us


@dataclass(frozen=True)
class AnalyticEstimate:
    """The analytical walk's results."""

    completion_fs: Mapping[str, int]
    execution_time_fs: int

    @property
    def execution_time_us(self) -> float:
        return fs_to_us(self.execution_time_fs)

    def completion_us(self, process: str) -> float:
        return fs_to_us(self.completion_fs[process])


@lru_cache(maxsize=256)
def _clock_domain(name: str, mhz: float) -> ClockDomain:
    """One shared immutable clock per (name, frequency) pair.

    The estimators build clocks for every candidate they score; caching
    the (frozen, hence shareable) domains keeps the cached period
    arithmetic warm across thousands of placement/DSE evaluations.
    """
    return ClockDomain(name, Frequency.from_mhz(mhz))


def platform_clocks(
    spec: PlatformSpec,
) -> Tuple[Dict[int, ClockDomain], ClockDomain]:
    """The per-segment clock domains and the CA clock of a platform."""
    clocks: Dict[int, ClockDomain] = {
        index: _clock_domain(f"Segment{index}", mhz)
        for index, mhz in spec.segment_frequencies_mhz.items()
    }
    ca_clock = _clock_domain("CA", spec.ca_frequency_mhz)
    return clocks, ca_clock


@lru_cache(maxsize=128)
def schedule_for(application: PSDFGraph, package_size: int) -> Schedule:
    """Memoized :func:`~repro.psdf.schedule.extract_schedule`.

    A :class:`PSDFGraph` is immutable after construction (its docstring
    guarantees it) and hashes by identity, so the flat schedule of a
    (graph, package size) pair can be computed once and shared across the
    many estimator calls a placement search or DSE sweep makes against
    the same application.
    """
    return extract_schedule(application, package_size)


@dataclass(frozen=True)
class PathTiming:
    """Contention-free bus timing of one package along one transfer path.

    ``legs`` lists every segment bus the package occupies with the
    occupation in that segment's clock, in femtoseconds: the source
    segment's fill (plus slave-ack for intra-segment transfers) followed
    by one entry per crossed segment (BU sampling + sync + the hop, plus
    slave-ack at the destination).  ``ca_overhead_fs`` is the CA decision
    charged once per package on inter-segment paths.  The sum of all parts
    is exactly the analytic walk's per-package transfer duration.
    """

    source_segment: int
    target_segment: int
    path: Tuple[int, ...]
    legs: Tuple[Tuple[int, int], ...]
    ca_overhead_fs: int

    @property
    def duration_fs(self) -> int:
        """Grant-to-delivery bus time of one package (no waiting)."""
        return self.ca_overhead_fs + sum(fs for _, fs in self.legs)


def path_timing(
    source_seg: int,
    target_seg: int,
    clocks: Mapping[int, ClockDomain],
    ca_clock: ClockDomain,
    topology: LinearTopology,
    package_size: int,
    config: EmulationConfig,
) -> PathTiming:
    """Per-segment bus occupation of one package from grant to delivery."""
    src = clocks[source_seg]
    s = package_size
    if source_seg == target_seg:
        occupation = s + config.slave_ack_ticks
        leg = src.ticks_to_fs(config.grant_latency_ticks + occupation)
        return PathTiming(
            source_segment=source_seg,
            target_segment=target_seg,
            path=(source_seg,),
            legs=((source_seg, leg),),
            ca_overhead_fs=0,
        )
    path = topology.path(source_seg, target_seg)
    legs = [(source_seg, src.ticks_to_fs(config.grant_latency_ticks + s))]
    for index in path[1:]:
        hop_clock = clocks[index]
        wait = config.bu_sampling_ticks + config.bu_sync_ticks
        is_destination = index == path[-1]
        ticks = wait + s + (config.slave_ack_ticks if is_destination else 0)
        legs.append((index, hop_clock.ticks_to_fs(ticks)))
    return PathTiming(
        source_segment=source_seg,
        target_segment=target_seg,
        path=tuple(path),
        legs=tuple(legs),
        ca_overhead_fs=ca_clock.ticks_to_fs(config.ca_decision_ticks),
    )


def analytic_estimate(
    application: PSDFGraph,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
    schedule: Optional[Schedule] = None,
) -> AnalyticEstimate:
    """Contention-free completion-time walk over the precedence graph.

    Callers that already extracted the flat schedule (e.g. the stochastic
    layer, which needs it for its census anyway) can pass it in to skip
    re-extraction — the hot path when estimating thousands of candidates.
    """
    if schedule is None:
        schedule = schedule_for(application, spec.package_size)
    topology = LinearTopology(spec.segment_count)
    clocks, ca_clock = platform_clocks(spec)
    s = spec.package_size
    duration_cache: Dict[Tuple[int, int], int] = {}

    def transfer_duration_fs(source_seg: int, target_seg: int) -> int:
        """Bus time of one package from grant to delivery (no waiting)."""
        key = (source_seg, target_seg)
        cached = duration_cache.get(key)
        if cached is None:
            cached = path_timing(
                source_seg, target_seg, clocks, ca_clock, topology, s, config
            ).duration_fs
            duration_cache[key] = cached
        return cached

    # completion time of each flow (source, target, order) and each process
    ready: Dict[str, int] = {}
    flow_done: Dict[Tuple[str, str, int], int] = {}
    for name in application.topological_order():
        incoming = application.incoming(name)
        if incoming:
            fire = max(
                flow_done[(f.source, f.target, f.order)] for f in incoming
            )
        else:
            fire = 0
        segment = spec.placement[name]
        clock = clocks[segment]
        cursor = clock.edge_after(fire)
        ready[name] = cursor
        for transfer in schedule.transfers_of[name]:
            per_package_compute = clock.ticks_to_fs(
                transfer.ticks_per_package + config.master_handshake_ticks
            )
            duration = transfer_duration_fs(
                segment, spec.placement[transfer.target]
            )
            # the per-package increment is loop-invariant, so the package
            # loop collapses to one integer multiply (identical arithmetic)
            cursor += transfer.packages * (per_package_compute + duration)
            flow_done[(transfer.source, transfer.target, transfer.order)] = cursor

    completion: Dict[str, int] = {}
    for name in application.process_names:
        outgoing = schedule.transfers_of[name]
        if outgoing:
            completion[name] = max(
                flow_done[(t.source, t.target, t.order)] for t in outgoing
            )
        else:
            # a sink completes at its firing edge (kernel semantics)
            completion[name] = ready[name]
    end = max(completion.values(), default=0)
    # the CA epilogue is part of the reported execution time
    execution = ca_clock.ticks(end) + config.ca_epilogue_ticks
    return AnalyticEstimate(
        completion_fs=completion,
        execution_time_fs=execution * ca_clock.period_fs,
    )


# ---------------------------------------------------------------------------
# multi-mode composition
# ---------------------------------------------------------------------------


def transition_delay_fs(application: MultiModeApplication, spec: PlatformSpec) -> int:
    """The femtosecond cost of one mode switch on ``spec``.

    The schedule's :class:`~repro.psdf.modes.TransitionSpec` is in CA
    ticks (reconfiguration plus one FIFO flush per border unit); a linear
    platform with ``n`` segments has ``n - 1`` BUs.
    """
    _, ca_clock = platform_clocks(spec)
    bu_count = max(spec.segment_count - 1, 0)
    return ca_clock.ticks_to_fs(
        application.schedule.transition.delay_ticks(bu_count)
    )


def mode_analytic_estimates(
    application: MultiModeApplication,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
) -> Dict[str, AnalyticEstimate]:
    """One contention-free estimate per *scheduled* mode."""
    return {
        name: analytic_estimate(application.modes[name], spec, config)
        for name in application.scheduled_modes()
    }


def resolved_phase_iterations(
    application: MultiModeApplication,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
    per_mode: Optional[Mapping[str, AnalyticEstimate]] = None,
) -> Tuple[int, ...]:
    """Effective iteration count of every schedule phase, in order.

    Tick-based switch points (``min_dwell_ticks``) resolve against the
    analytic per-iteration time — a deterministic, engine-independent
    schedule decision shared by the emulator composition
    (:mod:`repro.emulator.multimode`) and both estimators, so emulation
    and estimation always agree on how many iterations each phase runs.
    """
    if per_mode is None:
        per_mode = mode_analytic_estimates(application, spec, config)
    _, ca_clock = platform_clocks(spec)
    return tuple(
        resolve_iterations(
            phase,
            per_mode[phase.mode].execution_time_fs,
            ca_clock.period_fs,
        )
        for phase in application.schedule.phases
    )


@dataclass(frozen=True)
class MultiModeAnalytic:
    """Per-mode analytic estimates composed with transition charges."""

    per_mode: Mapping[str, AnalyticEstimate]
    phases: Tuple[Tuple[str, int], ...]  # (mode, effective iterations)
    transition_total_fs: int
    execution_time_fs: int

    @property
    def execution_time_us(self) -> float:
        return fs_to_us(self.execution_time_fs)

    @property
    def switch_count(self) -> int:
        return sum(
            1
            for (previous, _), (current, _) in zip(self.phases, self.phases[1:])
            if previous != current
        )


def analytic_estimate_multimode(
    application: MultiModeApplication,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
) -> MultiModeAnalytic:
    """Contention-free estimate of a multi-mode application.

    Each phase contributes its effective iteration count times the mode's
    single-iteration analytic time; every switch between consecutive
    phases of *different* modes charges one transition delay.  This is the
    same composition law :func:`repro.emulator.multimode.run_multimode`
    applies to emulated per-mode times, so the end-to-end relative error
    of the composed estimate is bounded by the worst per-mode error.
    """
    application.validate_for_run()
    per_mode = mode_analytic_estimates(application, spec, config)
    iterations = resolved_phase_iterations(
        application, spec, config, per_mode=per_mode
    )
    switch_fs = transition_delay_fs(application, spec)
    transition_total = application.schedule.switch_count() * switch_fs
    execution = transition_total + sum(
        count * per_mode[phase.mode].execution_time_fs
        for phase, count in zip(application.schedule.phases, iterations)
    )
    return MultiModeAnalytic(
        per_mode=per_mode,
        phases=tuple(
            (phase.mode, count)
            for phase, count in zip(application.schedule.phases, iterations)
        ),
        transition_total_fs=transition_total,
        execution_time_fs=execution,
    )


def critical_path(
    application: PSDFGraph, estimate: AnalyticEstimate
) -> Tuple[str, ...]:
    """The chain of processes realizing the analytic completion time.

    Walk backwards from the process that completes last: at each step,
    follow the incoming flow whose producer completes latest (the binding
    precedence).  The returned tuple is source→…→last in execution order —
    the stages to optimize first (speeding up anything off this path cannot
    improve the estimate).
    """
    last = max(estimate.completion_fs, key=lambda p: estimate.completion_fs[p])
    chain = [last]
    current = last
    while True:
        incoming = application.incoming(current)
        if not incoming:
            break
        predecessor = max(
            (f.source for f in incoming),
            key=lambda name: estimate.completion_fs[name],
        )
        chain.append(predecessor)
        current = predecessor
    return tuple(reversed(chain))


@dataclass(frozen=True)
class ContentionDiagnosis:
    """Emulated vs analytic: how much time contention costs."""

    analytic_us: float
    emulated_us: float

    @property
    def contention_us(self) -> float:
        return self.emulated_us - self.analytic_us

    @property
    def contention_share(self) -> float:
        """Fraction of the emulated time attributable to contention."""
        return self.contention_us / self.emulated_us if self.emulated_us else 0.0


def diagnose_contention(
    application: PSDFGraph,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
) -> ContentionDiagnosis:
    """Run both estimators and report the contention gap."""
    from repro.emulator.fastkernel import (  # local import: avoid cycle
        make_simulation,
    )

    analytic = analytic_estimate(application, spec, config)
    emulated = make_simulation(application, spec, config).run()
    return ContentionDiagnosis(
        analytic_us=analytic.execution_time_us,
        emulated_us=fs_to_us(emulated.execution_time_fs()),
    )
