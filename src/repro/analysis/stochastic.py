"""Stochastic contention analysis: expected TCT *with* contention, statically.

:mod:`repro.analysis.analytic` deliberately assumes free buses, so its walk
lower-bounds the emulated time and the gap to emulation *is* the contention
cost.  This module closes that gap without simulating: following the
Stochastic Automata Network approach to SoC communication analysis (see
PAPERS.md, Deshmukh & Sahula), each shared resource — segment bus behind its
SA, the CA's package path, each BU FIFO — is modelled as an M/D/1-style
queue over the package-level transfer census the analytic walk already
computes.

For every resource the census yields the number of package grants ``n`` and
the total busy time in femtoseconds over the contention-free makespan
``T0``; from those, offered load ``ρ = busy/T0``, mean deterministic service
``D = busy/n``, the Pollaczek–Khinchine mean wait ``Wq = ρ·D / (2(1−ρ))``
and the mean queue depth ``Lq = λ·Wq`` follow in closed form
(:class:`QueueModel`).  The expected completion time charges that waiting
only where it can extend the makespan: for each transfer whose endpoints lie
on the analytic critical chain, each segment leg of its path pays the wait
induced by *cross* traffic (other flows' grants on that segment) — the
flow's own packages are already serialized by the walk.  By construction the
estimate never falls below the analytic lower bound; the ``SAN-1`` oracle
(:mod:`repro.testing.oracles`) pins its error band against the emulator on
the generated-model corpus, and docs/PERFORMANCE.md records the measured
accuracy and speedup.

Evaluation cost is one analytic walk plus one pass over the schedule —
microseconds, independent of how many ticks the platform would simulate —
which is what makes it usable as the pruning inner loop of placement search
(:meth:`repro.placement.PlaceTool.solve_estimated`) and DSE
(:func:`repro.analysis.dse.explore_design_space` with ``estimator_prune``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.analytic import (
    AnalyticEstimate,
    MultiModeAnalytic,
    PathTiming,
    analytic_estimate,
    analytic_estimate_multimode,
    critical_path,
    path_timing,
    platform_clocks,
    schedule_for,
)
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec
from repro.model.topology import LinearTopology
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import MultiModeApplication
from repro.units import fs_to_us

#: version of the estimator's mathematics.  The serving result cache keys
#: estimate responses on this constant (docs/SERVING.md): bump it whenever
#: the queue model, the contention charge, or the critical-chain selection
#: changes an observable number, so a long-lived ``segbus serve`` process
#: can never replay an estimate produced by older math.
ESTIMATOR_VERSION = 1

#: utilizations are capped here before entering the 1/(1−ρ) pole, so an
#: overloaded resource reports a large-but-finite expected wait
RHO_CAP = 0.95

#: predicted est/analytic blow-up mirroring the ANA-2 emulated ceiling
CONTENTION_CEILING = 4.0

#: offered load above which the M/D/1 knee makes waits grow steeply —
#: the default threshold for the SB5xx saturation warnings (the lint-clean
#: generator corpus measures ρ ≤ 0.33, the paper platforms ≤ 0.20)
UTILIZATION_KNEE = 0.65


@dataclass(frozen=True)
class QueueModel:
    """One shared resource as an M/D/1 queue over the analytic makespan.

    ``arrivals`` package grants demand ``busy_fs`` femtoseconds of the
    resource inside the ``window_fs`` contention-free makespan; everything
    else is closed-form M/D/1 (deterministic service, Poisson-approximated
    arrivals).
    """

    name: str
    arrivals: int
    busy_fs: int
    window_fs: int

    @property
    def utilization(self) -> float:
        """Offered load ρ (uncapped — may exceed 1 when oversubscribed)."""
        if self.window_fs <= 0:
            return 0.0
        return self.busy_fs / self.window_fs

    @property
    def mean_service_fs(self) -> float:
        """Deterministic service time D of one package grant."""
        if self.arrivals <= 0:
            return 0.0
        return self.busy_fs / self.arrivals

    @property
    def mean_wait_fs(self) -> float:
        """Pollaczek–Khinchine mean queueing delay Wq = ρ·D / (2(1−ρ))."""
        if self.arrivals <= 0 or self.busy_fs <= 0 or self.window_fs <= 0:
            return 0.0
        rho = min(self.utilization, RHO_CAP)
        return rho * self.mean_service_fs / (2.0 * (1.0 - rho))

    @property
    def mean_queue_depth(self) -> float:
        """Little's law mean number waiting, Lq = λ·Wq."""
        if self.window_fs <= 0:
            return 0.0
        return (self.arrivals / self.window_fs) * self.mean_wait_fs

    def occupancy_distribution(self, max_occupancy: int = 8) -> Tuple[float, ...]:
        """P(n in system) for n = 0..max_occupancy (last entry = tail mass).

        A geometric surrogate matched to the M/D/1 mean number in system
        ``L = Lq + min(ρ, cap)`` — exact for M/M/1, a conservative shape
        for deterministic service.
        """
        if max_occupancy < 1:
            raise ValueError("max_occupancy must be >= 1")
        mean_in_system = self.mean_queue_depth + min(
            max(self.utilization, 0.0), RHO_CAP
        )
        if mean_in_system <= 0.0:
            return (1.0,) + (0.0,) * max_occupancy
        ratio = mean_in_system / (1.0 + mean_in_system)
        probabilities = [(1.0 - ratio) * ratio**n for n in range(max_occupancy)]
        probabilities.append(max(0.0, 1.0 - sum(probabilities)))
        return tuple(probabilities)

    def saturation_probability(self, depth: int) -> float:
        """P(more than ``depth`` packages in the system)."""
        if depth < 0:
            return 1.0
        distribution = self.occupancy_distribution(max_occupancy=depth + 1)
        return distribution[-1]


@dataclass(frozen=True)
class StochasticEstimate:
    """Expected completion time with contention plus the per-resource queues."""

    analytic: AnalyticEstimate
    contention_fs: int
    segments: Mapping[int, QueueModel]
    ca: QueueModel
    border_units: Mapping[Tuple[int, int], QueueModel]
    critical_chain: Tuple[str, ...]

    @property
    def analytic_fs(self) -> int:
        return self.analytic.execution_time_fs

    @property
    def analytic_us(self) -> float:
        return fs_to_us(self.analytic_fs)

    @property
    def execution_time_fs(self) -> int:
        """Expected TCT: the analytic lower bound plus expected waiting."""
        return self.analytic_fs + self.contention_fs

    @property
    def execution_time_us(self) -> float:
        return fs_to_us(self.execution_time_fs)

    @property
    def contention_us(self) -> float:
        return fs_to_us(self.contention_fs)

    @property
    def contention_ratio(self) -> float:
        """Predicted TCT over the contention-free bound (≥ 1 always)."""
        if self.analytic_fs <= 0:
            return 1.0
        return self.execution_time_fs / self.analytic_fs

    def hottest_segment(self) -> Optional[int]:
        """The segment with the highest offered load (None when all idle)."""
        loaded = [
            (model.utilization, index)
            for index, model in self.segments.items()
            if model.arrivals > 0
        ]
        if not loaded:
            return None
        return max(loaded)[1]


@dataclass(frozen=True)
class PlacementMove:
    """A single-process move predicted to relieve the hottest segment."""

    process: str
    from_segment: int
    to_segment: int
    predicted_saving_fs: int

    @property
    def predicted_saving_us(self) -> float:
        return fs_to_us(self.predicted_saving_fs)


@dataclass(frozen=True)
class _TransferCensus:
    """One scheduled transfer's placement-resolved bus demand."""

    source: str
    target: str
    packages: int
    legs: Tuple[Tuple[int, int], ...]


def stochastic_estimate(
    application: PSDFGraph,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
) -> StochasticEstimate:
    """Static expected-TCT estimate with contention (no simulation)."""
    schedule = schedule_for(application, spec.package_size)
    analytic = analytic_estimate(application, spec, config, schedule=schedule)
    window = analytic.execution_time_fs
    topology = LinearTopology(spec.segment_count)
    clocks, ca_clock = platform_clocks(spec)
    s = spec.package_size
    bu_service_ticks = config.bu_sampling_ticks + config.bu_sync_ticks + s
    timing_cache: Dict[Tuple[int, int], PathTiming] = {}

    segment_arrivals: Dict[int, int] = {index: 0 for index in clocks}
    segment_busy: Dict[int, int] = {index: 0 for index in clocks}
    bu_arrivals: Dict[Tuple[int, int], int] = {}
    bu_busy: Dict[Tuple[int, int], int] = {}
    ca_arrivals = 0
    ca_busy = 0
    census: List[_TransferCensus] = []
    for transfers in schedule.transfers_of.values():
        for transfer in transfers:
            source_seg = spec.placement[transfer.source]
            target_seg = spec.placement[transfer.target]
            timing = timing_cache.get((source_seg, target_seg))
            if timing is None:
                timing = path_timing(
                    source_seg, target_seg, clocks, ca_clock, topology, s, config
                )
                timing_cache[(source_seg, target_seg)] = timing
            packages = transfer.packages
            for segment, leg_fs in timing.legs:
                segment_arrivals[segment] += packages
                segment_busy[segment] += packages * leg_fs
            if source_seg != target_seg:
                # the CA holds the multi-segment path for the whole package
                ca_arrivals += packages
                ca_busy += packages * timing.duration_fs
                for left, right in zip(timing.path, timing.path[1:]):
                    pair = (min(left, right), max(left, right))
                    bu_arrivals[pair] = bu_arrivals.get(pair, 0) + packages
                    bu_busy[pair] = bu_busy.get(pair, 0) + packages * clocks[
                        right
                    ].ticks_to_fs(bu_service_ticks)
            census.append(
                _TransferCensus(
                    source=transfer.source,
                    target=transfer.target,
                    packages=packages,
                    legs=timing.legs,
                )
            )

    chain = critical_path(application, analytic) if analytic.completion_fs else ()
    on_chain = set(chain)
    contention = 0.0
    if window > 0:
        for item in census:
            # only waiting on the critical chain can extend the makespan
            if item.source not in on_chain or item.target not in on_chain:
                continue
            for segment, leg_fs in item.legs:
                # cross traffic only: the flow's own packages are already
                # serialized by the analytic walk, they never queue on
                # themselves
                other_arrivals = segment_arrivals[segment] - item.packages
                other_busy = segment_busy[segment] - item.packages * leg_fs
                if other_arrivals <= 0 or other_busy <= 0:
                    continue
                rho_other = min(other_busy / window, RHO_CAP)
                service_other = other_busy / other_arrivals
                rho_total = min(segment_busy[segment] / window, RHO_CAP)
                wait = rho_other * service_other / (2.0 * (1.0 - rho_total))
                contention += item.packages * wait

    return StochasticEstimate(
        analytic=analytic,
        contention_fs=int(round(contention)),
        segments={
            index: QueueModel(
                name=f"S{index}",
                arrivals=segment_arrivals[index],
                busy_fs=segment_busy[index],
                window_fs=window,
            )
            for index in sorted(clocks)
        },
        ca=QueueModel(
            name="CA", arrivals=ca_arrivals, busy_fs=ca_busy, window_fs=window
        ),
        border_units={
            pair: QueueModel(
                name=f"BU{pair[0]}-{pair[1]}",
                arrivals=bu_arrivals[pair],
                busy_fs=bu_busy[pair],
                window_fs=window,
            )
            for pair in sorted(bu_arrivals)
        },
        critical_chain=tuple(chain),
    )


def suggest_placement_move(
    application: PSDFGraph,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
    estimate: Optional[StochasticEstimate] = None,
) -> Optional[PlacementMove]:
    """The single-process move off the hottest segment with the best
    predicted saving, or ``None`` when no move improves the estimate.

    Evaluates every (process on the hottest segment, other segment) pair
    through :func:`stochastic_estimate` — still microseconds per candidate,
    so the whole neighbourhood costs less than one emulation.
    """
    base = estimate if estimate is not None else stochastic_estimate(
        application, spec, config
    )
    hot = base.hottest_segment()
    if hot is None or spec.segment_count < 2:
        return None
    names = set(application.process_names)
    movable = sorted(
        process
        for process, segment in spec.placement.items()
        if segment == hot and process in names
    )
    best: Optional[PlacementMove] = None
    for process in movable:
        for target in range(1, spec.segment_count + 1):
            if target == hot:
                continue
            placement = dict(spec.placement)
            placement[process] = target
            candidate = replace(spec, placement=placement)
            try:
                moved = stochastic_estimate(application, candidate, config)
            except Exception:
                continue  # an invalid neighbour is just not a suggestion
            saving = base.execution_time_fs - moved.execution_time_fs
            if saving > 0 and (
                best is None or saving > best.predicted_saving_fs
            ):
                best = PlacementMove(
                    process=process,
                    from_segment=hot,
                    to_segment=target,
                    predicted_saving_fs=saving,
                )
    return best


# ---------------------------------------------------------------------------
# multi-mode composition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MultiModeStochastic:
    """Per-mode stochastic estimates composed with transition charges.

    The composition law is identical to the analytic one (and to the
    emulator's): effective iterations times the per-mode estimate, plus
    one transition delay per mode switch.  Because the transition terms
    are shared exactly with :class:`MultiModeAnalytic`, the end-to-end
    relative error against emulation is bounded by the worst per-mode
    error — which is what lets SAN-1 hold both per mode and end to end.
    """

    analytic: MultiModeAnalytic
    per_mode: Mapping[str, StochasticEstimate]
    execution_time_fs: int

    @property
    def analytic_fs(self) -> int:
        return self.analytic.execution_time_fs

    @property
    def execution_time_us(self) -> float:
        return fs_to_us(self.execution_time_fs)

    @property
    def contention_fs(self) -> int:
        """Expected waiting summed over every phase iteration."""
        return self.execution_time_fs - self.analytic_fs

    @property
    def contention_us(self) -> float:
        return fs_to_us(self.contention_fs)


def stochastic_estimate_multimode(
    application: MultiModeApplication,
    spec: PlatformSpec,
    config: EmulationConfig = EmulationConfig(),
) -> MultiModeStochastic:
    """Static expected TCT of a multi-mode application (no simulation)."""
    analytic = analytic_estimate_multimode(application, spec, config)
    per_mode = {
        name: stochastic_estimate(application.modes[name], spec, config)
        for name in application.scheduled_modes()
    }
    execution = analytic.transition_total_fs + sum(
        count * per_mode[mode].execution_time_fs
        for mode, count in analytic.phases
    )
    return MultiModeStochastic(
        analytic=analytic,
        per_mode=per_mode,
        execution_time_fs=execution,
    )
