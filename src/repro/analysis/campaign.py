"""Experiment campaigns: declarative grids, persistent results, exports.

The paper's methodology is comparative — run the same application over many
platform configurations and choose.  A :class:`Campaign` makes that loop a
first-class object: declare the variants, run them once, then export the
result table as CSV, Markdown or JSON for the design log.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    canonical_digest,
)
from repro.analysis.power import PowerCoefficients, estimate_power
from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import SegBusEmulator
from repro.errors import SegBusError
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class Variant:
    """One campaign point: a named (application, platform, config) triple.

    ``fault_plan``/``retry_policy`` optionally run the variant under fault
    injection (see :mod:`repro.faults`) — the reliability sweeps build their
    grids out of such variants.
    """

    name: str
    application: PSDFGraph
    platform: SegBusPlatform
    config: EmulationConfig = field(default_factory=EmulationConfig)
    fault_plan: Optional[object] = None
    retry_policy: Optional[object] = None


@dataclass(frozen=True)
class VariantResult:
    """The measured row for one variant."""

    name: str
    segment_count: int
    package_size: int
    execution_time_us: float
    total_events: int
    inter_segment_packages: int
    total_energy_au: float
    average_power_au_per_us: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "segment_count": self.segment_count,
            "package_size": self.package_size,
            "execution_time_us": round(self.execution_time_us, 3),
            "total_events": self.total_events,
            "inter_segment_packages": self.inter_segment_packages,
            "total_energy_au": round(self.total_energy_au, 1),
            "average_power_au_per_us": round(self.average_power_au_per_us, 3),
        }


COLUMNS = (
    "name",
    "segment_count",
    "package_size",
    "execution_time_us",
    "total_events",
    "inter_segment_packages",
    "total_energy_au",
    "average_power_au_per_us",
)


@dataclass(frozen=True)
class _VariantTask:
    """One variant plus the campaign's power model, picklable."""

    variant: Variant
    coefficients: PowerCoefficients

    @property
    def label(self) -> str:
        return self.variant.name

    def digest(self) -> str:
        v = self.variant
        return canonical_digest(
            v.name,
            v.application,
            v.platform,
            v.config,
            v.fault_plan,
            v.retry_policy,
            self.coefficients,
        )


def _run_variant(task: _VariantTask) -> VariantResult:
    """Emulate one variant and measure its power (worker-side)."""
    variant = task.variant
    emulator = SegBusEmulator.from_models(
        variant.application,
        variant.platform,
        config=variant.config,
        fault_plan=variant.fault_plan,
        retry_policy=variant.retry_policy,
    )
    report = emulator.run()
    power = estimate_power(emulator.simulation, task.coefficients)
    return VariantResult(
        name=variant.name,
        segment_count=report.segment_count,
        package_size=report.package_size,
        execution_time_us=report.execution_time_us,
        total_events=report.total_events,
        inter_segment_packages=report.total_inter_segment_packages(),
        total_energy_au=power.total_energy,
        average_power_au_per_us=power.average_power,
    )


class Campaign:
    """A batch of emulation variants with uniform result reporting."""

    def __init__(
        self,
        name: str,
        power_coefficients: Optional[PowerCoefficients] = None,
    ) -> None:
        self.name = name
        self.power_coefficients = power_coefficients or PowerCoefficients()
        self._variants: List[Variant] = []
        self._results: Optional[List[VariantResult]] = None

    def add(
        self,
        name: str,
        application: PSDFGraph,
        platform: SegBusPlatform,
        config: Optional[EmulationConfig] = None,
        fault_plan=None,
        retry_policy=None,
    ) -> "Campaign":
        if any(v.name == name for v in self._variants):
            raise SegBusError(f"duplicate variant name {name!r}")
        self._variants.append(
            Variant(
                name,
                application,
                platform,
                config or EmulationConfig(),
                fault_plan=fault_plan,
                retry_policy=retry_policy,
            )
        )
        self._results = None
        return self

    def add_grid(
        self,
        application: PSDFGraph,
        platform_factory: Callable[[int], SegBusPlatform],
        package_sizes: Sequence[int],
        label: str = "s",
    ) -> "Campaign":
        """Add one variant per package size from a factory."""
        for size in package_sizes:
            self.add(f"{label}{size}", application, platform_factory(size))
        return self

    @property
    def variant_names(self) -> List[str]:
        return [v.name for v in self._variants]

    def run(
        self,
        workers: Optional[int] = None,
        executor_policy: Optional[ExecutorPolicy] = None,
        checkpoint_dir=None,
        checkpoint_name: Optional[str] = None,
        resume: bool = False,
    ) -> List[VariantResult]:
        """Run every variant (cached) and return the result rows.

        Runs through the supervised campaign executor: ``workers``
        parallelizes the grid, ``executor_policy`` adds per-variant
        timeout/retries, and ``checkpoint_dir``/``resume`` make an
        interrupted campaign continue from its journal.  Any variant
        that exhausts its retries raises
        :class:`~repro.analysis.executor.JobError` (with partial
        results attached); the cache stays empty so a fixed rerun
        re-executes.
        """
        if self._results is None:
            if not self._variants:
                raise SegBusError(f"campaign {self.name!r} has no variants")
            tasks = [
                _VariantTask(variant, self.power_coefficients)
                for variant in self._variants
            ]
            executor = CampaignExecutor(
                _run_variant,
                policy=executor_policy,
                workers=workers,
                checkpoint_dir=checkpoint_dir,
                checkpoint_name=checkpoint_name,
                resume=resume,
            )
            batch = executor.run(tasks).raise_on_failure(what="variant")
            self._results = list(batch.results)
        return list(self._results)

    def best(self, key: str = "execution_time_us") -> VariantResult:
        """The winning variant under ``key`` (smaller is better)."""
        if key not in COLUMNS:
            raise SegBusError(f"unknown result column {key!r}")
        return min(self.run(), key=lambda r: getattr(r, key))

    # -- exports -----------------------------------------------------------------

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=COLUMNS, lineterminator="\n")
        writer.writeheader()
        for result in self.run():
            writer.writerow(result.as_dict())
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_markdown(self) -> str:
        rows = [r.as_dict() for r in self.run()]
        header = "| " + " | ".join(COLUMNS) + " |"
        rule = "|" + "|".join("---" for _ in COLUMNS) + "|"
        body = [
            "| " + " | ".join(str(row[c]) for c in COLUMNS) + " |"
            for row in rows
        ]
        return "\n".join([header, rule] + body)

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        payload = {
            "campaign": self.name,
            "results": [r.as_dict() for r in self.run()],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text
