"""Parallel execution of emulation batches.

One emulation is sub-second, but campaigns and design-space explorations
multiply: segment counts × package sizes × allocations × fidelity levels.
Each run is independent and CPU-bound, so the right lever (per the
profile-first optimization workflow) is process-level parallelism across
*configurations*, not threads inside the deterministic kernel.

:func:`parallel_emulate` maps a list of job descriptions over a
``ProcessPoolExecutor``, preserving input order and falling back to serial
execution for small batches or ``workers=1`` (also the path used on
platforms without fork).  Results are identical to serial execution —
asserted by the test suite — because the kernel is deterministic and each
job is self-contained.

Job descriptions are picklable primitives (graphs and specs), not live
simulations; each worker rebuilds its own kernel.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import simulation_class
from repro.emulator.kernel import PlatformSpec
from repro.errors import SegBusError
from repro.psdf.graph import PSDFGraph
from repro.units import fs_to_us


class JobError(SegBusError):
    """A job in an emulation batch failed; the message names the job.

    Raw worker exceptions surface out of a process pool stripped of any
    hint of *which* configuration died, which makes hundred-job sweeps
    miserable to debug — so both execution paths wrap failures with the
    job label before re-raising.
    """


@dataclass(frozen=True)
class EmulationJob:
    """One independent emulation: everything a worker needs, picklable.

    ``engine`` picks the simulation kernel; campaigns default to the
    event-driven fast engine because both engines are tick-for-tick
    equivalent (see docs/PERFORMANCE.md) and sweeps are where the
    speedup compounds.
    """

    label: str
    application: PSDFGraph
    spec: PlatformSpec
    config: EmulationConfig = EmulationConfig()
    engine: str = "fast"


@dataclass(frozen=True)
class JobResult:
    """The summary a worker ships back (small, picklable)."""

    label: str
    execution_time_us: float
    total_events: int
    ca_tct: int
    sa_tcts: Tuple[int, ...]
    packages_delivered: int


def _run_job(job: EmulationJob) -> JobResult:
    sim = simulation_class(job.engine)(
        job.application, job.spec, job.config
    ).run()
    return JobResult(
        label=job.label,
        execution_time_us=fs_to_us(sim.execution_time_fs()),
        total_events=sim.queue.executed,
        ca_tct=sim.ca.counters.tct,
        sa_tcts=tuple(sim.sa_tct(i) for i in sorted(sim.segments)),
        packages_delivered=sum(
            c.packages_received for c in sim.process_counters.values()
        ),
    )


def _run_job_safe(job: EmulationJob):
    """(result, None) on success, (None, error text) on failure —
    exceptions must not cross the pool boundary unlabelled."""
    try:
        return _run_job(job), None
    except Exception as exc:  # noqa: BLE001 — re-labelled and re-raised
        return None, f"{type(exc).__name__}: {exc}"


def parallel_emulate(
    jobs: Sequence[EmulationJob],
    workers: Optional[int] = None,
    serial_threshold: int = 3,
) -> List[JobResult]:
    """Run ``jobs`` and return results in input order.

    ``workers=None`` lets the executor pick (CPU count); batches smaller
    than ``serial_threshold`` or ``workers=1`` run serially — process
    startup would cost more than it buys.  Any failing job raises
    :class:`JobError` naming every failed label.
    """
    if workers == 1 or len(jobs) < serial_threshold:
        outcomes = [_run_job_safe(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_job_safe, jobs))
    failures = [
        f"{job.label}: {error}"
        for job, (_, error) in zip(jobs, outcomes)
        if error is not None
    ]
    if failures:
        raise JobError(
            f"{len(failures)} of {len(jobs)} emulation job(s) failed — "
            + "; ".join(failures)
        )
    return [result for result, _ in outcomes]
