"""Parallel execution of emulation batches (compat shim).

One emulation is sub-second, but campaigns and design-space explorations
multiply: segment counts × package sizes × allocations × fidelity levels.
Each run is independent and CPU-bound, so the right lever (per the
profile-first optimization workflow) is process-level parallelism across
*configurations*, not threads inside the deterministic kernel.

The actual scheduling lives in :mod:`repro.analysis.executor` — the
supervised campaign executor with per-job timeouts, seeded-backoff
retries, worker-crash recovery and digest-keyed checkpoint/resume.  This
module keeps the historical surface: :class:`EmulationJob`,
:class:`JobResult` and :func:`parallel_emulate` (raise-on-failure
semantics), plus :func:`emulate_batch` which returns the full
:class:`~repro.analysis.executor.BatchResult` (partial results + failure
ledger) for callers that want graceful degradation.

Job descriptions are picklable primitives (graphs and specs), not live
simulations; each worker rebuilds its own kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.executor import (
    BatchResult,
    CampaignExecutor,
    ExecutorPolicy,
    ExecutorStats,
    JobError,
    JobFailure,
    canonical_digest,
)
from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import simulation_class
from repro.emulator.kernel import PlatformSpec
from repro.psdf.graph import PSDFGraph
from repro.units import fs_to_us

__all__ = [
    "EmulationJob",
    "JobError",
    "JobFailure",
    "JobResult",
    "emulate_batch",
    "parallel_emulate",
]


@dataclass(frozen=True)
class EmulationJob:
    """One independent emulation: everything a worker needs, picklable.

    ``engine`` picks the simulation kernel; campaigns default to the
    event-driven fast engine because every engine is tick-for-tick
    equivalent (see docs/PERFORMANCE.md) and sweeps are where the
    speedup compounds.  Asking for ``batch`` on *every* job of an
    :func:`emulate_batch` call collapses the whole batch into one
    vectorized lockstep run.

    ``config`` uses a ``default_factory`` (not a shared default
    instance): :class:`EmulationConfig` is frozen, but a factory keeps
    every job's default independent even if the config ever grows a
    mutable field.
    """

    label: str
    application: PSDFGraph
    spec: PlatformSpec
    config: EmulationConfig = field(default_factory=EmulationConfig)
    engine: str = "fast"

    def digest(self) -> str:
        """Checkpoint key: everything that determines the result."""
        return canonical_digest(
            self.application, self.spec, self.config, self.engine
        )


@dataclass(frozen=True)
class JobResult:
    """The summary a worker ships back (small, picklable)."""

    label: str
    execution_time_us: float
    total_events: int
    ca_tct: int
    sa_tcts: Tuple[int, ...]
    packages_delivered: int


def _run_job(job: EmulationJob) -> JobResult:
    sim = simulation_class(job.engine)(
        job.application, job.spec, job.config
    ).run()
    return _result_from_sim(job.label, sim)


def _result_from_sim(label: str, sim) -> JobResult:
    return JobResult(
        label=label,
        execution_time_us=fs_to_us(sim.execution_time_fs()),
        total_events=sim.queue.executed,
        ca_tct=sim.ca.counters.tct,
        sa_tcts=tuple(sim.sa_tct(i) for i in sorted(sim.segments)),
        packages_delivered=sum(
            c.packages_received for c in sim.process_counters.values()
        ),
    )


def _vectorized_batch(jobs: Sequence[EmulationJob]) -> BatchResult:
    """All-``batch`` jobs collapse into one lockstep vectorized call.

    Compatible jobs (same application/spec/config) share one group and
    one model construction; a member that dies with a
    :class:`~repro.errors.SegBusError` (deadlock watchdog, budget stop)
    becomes its own :class:`JobFailure` ledger entry without poisoning
    siblings — mirroring the per-process isolation of the executor path.
    """
    from repro.emulator.batchkernel import BatchMember, run_batch

    members = [
        BatchMember(
            label=job.label,
            application=job.application,
            spec=job.spec,
            config=job.config,
        )
        for job in jobs
    ]
    run = run_batch(members)
    results: List[Optional[JobResult]] = []
    failures: List[JobFailure] = []
    for job, outcome in zip(jobs, run.outcomes):
        if outcome.error is not None:
            results.append(None)
            failures.append(
                JobFailure(
                    label=job.label,
                    attempts=1,
                    kind="error",
                    error=type(outcome.error).__name__,
                    message=str(outcome.error),
                )
            )
        else:
            results.append(_result_from_sim(job.label, outcome.sim))
    return BatchResult(
        results=tuple(results),
        failures=tuple(failures),
        stats=ExecutorStats(attempts=len(jobs)),
    )


def emulate_batch(
    jobs: Sequence[EmulationJob],
    workers: Optional[int] = None,
    serial_threshold: int = 3,
    policy: Optional[ExecutorPolicy] = None,
    chunksize: Optional[int] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> BatchResult:
    """Run ``jobs`` under supervision; never raises on job failures.

    Returns the full :class:`BatchResult`: results in input order
    (``None`` at failed positions), the structured failure ledger, and
    supervision stats.  ``checkpoint_dir`` enables the crash-safe
    journal; ``resume`` replays it and re-runs only the missing jobs.

    When *every* job asks for the ``batch`` engine and checkpointing is
    off, the batch collapses into one vectorized lockstep call
    (:func:`repro.emulator.batchkernel.run_batch`) instead of N
    process-pool jobs — per-job results are identical because the
    engines are tick-for-tick equivalent (ENG-1).  With
    ``checkpoint_dir``/``resume`` the supervised per-job path is kept so
    journal semantics stay unchanged.
    """
    if (
        jobs
        and all(job.engine == "batch" for job in jobs)
        and checkpoint_dir is None
        and not resume
    ):
        return _vectorized_batch(jobs)
    executor = CampaignExecutor(
        _run_job,
        policy=policy,
        workers=workers,
        serial_threshold=serial_threshold,
        chunksize=chunksize,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name,
        resume=resume,
    )
    return executor.run(jobs)


def parallel_emulate(
    jobs: Sequence[EmulationJob],
    workers: Optional[int] = None,
    serial_threshold: int = 3,
    policy: Optional[ExecutorPolicy] = None,
    chunksize: Optional[int] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> List[JobResult]:
    """Run ``jobs`` and return results in input order.

    ``workers=None`` lets the executor pick (CPU count); batches smaller
    than ``serial_threshold`` or ``workers=1`` run serially — process
    startup would cost more than it buys.  Any exhausted job raises
    :class:`JobError` naming every failed label; unlike the historical
    all-or-nothing behaviour the exception now carries the structured
    ``failures`` ledger *and* ``partial_results`` — the completed
    summaries are never discarded.
    """
    batch = emulate_batch(
        jobs,
        workers=workers,
        serial_threshold=serial_threshold,
        policy=policy,
        chunksize=chunksize,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name,
        resume=resume,
    )
    batch.raise_on_failure(what="emulation job")
    return list(batch.results)
