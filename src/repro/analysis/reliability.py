"""Reliability analysis: execution-time overhead and completion probability.

The fault-injection subsystem (:mod:`repro.faults`) makes the emulator a
reliability-estimation tool as well: sweep a transient fault rate over a
seed population and measure

* the **completion probability** — the fraction of runs that retire every
  flow (a run counts as completed even when the retry protocol had to
  re-arbitrate packages, as long as nothing was abandoned);
* the **execution-time overhead** of the retry/backoff protocol against the
  fault-free baseline of the same configuration.

The sweep reuses the campaign machinery's variant/export conventions: each
(rate, seed) pair is one :class:`~repro.analysis.campaign.Variant`-shaped
point, and the curve exports as CSV/Markdown exactly like a
:class:`~repro.analysis.campaign.Campaign` table.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    canonical_digest,
)
from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import SegBusEmulator
from repro.emulator.fastkernel import resolve_engine
from repro.errors import FaultConfigError, SegBusError
from repro.faults.model import KIND_CORRUPTION, TRANSIENT_KINDS, FaultPlan
from repro.faults.policy import RetryPolicy
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class ReliabilityPoint:
    """Aggregated measurements at one fault rate (over all seeds)."""

    rate: float
    runs: int
    completed: int
    degraded: int
    failed: int
    mean_execution_time_us: float  # over runs that produced a report
    overhead_pct: float            # vs the fault-free baseline
    mean_retries: float
    mean_nacks: float
    mean_injected: float

    @property
    def completion_probability(self) -> float:
        return self.completed / self.runs if self.runs else 0.0

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "runs": self.runs,
            "completed": self.completed,
            "degraded": self.degraded,
            "failed": self.failed,
            "completion_probability": round(self.completion_probability, 4),
            "mean_execution_time_us": round(self.mean_execution_time_us, 3),
            "overhead_pct": round(self.overhead_pct, 3),
            "mean_retries": round(self.mean_retries, 2),
            "mean_nacks": round(self.mean_nacks, 2),
            "mean_injected": round(self.mean_injected, 2),
        }


COLUMNS = (
    "rate",
    "runs",
    "completed",
    "degraded",
    "failed",
    "completion_probability",
    "mean_execution_time_us",
    "overhead_pct",
    "mean_retries",
    "mean_nacks",
    "mean_injected",
)


@dataclass(frozen=True)
class ReliabilityCurve:
    """One fault-rate sweep of an (application, platform) pair."""

    application: str
    kind: str
    baseline_execution_time_us: float
    points: Tuple[ReliabilityPoint, ...]

    def point_at(self, rate: float) -> ReliabilityPoint:
        for point in self.points:
            if point.rate == rate:
                return point
        raise KeyError(f"no sweep point at rate {rate}")

    def as_dict(self) -> dict:
        return {
            "application": self.application,
            "kind": self.kind,
            "baseline_execution_time_us": round(
                self.baseline_execution_time_us, 3
            ),
            "points": [p.as_dict() for p in self.points],
        }

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        text = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=COLUMNS, lineterminator="\n")
        writer.writeheader()
        for point in self.points:
            writer.writerow(point.as_dict())
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_markdown(self) -> str:
        header = "| " + " | ".join(COLUMNS) + " |"
        rule = "|" + "|".join("---" for _ in COLUMNS) + "|"
        body = [
            "| " + " | ".join(str(p.as_dict()[c]) for c in COLUMNS) + " |"
            for p in self.points
        ]
        return "\n".join([header, rule] + body)


_RATE_KW = {
    "package_corruption": "corruption_rate",
    "grant_loss": "grant_loss_rate",
    "fu_stall": "stall_rate",
    "bu_drop": "bu_drop_rate",
}


@dataclass(frozen=True)
class _ReliabilityJob:
    """One (rate, seed) emulation, picklable for the campaign executor."""

    label: str
    application: PSDFGraph
    platform: SegBusPlatform
    kind: str
    rate: float
    seed: int
    stall_ticks: int
    retry_policy: RetryPolicy
    config: Optional[EmulationConfig] = field(default=None)
    engine: Optional[str] = field(default=None)

    def digest(self) -> str:
        return canonical_digest(
            self.application,
            self.platform,
            self.kind,
            repr(self.rate),
            self.seed,
            self.stall_ticks,
            self.retry_policy,
            self.config,
            self.engine or "",
        )


def _run_reliability_job(job: _ReliabilityJob) -> Dict[str, object]:
    """Emulate one sweep point; emulation-level failure is a *result*.

    A :class:`~repro.errors.SegBusError` (retry exhaustion under a
    ``fail`` policy, a watchdog/budget stop) is the measurement — the
    run counts as *failed* — so only infrastructure problems (worker
    death, timeout, poisoned pickle) reach the executor's failure
    ledger.
    """
    plan = FaultPlan.transient(
        seed=job.seed,
        stall_ticks=job.stall_ticks,
        **{_RATE_KW[job.kind]: job.rate},
    )
    try:
        report = SegBusEmulator.from_models(
            job.application,
            job.platform,
            config=job.config,
            fault_plan=plan,
            retry_policy=job.retry_policy,
        ).run(engine=job.engine)
    except SegBusError:
        return {"status": "failed"}
    return _report_outcome(report)


def _report_outcome(report) -> Dict[str, object]:
    """The per-run measurement dict, shared by the executor and batch paths."""
    return {
        "status": "degraded" if report.degraded else "completed",
        "time_us": report.execution_time_us,
        "retries": report.total_retries,
        "nacks": report.total_nacks,
        "injected": (
            report.fault_summary["total"] if report.fault_summary else 0
        ),
    }


def _vectorized_sweep(
    application: PSDFGraph,
    platform: SegBusPlatform,
    rates: Sequence[float],
    kind: str,
    seeds: Sequence[int],
    policy: RetryPolicy,
    config: Optional[EmulationConfig],
    stall_ticks: int,
) -> Tuple[float, Dict[str, Dict[str, object]]]:
    """Run the whole (rate, seed) grid as one lockstep mega-batch.

    One model construction is shared by every point, the batch kernel
    groups the grid into a single compatibility group, and low-rate
    members whose fault streams provably never fire are cloned from the
    group's reference run instead of being re-simulated — this is where
    the sweep's aggregate-throughput win comes from on a single core.
    The fault-free baseline rides along as the first member (under the
    *default* retry policy, exactly like the executor path's baseline).
    A member whose emulation raises :class:`~repro.errors.SegBusError`
    is a *failed* measurement, not an infrastructure failure, and does
    not poison its siblings.
    """
    from repro.emulator.batchkernel import BatchMember, run_batch

    emulator = SegBusEmulator.from_models(application, platform, config=config)
    members = [
        BatchMember(
            label="baseline",
            application=emulator.application,
            spec=emulator.spec,
            config=config,
        )
    ]
    for rate in rates:
        for seed in seeds:
            members.append(
                BatchMember(
                    label=f"{kind}@{rate:g}#s{seed}",
                    application=emulator.application,
                    spec=emulator.spec,
                    config=config,
                    fault_plan=FaultPlan.transient(
                        seed=seed,
                        stall_ticks=stall_ticks,
                        **{_RATE_KW[kind]: rate},
                    ),
                    retry_policy=policy,
                )
            )
    run = run_batch(members)
    base = run.outcomes[0]
    if base.error is not None:
        raise base.error
    outcomes: Dict[str, Dict[str, object]] = {}
    for outcome in run.outcomes[1:]:
        if outcome.error is not None:
            outcomes[outcome.label] = {"status": "failed"}
        else:
            outcomes[outcome.label] = _report_outcome(outcome.report)
    return base.report.execution_time_us, outcomes


def reliability_sweep(
    application: PSDFGraph,
    platform: SegBusPlatform,
    rates: Sequence[float],
    kind: str = KIND_CORRUPTION,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    retry_policy: Optional[RetryPolicy] = None,
    config: Optional[EmulationConfig] = None,
    stall_ticks: int = 50,
    workers: Optional[int] = None,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
    engine: Optional[str] = None,
) -> ReliabilityCurve:
    """Sweep ``kind`` fault rates over a seed population.

    Every (rate, seed) pair is one deterministic emulation; a run that
    raises a :class:`~repro.errors.SegBusError` (retry exhaustion under a
    ``fail`` policy, a watchdog/budget stop) counts as *failed*, a run that
    finishes with ``degraded=True`` as *degraded*, anything else as
    *completed*.  The fault-free baseline is emulated once for the
    overhead column.

    ``engine`` picks the simulation kernel (default honours
    ``SEGBUS_ENGINE``).  With the ``batch`` engine and no checkpointing,
    the whole grid runs as *one* vectorized lockstep batch
    (:func:`repro.emulator.batchkernel.run_batch`) instead of N
    process-pool jobs; the aggregated curve is byte-identical to the
    per-job path because every engine is tick-for-tick equivalent
    (ENG-1).  With ``checkpoint_dir``/``resume`` the per-job executor
    path is used regardless, so journaling semantics stay unchanged.

    The grid otherwise runs through the supervised campaign executor
    (:mod:`repro.analysis.executor`): ``workers`` parallelizes it,
    ``executor_policy`` sets per-job timeout/retries, and
    ``checkpoint_dir``/``resume`` journal completed points so an
    interrupted sweep continues where it stopped — the aggregated curve
    is byte-identical either way (chaos-gated in the test suite).
    """
    if kind not in TRANSIENT_KINDS:
        raise FaultConfigError(
            f"reliability sweep needs a transient fault kind, got {kind!r} "
            f"(expected one of {sorted(TRANSIENT_KINDS)})"
        )
    policy = retry_policy or RetryPolicy(on_exhaustion="degrade")
    resolved = resolve_engine(engine)
    if resolved == "batch" and checkpoint_dir is None and not resume:
        baseline_us, outcomes = _vectorized_sweep(
            application, platform, rates, kind, seeds, policy, config,
            stall_ticks,
        )
    else:
        baseline = SegBusEmulator.from_models(
            application, platform, config=config
        ).run(engine=resolved)
        baseline_us = baseline.execution_time_us

        jobs = [
            _ReliabilityJob(
                label=f"{kind}@{rate:g}#s{seed}",
                application=application,
                platform=platform,
                kind=kind,
                rate=rate,
                seed=seed,
                stall_ticks=stall_ticks,
                retry_policy=policy,
                config=config,
                engine=resolved,
            )
            for rate in rates
            for seed in seeds
        ]
        executor = CampaignExecutor(
            _run_reliability_job,
            policy=executor_policy,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_name=checkpoint_name,
            resume=resume,
        )
        batch = executor.run(jobs).raise_on_failure(what="reliability job")
        outcomes = dict(zip((job.label for job in jobs), batch.results))

    points: List[ReliabilityPoint] = []
    for rate in rates:
        completed = degraded = failed = 0
        times_us: List[float] = []
        retries: List[int] = []
        nacks: List[int] = []
        injected: List[int] = []
        for seed in seeds:
            outcome = outcomes[f"{kind}@{rate:g}#s{seed}"]
            if outcome["status"] == "failed":
                failed += 1
                continue
            times_us.append(outcome["time_us"])
            retries.append(outcome["retries"])
            nacks.append(outcome["nacks"])
            injected.append(outcome["injected"])
            if outcome["status"] == "degraded":
                degraded += 1
            else:
                completed += 1
        reported = len(times_us)
        mean_us = sum(times_us) / reported if reported else 0.0
        points.append(
            ReliabilityPoint(
                rate=rate,
                runs=len(seeds),
                completed=completed,
                degraded=degraded,
                failed=failed,
                mean_execution_time_us=mean_us,
                overhead_pct=(
                    100.0 * (mean_us - baseline_us) / baseline_us
                    if reported
                    else 0.0
                ),
                mean_retries=sum(retries) / reported if reported else 0.0,
                mean_nacks=sum(nacks) / reported if reported else 0.0,
                mean_injected=sum(injected) / reported if reported else 0.0,
            )
        )
    return ReliabilityCurve(
        application=application.name,
        kind=kind,
        baseline_execution_time_us=baseline_us,
        points=tuple(points),
    )
