"""Reliability analysis: execution-time overhead and completion probability.

The fault-injection subsystem (:mod:`repro.faults`) makes the emulator a
reliability-estimation tool as well: sweep a transient fault rate over a
seed population and measure

* the **completion probability** — the fraction of runs that retire every
  flow (a run counts as completed even when the retry protocol had to
  re-arbitrate packages, as long as nothing was abandoned);
* the **execution-time overhead** of the retry/backoff protocol against the
  fault-free baseline of the same configuration.

The sweep reuses the campaign machinery's variant/export conventions: each
(rate, seed) pair is one :class:`~repro.analysis.campaign.Variant`-shaped
point, and the curve exports as CSV/Markdown exactly like a
:class:`~repro.analysis.campaign.Campaign` table.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import SegBusEmulator
from repro.errors import FaultConfigError, SegBusError
from repro.faults.model import KIND_CORRUPTION, TRANSIENT_KINDS, FaultPlan
from repro.faults.policy import RetryPolicy
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class ReliabilityPoint:
    """Aggregated measurements at one fault rate (over all seeds)."""

    rate: float
    runs: int
    completed: int
    degraded: int
    failed: int
    mean_execution_time_us: float  # over runs that produced a report
    overhead_pct: float            # vs the fault-free baseline
    mean_retries: float
    mean_nacks: float
    mean_injected: float

    @property
    def completion_probability(self) -> float:
        return self.completed / self.runs if self.runs else 0.0

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "runs": self.runs,
            "completed": self.completed,
            "degraded": self.degraded,
            "failed": self.failed,
            "completion_probability": round(self.completion_probability, 4),
            "mean_execution_time_us": round(self.mean_execution_time_us, 3),
            "overhead_pct": round(self.overhead_pct, 3),
            "mean_retries": round(self.mean_retries, 2),
            "mean_nacks": round(self.mean_nacks, 2),
            "mean_injected": round(self.mean_injected, 2),
        }


COLUMNS = (
    "rate",
    "runs",
    "completed",
    "degraded",
    "failed",
    "completion_probability",
    "mean_execution_time_us",
    "overhead_pct",
    "mean_retries",
    "mean_nacks",
    "mean_injected",
)


@dataclass(frozen=True)
class ReliabilityCurve:
    """One fault-rate sweep of an (application, platform) pair."""

    application: str
    kind: str
    baseline_execution_time_us: float
    points: Tuple[ReliabilityPoint, ...]

    def point_at(self, rate: float) -> ReliabilityPoint:
        for point in self.points:
            if point.rate == rate:
                return point
        raise KeyError(f"no sweep point at rate {rate}")

    def as_dict(self) -> dict:
        return {
            "application": self.application,
            "kind": self.kind,
            "baseline_execution_time_us": round(
                self.baseline_execution_time_us, 3
            ),
            "points": [p.as_dict() for p in self.points],
        }

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        text = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=COLUMNS, lineterminator="\n")
        writer.writeheader()
        for point in self.points:
            writer.writerow(point.as_dict())
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_markdown(self) -> str:
        header = "| " + " | ".join(COLUMNS) + " |"
        rule = "|" + "|".join("---" for _ in COLUMNS) + "|"
        body = [
            "| " + " | ".join(str(p.as_dict()[c]) for c in COLUMNS) + " |"
            for p in self.points
        ]
        return "\n".join([header, rule] + body)


def reliability_sweep(
    application: PSDFGraph,
    platform: SegBusPlatform,
    rates: Sequence[float],
    kind: str = KIND_CORRUPTION,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    retry_policy: Optional[RetryPolicy] = None,
    config: Optional[EmulationConfig] = None,
    stall_ticks: int = 50,
) -> ReliabilityCurve:
    """Sweep ``kind`` fault rates over a seed population.

    Every (rate, seed) pair is one deterministic emulation; a run that
    raises a :class:`~repro.errors.SegBusError` (retry exhaustion under a
    ``fail`` policy, a watchdog/budget stop) counts as *failed*, a run that
    finishes with ``degraded=True`` as *degraded*, anything else as
    *completed*.  The fault-free baseline is emulated once for the
    overhead column.
    """
    if kind not in TRANSIENT_KINDS:
        raise FaultConfigError(
            f"reliability sweep needs a transient fault kind, got {kind!r} "
            f"(expected one of {sorted(TRANSIENT_KINDS)})"
        )
    policy = retry_policy or RetryPolicy(on_exhaustion="degrade")
    baseline = SegBusEmulator.from_models(
        application, platform, config=config
    ).run()
    baseline_us = baseline.execution_time_us

    rate_kw = {
        "package_corruption": "corruption_rate",
        "grant_loss": "grant_loss_rate",
        "fu_stall": "stall_rate",
        "bu_drop": "bu_drop_rate",
    }[kind]

    points: List[ReliabilityPoint] = []
    for rate in rates:
        completed = degraded = failed = 0
        times_us: List[float] = []
        retries: List[int] = []
        nacks: List[int] = []
        injected: List[int] = []
        for seed in seeds:
            plan = FaultPlan.transient(
                seed=seed, stall_ticks=stall_ticks, **{rate_kw: rate}
            )
            try:
                report = SegBusEmulator.from_models(
                    application,
                    platform,
                    config=config,
                    fault_plan=plan,
                    retry_policy=policy,
                ).run()
            except SegBusError:
                failed += 1
                continue
            times_us.append(report.execution_time_us)
            retries.append(report.total_retries)
            nacks.append(report.total_nacks)
            injected.append(
                report.fault_summary["total"] if report.fault_summary else 0
            )
            if report.degraded:
                degraded += 1
            else:
                completed += 1
        reported = len(times_us)
        mean_us = sum(times_us) / reported if reported else 0.0
        points.append(
            ReliabilityPoint(
                rate=rate,
                runs=len(seeds),
                completed=completed,
                degraded=degraded,
                failed=failed,
                mean_execution_time_us=mean_us,
                overhead_pct=(
                    100.0 * (mean_us - baseline_us) / baseline_us
                    if reported
                    else 0.0
                ),
                mean_retries=sum(retries) / reported if reported else 0.0,
                mean_nacks=sum(nacks) / reported if reported else 0.0,
                mean_injected=sum(injected) / reported if reported else 0.0,
            )
        )
    return ReliabilityCurve(
        application=application.name,
        kind=kind,
        baseline_execution_time_us=baseline_us,
        points=tuple(points),
    )
