"""Granularity rebalancing of PSDF applications.

*"The granularity level of application components can also be balanced in
order to eliminate the traffic congestion located at certain BUs, that will
further improve the overall performance"* (section 5).  This module provides
the two granularity transformations and a rebalancing driver:

* :func:`merge_processes` — fuse two processes into one FU; their mutual
  flows become internal (vanish from the bus), external flows re-point to
  the merged process.  Legal only when the fusion cannot create a cycle.
* :func:`split_process` — split a process into a two-stage chain; the second
  stage takes over a chosen subset of the output flows, fed by a new
  internal flow sized to the moved traffic.  The two halves can then be
  placed on different segments.
* :func:`suggest_rebalance` — locate the most congested BU, pick the
  heaviest flow crossing it and produce the merge candidate that removes
  that traffic from the bus, with the emulated effect quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import PSDFError
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.graph import PSDFGraph


def _reachable(graph: PSDFGraph, start: str, goal: str, skip_direct: bool) -> bool:
    """True if ``goal`` is reachable from ``start``; optionally ignoring the
    direct edges start->goal."""
    frontier = [start]
    seen: Set[str] = set()
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        for flow in graph.outgoing(node):
            if skip_direct and node == start and flow.target == goal:
                continue
            if flow.target == goal:
                return True
            frontier.append(flow.target)
    return False


def merge_processes(
    graph: PSDFGraph, first: str, second: str, merged_name: Optional[str] = None
) -> PSDFGraph:
    """Fuse ``first`` and ``second`` into one process.

    Flows between the pair become FU-internal and disappear; every other
    flow endpoint is redirected to the merged process.  Parallel flows from
    the merged process to one target (or from one source) are aggregated by
    summing their data items under the smaller T, keeping the PSDF
    well-formedness rule of one flow per (source, target, T).

    Raises :class:`~repro.errors.PSDFError` when the merge would create a
    cycle (an indirect path exists between the two processes).
    """
    graph.process(first)
    graph.process(second)
    if first == second:
        raise PSDFError("cannot merge a process with itself")
    for a, b in ((first, second), (second, first)):
        if _reachable(graph, a, b, skip_direct=True):
            raise PSDFError(
                f"merging {first!r} and {second!r} would create a cycle: "
                f"an indirect path {a} -> ... -> {b} exists"
            )
    name = merged_name or f"{first}{second}"
    pair = {first, second}

    def endpoint(p: str) -> str:
        return name if p in pair else p

    aggregated: Dict[Tuple[str, str], List[PacketFlow]] = {}
    for flow in graph.flows:
        if flow.source in pair and flow.target in pair:
            continue  # internalized
        key = (endpoint(flow.source), endpoint(flow.target))
        aggregated.setdefault(key, []).append(flow)

    flows: List[PacketFlow] = []
    for (source, target), members in aggregated.items():
        if len(members) == 1 and source == members[0].source and \
                target == members[0].target:
            flows.append(members[0])
            continue
        # aggregate re-pointed (possibly parallel) flows
        by_order: Dict[int, List[PacketFlow]] = {}
        for member in members:
            by_order.setdefault(member.order, []).append(member)
        for order, group in by_order.items():
            total = sum(m.data_items for m in group)
            # keep the heaviest member's cost model
            cost = max(group, key=lambda m: m.data_items).cost
            flows.append(
                PacketFlow(
                    source=source,
                    target=target,
                    data_items=total,
                    order=order,
                    cost=cost,
                )
            )
    return PSDFGraph.from_edges(
        [(f.source, f.target, f.data_items, f.order, f.cost) for f in flows],
        name=f"{graph.name}_merged",
    )


def split_process(
    graph: PSDFGraph,
    process: str,
    moved_targets: Iterable[str],
    stage_names: Optional[Tuple[str, str]] = None,
    internal_cost: Optional[FlowCost] = None,
) -> PSDFGraph:
    """Split ``process`` into a two-stage chain.

    Stage 1 keeps the incoming flows and the outgoing flows *not* listed in
    ``moved_targets``; stage 2 takes over the moved flows, fed by a new
    internal flow whose data volume equals the moved traffic (the tokens
    stage 2 transforms).  The internal flow's T is the smallest moved T so
    scheduling order is preserved.
    """
    graph.process(process)
    moved = set(moved_targets)
    outgoing = {f.target: f for f in graph.outgoing(process)}
    unknown = sorted(moved - set(outgoing))
    if unknown:
        raise PSDFError(
            f"{process!r} has no flows to: {', '.join(unknown)}"
        )
    if not moved:
        raise PSDFError("no targets selected for the second stage")
    if moved == set(outgoing):
        raise PSDFError(
            "cannot move every output flow: stage 1 would become a dead end"
        )
    stage1, stage2 = stage_names or (f"{process}a", f"{process}b")
    moved_flows = [outgoing[t] for t in sorted(moved)]
    internal_items = sum(f.data_items for f in moved_flows)
    internal_order = min(f.order for f in moved_flows)
    cost = internal_cost or FlowCost(c_fixed=8, c_item=1)

    edges: List[Tuple] = []
    for flow in graph.flows:
        source, target = flow.source, flow.target
        if source == process:
            source = stage2 if target in moved else stage1
        if target == process:
            target = stage1
        edges.append((source, target, flow.data_items, flow.order, flow.cost))
    edges.append((stage1, stage2, internal_items, internal_order, cost))
    return PSDFGraph.from_edges(edges, name=f"{graph.name}_split")


@dataclass(frozen=True)
class RebalanceSuggestion:
    """One granularity-rebalancing candidate with its measured effect."""

    congested_bu: str
    flow_source: str
    flow_target: str
    flow_items: int
    merged_graph: PSDFGraph
    merged_process: str
    baseline_us: float
    rebalanced_us: float

    @property
    def improvement(self) -> float:
        """Relative execution-time change (positive = faster)."""
        return 1.0 - self.rebalanced_us / self.baseline_us


def suggest_rebalance(
    graph: PSDFGraph,
    placement: Dict[str, int],
    segment_frequencies_mhz,
    ca_frequency_mhz: float,
    package_size: int,
) -> Optional[RebalanceSuggestion]:
    """Merge the endpoints of the heaviest congested-BU flow and measure.

    Returns ``None`` when there is no inter-segment traffic or no legal
    merge.  The merged process is placed on the segment of the flow's
    source (removing the crossing entirely).
    """
    from repro.emulator.emulator import emulate  # local import: avoid cycle
    from repro.model.mapping import Allocation, map_application

    def run(app: PSDFGraph, place: Dict[str, int]) -> float:
        psm = map_application(
            app,
            Allocation.from_placement(place),
            segment_frequencies_mhz=segment_frequencies_mhz,
            ca_frequency_mhz=ca_frequency_mhz,
            package_size=package_size,
        )
        return emulate(app, psm.platform).execution_time_us

    crossing = [
        f for f in graph.flows if placement[f.source] != placement[f.target]
    ]
    if not crossing:
        return None
    crossing.sort(key=lambda f: (-f.data_items, f.source, f.target))
    baseline = run(graph, placement)
    for flow in crossing:
        try:
            merged = merge_processes(graph, flow.source, flow.target)
        except PSDFError:
            continue  # would create a cycle; try the next flow
        merged_name = f"{flow.source}{flow.target}"
        new_placement = {
            name: seg for name, seg in placement.items()
            if name not in (flow.source, flow.target)
        }
        new_placement[merged_name] = placement[flow.source]
        if not set(new_placement.values()) == set(placement.values()):
            continue  # merge emptied a segment; not a legal PSM
        rebalanced = run(merged, new_placement)
        bu_pair = tuple(sorted((placement[flow.source], placement[flow.target])))
        return RebalanceSuggestion(
            congested_bu=f"BU{bu_pair[0]}{bu_pair[1]}",
            flow_source=flow.source,
            flow_target=flow.target,
            flow_items=flow.data_items,
            merged_graph=merged,
            merged_process=merged_name,
            baseline_us=baseline,
            rebalanced_us=rebalanced,
        )
    return None
