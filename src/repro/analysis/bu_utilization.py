"""BU useful-period / waiting-period analysis (paper section 4, Discussion).

*"The useful period (UP) of any given BU is the time (in clock ticks)
required to load and then unload the data package — twice the size of a
package.  Once a package is loaded, before unloading, the BU has to wait for
a grant signal coming from the next segment — the waiting period (WP) ...
An average value for WP over the number of transfers can easily be computed
given the data offered by the emulator (corresponding TCTs)."*

For the paper's example: UP12 = 2304, TCT12 = 2336, W̄P12 = 1;
UP23 = 144, TCT23 = 146, W̄P23 = 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.emulator.report import BUResult, EmulationReport


@dataclass(frozen=True)
class BUUtilization:
    """UP/WP breakdown of one border unit."""

    name: str
    packages: int
    useful_period: int
    tct: int
    mean_waiting_period: float

    @property
    def waiting_total(self) -> int:
        return self.tct - self.useful_period

    @property
    def congested(self) -> bool:
        """Heuristic congestion flag: waiting exceeds half a package per transfer."""
        return self.packages > 0 and self.mean_waiting_period > 0.5 * (
            self.useful_period / (2 * max(self.packages, 1))
        )


def _analyze(bu: BUResult, package_size: int) -> BUUtilization:
    packages = bu.output_packages
    useful = 2 * package_size * packages
    wp = 0.0 if packages == 0 else (bu.tct - useful) / packages
    return BUUtilization(
        name=bu.name,
        packages=packages,
        useful_period=useful,
        tct=bu.tct,
        mean_waiting_period=wp,
    )


def bu_utilization(report: EmulationReport) -> Tuple[BUUtilization, ...]:
    """UP/W̄P for every BU of a finished emulation, in platform order."""
    return tuple(_analyze(bu, report.package_size) for bu in report.bu_results)
