"""Design-space exploration: the designer's decision loop of Fig. 3.

*"After the analysis of the returned results, the designer is able to decide
whether the emulated configuration will be optimal or not for the target
application, and can change the platform configuration before moving to
lower levels of the design process."*  :func:`explore_design_space`
automates the loop: enumerate candidate configurations (segment counts ×
package sizes × allocations), emulate each, and rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    canonical_digest,
)
from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import emulate
from repro.emulator.report import EmulationReport
from repro.model.elements import SegBusPlatform
from repro.model.mapping import Allocation, map_application
from repro.placement.placetool import PlaceTool
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration with its emulated performance.

    ``estimated_us`` carries the stochastic pre-estimate when the
    exploration ran with ``estimator_prune`` (None otherwise).
    """

    segment_count: int
    package_size: int
    allocation: Allocation
    allocation_source: str
    report: EmulationReport
    estimated_us: Optional[float] = None

    @property
    def execution_time_us(self) -> float:
        return self.report.execution_time_us


@dataclass(frozen=True)
class _CandidateJob:
    """One fully-mapped candidate, picklable for the executor.

    The platform is mapped in the parent — ``segment_frequencies_mhz``
    is an arbitrary callable and need not pickle — so the worker only
    emulates.
    """

    label: str
    application: PSDFGraph
    platform: SegBusPlatform
    config: Optional[EmulationConfig] = field(default=None)

    def digest(self) -> str:
        return canonical_digest(
            self.label, self.application, self.platform, self.config
        )


def _run_candidate(job: _CandidateJob) -> EmulationReport:
    return emulate(job.application, job.platform, config=job.config)


def explore_design_space(
    application: PSDFGraph,
    segment_counts: Sequence[int],
    package_sizes: Sequence[int],
    segment_frequencies_mhz: Callable[[int], Sequence[float]],
    ca_frequency_mhz: float,
    extra_allocations: Optional[Sequence[Tuple[str, Allocation]]] = None,
    config: Optional[EmulationConfig] = None,
    place_tool: Optional[PlaceTool] = None,
    workers: Optional[int] = None,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
    estimator_prune: Optional[int] = None,
) -> Tuple[DesignPoint, ...]:
    """Emulate every candidate configuration; return points sorted best-first.

    For each segment count an allocation is produced by the PlaceTool;
    ``extra_allocations`` adds hand-made candidates (e.g. the paper's
    Fig. 9 rows) labelled by name.  The candidate grid runs through the
    supervised campaign executor: ``workers`` fans it out,
    ``executor_policy`` adds per-candidate timeout/retries, and
    ``checkpoint_dir``/``resume`` let an interrupted exploration pick up
    where it stopped.

    ``estimator_prune`` turns on the fast inner loop: every candidate is
    first ranked by the stochastic contention estimate
    (:func:`repro.analysis.stochastic.stochastic_estimate`, microseconds
    per candidate) and only the best ``estimator_prune`` survivors are
    emulated — the estimator prunes, the engines confirm.  Returned points
    then carry their ``estimated_us``.
    """
    tool = place_tool or PlaceTool()
    candidates: List[Tuple[str, Allocation]] = []
    for count in segment_counts:
        solved = tool.solve(application, count)
        candidates.append((f"placetool[{solved.solver}]", solved.allocation()))
    for label, allocation in extra_allocations or ():
        candidates.append((label, allocation))

    grid: List[Tuple[str, Allocation, int, _CandidateJob]] = []
    for label, allocation in candidates:
        count = allocation.segment_count
        for size in package_sizes:
            psm = map_application(
                application,
                allocation,
                segment_frequencies_mhz=segment_frequencies_mhz(count),
                ca_frequency_mhz=ca_frequency_mhz,
                package_size=size,
            )
            grid.append(
                (
                    label,
                    allocation,
                    size,
                    _CandidateJob(
                        label=f"{label}|s{count}|p{size}",
                        application=application,
                        platform=psm.platform,
                        config=config,
                    ),
                )
            )

    estimates: List[Optional[float]] = [None] * len(grid)
    if estimator_prune is not None:
        if estimator_prune < 1:
            raise ValueError(
                f"estimator_prune must be >= 1, got {estimator_prune}"
            )
        from repro.analysis.stochastic import stochastic_estimate
        from repro.emulator.kernel import PlatformSpec

        for index, (_label, _allocation, _size, job) in enumerate(grid):
            estimates[index] = stochastic_estimate(
                job.application,
                PlatformSpec.from_platform(job.platform),
                job.config or EmulationConfig(),
            ).execution_time_us
        ranked = sorted(range(len(grid)), key=lambda i: estimates[i])
        survivors = sorted(ranked[:estimator_prune])
        grid = [grid[i] for i in survivors]
        estimates = [estimates[i] for i in survivors]

    executor = CampaignExecutor(
        _run_candidate,
        policy=executor_policy,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name,
        resume=resume,
    )
    batch = executor.run([job for _, _, _, job in grid])
    batch.raise_on_failure(what="design point")

    points: List[DesignPoint] = []
    for (label, allocation, size, _job), report, estimated in zip(
        grid, batch.results, estimates
    ):
        points.append(
            DesignPoint(
                segment_count=allocation.segment_count,
                package_size=size,
                allocation=allocation,
                allocation_source=label,
                report=report,
                estimated_us=estimated,
            )
        )
    return tuple(sorted(points, key=lambda p: p.execution_time_us))
