"""Post-emulation analysis: BU utilization, bottlenecks, sweeps, DSE.

These modules implement the paper's section-4 "Discussion" analyses (useful
period / waiting period of the BUs, congestion identification) and the
design-space-exploration workflow the emulator exists to support: *"the
emulator facilitates us to estimate performance aspects of application
mapped on a number of different platform configurations during the early
stages of the design process"*.
"""

from repro.analysis.bu_utilization import BUUtilization, bu_utilization
from repro.analysis.bottleneck import BottleneckReport, find_bottlenecks
from repro.analysis.sweep import (
    SweepPoint,
    frequency_sweep,
    package_size_sweep,
    segment_count_sweep,
)
from repro.analysis.dse import DesignPoint, explore_design_space
from repro.analysis.stats import summarize, Summary
from repro.analysis.power import PowerCoefficients, PowerReport, estimate_power
from repro.analysis.granularity import (
    merge_processes,
    split_process,
    suggest_rebalance,
)
from repro.analysis.campaign import Campaign, Variant, VariantResult
from repro.analysis.analytic import (
    AnalyticEstimate,
    ContentionDiagnosis,
    PathTiming,
    analytic_estimate,
    critical_path,
    diagnose_contention,
    path_timing,
    platform_clocks,
)
from repro.analysis.stochastic import (
    PlacementMove,
    QueueModel,
    StochasticEstimate,
    stochastic_estimate,
    suggest_placement_move,
)
from repro.analysis.latency import FlowLatency, LatencyReport, measure_latencies
from repro.analysis.reliability import (
    ReliabilityCurve,
    ReliabilityPoint,
    reliability_sweep,
)
from repro.analysis.executor import (
    BatchResult,
    CampaignExecutor,
    CheckpointJournal,
    ExecutorError,
    ExecutorInterrupted,
    ExecutorPolicy,
    ExecutorStats,
    JobError,
    JobFailure,
    canonical_digest,
    execute_batch,
)
from repro.analysis.parallel import (
    EmulationJob,
    JobResult,
    emulate_batch,
    parallel_emulate,
)
from repro.analysis.visualize import activity_to_csv, psdf_to_dot, timeline_to_gantt

__all__ = [
    "BUUtilization",
    "bu_utilization",
    "BottleneckReport",
    "find_bottlenecks",
    "SweepPoint",
    "package_size_sweep",
    "segment_count_sweep",
    "DesignPoint",
    "explore_design_space",
    "summarize",
    "Summary",
    "PowerCoefficients",
    "PowerReport",
    "estimate_power",
    "merge_processes",
    "split_process",
    "suggest_rebalance",
    "Campaign",
    "Variant",
    "VariantResult",
    "ReliabilityCurve",
    "ReliabilityPoint",
    "reliability_sweep",
    "frequency_sweep",
    "AnalyticEstimate",
    "ContentionDiagnosis",
    "PathTiming",
    "analytic_estimate",
    "diagnose_contention",
    "critical_path",
    "path_timing",
    "platform_clocks",
    "PlacementMove",
    "QueueModel",
    "StochasticEstimate",
    "stochastic_estimate",
    "suggest_placement_move",
    "FlowLatency",
    "LatencyReport",
    "measure_latencies",
    "BatchResult",
    "CampaignExecutor",
    "CheckpointJournal",
    "ExecutorError",
    "ExecutorInterrupted",
    "ExecutorPolicy",
    "ExecutorStats",
    "JobError",
    "JobFailure",
    "canonical_digest",
    "execute_batch",
    "EmulationJob",
    "JobResult",
    "emulate_batch",
    "parallel_emulate",
    "activity_to_csv",
    "psdf_to_dot",
    "timeline_to_gantt",
]
