"""Communication bottleneck identification.

*"The tool helps us observe the communication bottlenecks, expressed here as
the time one package has to wait in one of the BUs until it can be delivered
to the next segment"* (section 4).  We rank BUs by total waiting time and
segments by bus utilization, and suggest the rebalancing lever the paper
mentions: adjusting granularity / placement to drain the congested BU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.bu_utilization import BUUtilization, bu_utilization
from repro.emulator.kernel import Simulation
from repro.emulator.report import EmulationReport


@dataclass(frozen=True)
class SegmentLoad:
    """Bus utilization of one segment over the whole run."""

    index: int
    busy_fs: int
    horizon_fs: int

    @property
    def utilization(self) -> float:
        return self.busy_fs / self.horizon_fs if self.horizon_fs else 0.0


@dataclass(frozen=True)
class BottleneckReport:
    """Ranked congestion view of one emulation."""

    bu_ranking: Tuple[BUUtilization, ...]
    segment_loads: Tuple[SegmentLoad, ...]

    @property
    def worst_bu(self) -> BUUtilization:
        if not self.bu_ranking:
            raise ValueError("platform has no border units")
        return self.bu_ranking[0]

    @property
    def hottest_segment(self) -> SegmentLoad:
        return max(self.segment_loads, key=lambda s: s.utilization)

    def advice(self) -> str:
        """The paper's rebalancing hint, instantiated with the findings."""
        lines = []
        if self.bu_ranking and self.bu_ranking[0].waiting_total > 0:
            bu = self.bu_ranking[0]
            lines.append(
                f"{bu.name} accumulated {bu.waiting_total} waiting ticks over "
                f"{bu.packages} packages (W̄P = {bu.mean_waiting_period:.2f}); "
                "consider moving one endpoint of its heaviest flow into the "
                "adjacent segment or increasing the package size."
            )
        hot = self.hottest_segment
        lines.append(
            f"segment {hot.index} is the busiest bus "
            f"({hot.utilization:.0%} occupied)."
        )
        return " ".join(lines)


def find_bottlenecks(sim: Simulation, report: EmulationReport) -> BottleneckReport:
    """Build the congestion view from a finished simulation + its report."""
    ranking = sorted(
        bu_utilization(report), key=lambda u: (-(u.tct - u.useful_period), u.name)
    )
    horizon = max(sim.global_end_fs, 1)
    loads = tuple(
        SegmentLoad(
            index=index,
            busy_fs=sim.segments[index].counters.busy_fs,
            horizon_fs=horizon,
        )
        for index in sorted(sim.segments)
    )
    return BottleneckReport(bu_ranking=tuple(ranking), segment_loads=loads)
