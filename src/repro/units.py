"""Exact time and frequency arithmetic for multi-clock-domain simulation.

The SegBus platform runs every segment and the Central Arbiter in its own
clock domain (the paper's example uses 91, 98, 89 and 111 MHz).  To keep the
discrete-event simulation deterministic and free of floating-point ordering
artefacts, all simulation timestamps are integer **femtoseconds** and every
clock period is an integer number of femtoseconds::

    period_fs = round(1e15 / frequency_hz)

With 64-bit integers this supports simulations of ~106 days of simulated
time, far beyond any SegBus workload.  Reported values are converted to
picoseconds/microseconds only at the presentation layer, matching the
paper's output (e.g. ``P0, Start Time = 10989ps`` is exactly one 91 MHz
cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

#: femtoseconds per second
FS_PER_SECOND = 10**15
#: femtoseconds per picosecond
FS_PER_PS = 1000
#: femtoseconds per microsecond
FS_PER_US = 10**9

MHZ = 10**6


def period_fs_from_hz(frequency_hz: float) -> int:
    """Return the clock period in femtoseconds for ``frequency_hz``.

    >>> period_fs_from_hz(91e6)
    10989011
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return round(FS_PER_SECOND / frequency_hz)


def fs_to_ps(t_fs: int) -> int:
    """Convert femtoseconds to whole picoseconds (paper's reporting unit)."""
    return t_fs // FS_PER_PS


def fs_to_us(t_fs: int) -> float:
    """Convert femtoseconds to microseconds (float, for report headlines)."""
    return t_fs / FS_PER_US


def ps_to_fs(t_ps: int) -> int:
    """Convert picoseconds to femtoseconds."""
    return t_ps * FS_PER_PS


@dataclass(frozen=True)
class Frequency:
    """A clock frequency with exact femtosecond period.

    Instances are immutable and hashable so they can key clock-domain
    dictionaries.

    >>> f = Frequency.from_mhz(91)
    >>> f.period_fs
    10989011
    >>> round(f.mhz, 2)
    91.0
    """

    hz: float

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hz}")

    @classmethod
    def from_mhz(cls, mhz: float) -> "Frequency":
        return cls(mhz * MHZ)

    @property
    def mhz(self) -> float:
        return self.hz / MHZ

    @cached_property
    def period_fs(self) -> int:
        return period_fs_from_hz(self.hz)

    @property
    def period_ps(self) -> float:
        return self.period_fs / FS_PER_PS

    def ticks_to_fs(self, ticks: int) -> int:
        """Duration of ``ticks`` whole cycles, in femtoseconds."""
        return ticks * self.period_fs

    def fs_to_ticks_ceil(self, t_fs: int) -> int:
        """Smallest number of whole cycles covering ``t_fs``."""
        period = self.period_fs
        return -(-t_fs // period)

    def next_edge_fs(self, t_fs: int) -> int:
        """First clock edge at or after ``t_fs`` (edges at multiples of the period)."""
        period = self.period_fs
        return -(-t_fs // period) * period

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mhz:.2f}MHz"
