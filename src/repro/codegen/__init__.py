"""Arbiter code generation — the paper's stated future work.

*"Future work will necessarily address ... extended support in the form of
arbiter code generation, for the implementation of the application
schedules"* (section 5).  This package generates synthesizable-style VHDL
for the platform's arbiters from a validated PSM + PSDF pair:

* :mod:`repro.codegen.vhdl` — a minimal VHDL document model and emitter;
* :mod:`repro.codegen.schedule_rom` — the application schedule as a VHDL
  constant package (one entry per package transfer: source master, target
  slave, target segment, ordering);
* :mod:`repro.codegen.sa_gen` — one Segment Arbiter entity per segment:
  request/grant ports per local master, the configured arbitration policy
  as an FSM, and the inter-segment forward port towards the CA;
* :mod:`repro.codegen.ca_gen` — the Central Arbiter entity: per-segment
  request/grant/busy ports and the linear-topology path table;
* :mod:`repro.codegen.generator` — the facade producing the full file set.

The output is deterministic (same models → byte-identical files) so it can
be checked into a hardware project and diffed.
"""

from repro.codegen.generator import ArbiterCodeGenerator, GeneratedFile

__all__ = ["ArbiterCodeGenerator", "GeneratedFile"]
