"""The arbiter code generation facade.

Takes the same inputs as the emulator (PSDF graph + platform model) and
produces the full VHDL file set: one SA entity per segment, the CA entity
and the schedule ROM package.  Generation is deterministic and validated —
the platform goes through the full constraint registry first, exactly like
an emulation run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from repro.codegen.ca_gen import ca_entity
from repro.codegen.sa_gen import sa_entity
from repro.codegen.schedule_rom import schedule_rom_package
from repro.model.elements import SegBusPlatform
from repro.model.validation import validate_platform
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class GeneratedFile:
    """One generated source file."""

    filename: str
    content: str

    @property
    def line_count(self) -> int:
        return self.content.count("\n")


class ArbiterCodeGenerator:
    """Generate the arbiter VHDL for one (application, platform) pair."""

    def __init__(self, application: PSDFGraph, platform: SegBusPlatform) -> None:
        report = validate_platform(platform, application)
        report.raise_if_invalid()
        self.application = application
        self.platform = platform

    def generate(self) -> List[GeneratedFile]:
        """Produce the full file set, deterministically ordered."""
        placement = self.platform.process_placement()
        files: List[GeneratedFile] = []
        files.append(
            GeneratedFile(
                filename="schedule_rom_pkg.vhd",
                content=schedule_rom_package(
                    self.application, placement, self.platform.package_size
                ).render(),
            )
        )
        for segment in self.platform.segments:
            masters = [
                fu.process for fu in segment.fus
                if self.application.outgoing(fu.process)
            ]
            slaves = [
                fu.process for fu in segment.fus
                if self.application.incoming(fu.process)
            ]
            entity = sa_entity(
                segment_index=segment.index,
                masters=masters,
                slaves=slaves,
                policy=segment.arbiter.policy,
                package_size=self.platform.package_size,
            )
            files.append(
                GeneratedFile(
                    filename=f"sa{segment.index}_arbiter.vhd",
                    content=entity.render(),
                )
            )
        files.append(
            GeneratedFile(
                filename="central_arbiter.vhd",
                content=ca_entity(self.platform.segment_count).render(),
            )
        )
        return files

    def write(self, output_dir: Union[str, Path]) -> List[Path]:
        """Generate and write the files; returns the written paths."""
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for generated in self.generate():
            path = directory / generated.filename
            path.write_text(generated.content, encoding="utf-8")
            written.append(path)
        return written
