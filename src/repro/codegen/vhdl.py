"""A minimal VHDL document model and emitter.

Just enough structure to generate clean, deterministic arbiter sources:
entities with typed ports and generics, architectures made of declaration
and statement blocks, and constant packages.  The emitter produces
consistently indented text; structural well-formedness (balanced
entity/architecture/process blocks, legal identifiers) is enforced at
construction so generation bugs fail fast in Python rather than at
synthesis time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List

from repro.errors import SegBusError

_IDENT_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")

#: VHDL-93 reserved words that may not be used as identifiers.
RESERVED = frozenset(
    """abs access after alias all and architecture array assert attribute
    begin block body buffer bus case component configuration constant
    disconnect downto else elsif end entity exit file for function generate
    generic group guarded if impure in inertial inout is label library
    linkage literal loop map mod nand new next nor not null of on open or
    others out package port postponed procedure process pure range record
    register reject rem report return rol ror select severity signal shared
    sla sll sra srl subtype then to transport type unaffected units until
    use variable wait when while with xnor xor""".split()
)


def check_identifier(name: str) -> str:
    """Validate a VHDL identifier; returns it for chaining."""
    if not _IDENT_RE.match(name):
        raise SegBusError(f"invalid VHDL identifier {name!r}")
    if name.lower() in RESERVED:
        raise SegBusError(f"{name!r} is a reserved VHDL word")
    return name


@dataclass(frozen=True)
class Port:
    """One entity port: ``name : direction type``."""

    name: str
    direction: str
    type: str

    def __post_init__(self) -> None:
        check_identifier(self.name)
        if self.direction not in ("in", "out", "inout"):
            raise SegBusError(
                f"port {self.name!r}: direction must be in/out/inout, "
                f"got {self.direction!r}"
            )

    def render(self) -> str:
        return f"{self.name} : {self.direction} {self.type}"


@dataclass(frozen=True)
class Generic:
    """One entity generic: ``name : type := default``."""

    name: str
    type: str
    default: str

    def __post_init__(self) -> None:
        check_identifier(self.name)

    def render(self) -> str:
        return f"{self.name} : {self.type} := {self.default}"


@dataclass
class Entity:
    """An entity plus one architecture (the generator's unit of output)."""

    name: str
    generics: List[Generic] = field(default_factory=list)
    ports: List[Port] = field(default_factory=list)
    declarations: List[str] = field(default_factory=list)
    statements: List[str] = field(default_factory=list)
    architecture: str = "rtl"
    comment: str = ""

    def __post_init__(self) -> None:
        check_identifier(self.name)
        check_identifier(self.architecture)

    def add_port(self, name: str, direction: str, type_: str) -> "Entity":
        self.ports.append(Port(name, direction, type_))
        return self

    def add_generic(self, name: str, type_: str, default: str) -> "Entity":
        self.generics.append(Generic(name, type_, default))
        return self

    def render(self) -> str:
        lines: List[str] = []
        if self.comment:
            for row in self.comment.splitlines():
                lines.append(f"-- {row}")
        lines.append("library ieee;")
        lines.append("use ieee.std_logic_1164.all;")
        lines.append("use ieee.numeric_std.all;")
        lines.append("")
        lines.append(f"entity {self.name} is")
        if self.generics:
            lines.append("  generic (")
            body = ";\n".join(f"    {g.render()}" for g in self.generics)
            lines.append(body)
            lines.append("  );")
        if self.ports:
            lines.append("  port (")
            body = ";\n".join(f"    {p.render()}" for p in self.ports)
            lines.append(body)
            lines.append("  );")
        lines.append(f"end entity {self.name};")
        lines.append("")
        lines.append(f"architecture {self.architecture} of {self.name} is")
        for decl in self.declarations:
            lines.extend(f"  {row}" for row in decl.splitlines())
        lines.append("begin")
        for stmt in self.statements:
            lines.extend(f"  {row}" for row in stmt.splitlines())
        lines.append(f"end architecture {self.architecture};")
        return "\n".join(lines) + "\n"


@dataclass
class ConstantPackage:
    """A VHDL package of constants (the schedule ROM container)."""

    name: str
    constants: List[str] = field(default_factory=list)
    types: List[str] = field(default_factory=list)
    comment: str = ""

    def __post_init__(self) -> None:
        check_identifier(self.name)

    def render(self) -> str:
        lines: List[str] = []
        if self.comment:
            for row in self.comment.splitlines():
                lines.append(f"-- {row}")
        lines.append("library ieee;")
        lines.append("use ieee.std_logic_1164.all;")
        lines.append("use ieee.numeric_std.all;")
        lines.append("")
        lines.append(f"package {self.name} is")
        for type_decl in self.types:
            lines.extend(f"  {row}" for row in type_decl.splitlines())
        for constant in self.constants:
            lines.extend(f"  {row}" for row in constant.splitlines())
        lines.append(f"end package {self.name};")
        return "\n".join(lines) + "\n"


def std_logic_vector(width: int) -> str:
    """``std_logic_vector(width-1 downto 0)`` with a width sanity check."""
    if width < 1:
        raise SegBusError(f"vector width must be >= 1, got {width}")
    return f"std_logic_vector({width - 1} downto 0)"


def bits_for(count: int) -> int:
    """Bits needed to encode ``count`` distinct values (min 1)."""
    if count < 1:
        raise SegBusError(f"count must be >= 1, got {count}")
    return max(1, (count - 1).bit_length())
