"""Exception hierarchy for the SegBus reproduction library.

Every error raised by :mod:`repro` derives from :class:`SegBusError` so that
callers can catch library failures with a single ``except`` clause while the
concrete subclasses preserve the failing subsystem:

* :class:`PSDFError` -- ill-formed application (PSDF) models.
* :class:`ModelError` -- ill-formed platform (PSM) models; its subclass
  :class:`ConstraintViolation` carries the structured diagnostics produced by
  the OCL-style constraint engine in :mod:`repro.model.constraints`.
* :class:`XMLFormatError` -- malformed XML schemes handed to the parsers in
  :mod:`repro.xmlio`.
* :class:`EmulationError` -- runtime failures of the discrete-event emulator
  (deadlock, unroutable transfer, exhausted event budget).
* :class:`PlacementError` -- infeasible allocation problems.
* :class:`ServeError` -- simulation-service failures (:mod:`repro.serve`);
  its subclasses :class:`JobValidationError` and :class:`AdmissionError`
  map to the 400 and 429 HTTP statuses of ``segbus serve``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class SegBusError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class PSDFError(SegBusError):
    """An application model (PSDF graph, flow, or schedule) is ill-formed."""


class FlowError(PSDFError):
    """A single packet flow violates the PSDF flow definition."""


class ScheduleError(PSDFError):
    """The T-ordering of flows cannot be turned into a valid schedule."""


class ModeError(PSDFError):
    """A multi-mode application or its mode-switch schedule is ill-formed."""


class ModelError(SegBusError):
    """A platform model (PSM) is structurally ill-formed."""


class ConstraintViolation(ModelError):
    """One or more OCL-style structural constraints failed validation.

    Mirrors the paper's DSL behaviour: *"Upon breach of any constraint
    requirement during the design process, the tool provides appropriate
    error message"* (section 2.2).  The ``diagnostics`` attribute holds the
    individual messages, one per breached constraint.
    """

    def __init__(self, diagnostics: Sequence[str], model_name: Optional[str] = None):
        self.diagnostics: List[str] = list(diagnostics)
        self.model_name = model_name
        heading = f"model {model_name!r}" if model_name else "model"
        message = (
            f"{len(self.diagnostics)} constraint violation(s) in {heading}:\n"
            + "\n".join(f"  - {d}" for d in self.diagnostics)
        )
        super().__init__(message)


class MappingError(ModelError):
    """An application process could not be mapped onto the platform."""


class XMLFormatError(SegBusError):
    """An XML scheme does not follow the expected M2T output structure."""


class LintError(SegBusError):
    """Static analysis refused the input (``Emulator.run(strict=True)``).

    ``findings`` holds the formatted error-severity findings; the full
    :class:`repro.lint.LintReport` travels as ``report`` for callers that
    want the structured data.
    """

    def __init__(self, findings: Sequence[str], report=None):
        self.findings: List[str] = list(findings)
        self.report = report
        message = (
            f"static analysis found {len(self.findings)} error(s):\n"
            + "\n".join(f"  - {f}" for f in self.findings)
        )
        super().__init__(message)


class EmulationError(SegBusError):
    """The emulator reached an invalid runtime state."""


class FaultConfigError(SegBusError):
    """A fault plan or resilience policy is ill-formed."""


#: how many pending-work entries a deadlock/stall message renders in full
PENDING_RENDER_CAP = 10


def _render_pending(pending: Sequence[str], cap: int = PENDING_RENDER_CAP) -> str:
    shown = list(pending[:cap])
    extra = len(pending) - len(shown)
    text = ", ".join(shown)
    if extra > 0:
        text += f", … and {extra} more"
    return text


class DeadlockError(EmulationError):
    """Emulation stalled: pending work exists but no event can make progress.

    ``pending`` always holds the *full* list of unfinished-activity
    diagnostics; the rendered message caps it at
    :data:`PENDING_RENDER_CAP` entries so giant models stay readable.
    ``last_progress_tick`` (CA clock) locates the stall in time.
    """

    def __init__(
        self,
        message: str,
        pending: Optional[Sequence[str]] = None,
        last_progress_tick: Optional[int] = None,
    ):
        self.pending: List[str] = list(pending or [])
        self.last_progress_tick = last_progress_tick
        if last_progress_tick is not None:
            message += f" (last progress at CA tick {last_progress_tick})"
        if self.pending:
            message = message + "; pending: " + _render_pending(self.pending)
        super().__init__(message)


class StallError(DeadlockError):
    """The watchdog (or a tick/event budget) detected lack of progress.

    Unlike a plain :class:`DeadlockError` — raised after the event queue
    drained with work left over — a stall is diagnosed *while the emulation
    is still producing events*: time advances but nothing retires.
    ``stalled_elements`` names the platform elements holding work.
    """

    def __init__(
        self,
        message: str,
        pending: Optional[Sequence[str]] = None,
        last_progress_tick: Optional[int] = None,
        stalled_elements: Optional[Sequence[str]] = None,
    ):
        self.stalled_elements: List[str] = list(stalled_elements or [])
        if self.stalled_elements:
            message += "; stalled: " + _render_pending(self.stalled_elements)
        super().__init__(
            message, pending=pending, last_progress_tick=last_progress_tick
        )


class RetryExhaustedError(EmulationError):
    """A transfer was NACKed/timed out more times than the policy allows."""

    def __init__(self, site: str, label: str, attempts: int):
        self.site = site
        self.label = label
        self.attempts = attempts
        super().__init__(
            f"transfer {label} abandoned at {site} after "
            f"{attempts} failed attempt(s)"
        )


class ElementFailureError(EmulationError):
    """A platform element failed permanently and the policy is fail-fast."""

    def __init__(self, site: str, at_tick: int):
        self.site = site
        self.at_tick = at_tick
        super().__init__(
            f"permanent failure of {site} at tick {at_tick} "
            "(policy on_permanent_failure='fail')"
        )


class RoutingError(EmulationError):
    """A transfer targets a device that is not reachable on the platform."""


class PlacementError(SegBusError):
    """The placement problem is infeasible or the solver misbehaved."""


class ServeError(SegBusError):
    """Base class for simulation-service failures (:mod:`repro.serve`)."""


class JobValidationError(ServeError):
    """A submitted serve job failed schema or scheme-loader validation.

    The HTTP layer maps this to ``400 Bad Request``; ``detail`` carries
    the field-level message shown to the client.
    """

    def __init__(self, detail: str):
        self.detail = detail
        super().__init__(f"invalid serve job: {detail}")


class AdmissionError(ServeError):
    """The bounded admission queue is full and the request was shed.

    The HTTP layer maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` header of ``retry_after_s`` seconds.
    """

    def __init__(self, depth: int, retry_after_s: float):
        self.depth = depth
        self.retry_after_s = retry_after_s
        super().__init__(
            f"admission queue full ({depth} job(s) queued); "
            f"retry after {retry_after_s:g}s"
        )
