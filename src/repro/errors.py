"""Exception hierarchy for the SegBus reproduction library.

Every error raised by :mod:`repro` derives from :class:`SegBusError` so that
callers can catch library failures with a single ``except`` clause while the
concrete subclasses preserve the failing subsystem:

* :class:`PSDFError` -- ill-formed application (PSDF) models.
* :class:`ModelError` -- ill-formed platform (PSM) models; its subclass
  :class:`ConstraintViolation` carries the structured diagnostics produced by
  the OCL-style constraint engine in :mod:`repro.model.constraints`.
* :class:`XMLFormatError` -- malformed XML schemes handed to the parsers in
  :mod:`repro.xmlio`.
* :class:`EmulationError` -- runtime failures of the discrete-event emulator
  (deadlock, unroutable transfer, exhausted event budget).
* :class:`PlacementError` -- infeasible allocation problems.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class SegBusError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class PSDFError(SegBusError):
    """An application model (PSDF graph, flow, or schedule) is ill-formed."""


class FlowError(PSDFError):
    """A single packet flow violates the PSDF flow definition."""


class ScheduleError(PSDFError):
    """The T-ordering of flows cannot be turned into a valid schedule."""


class ModelError(SegBusError):
    """A platform model (PSM) is structurally ill-formed."""


class ConstraintViolation(ModelError):
    """One or more OCL-style structural constraints failed validation.

    Mirrors the paper's DSL behaviour: *"Upon breach of any constraint
    requirement during the design process, the tool provides appropriate
    error message"* (section 2.2).  The ``diagnostics`` attribute holds the
    individual messages, one per breached constraint.
    """

    def __init__(self, diagnostics: Sequence[str], model_name: Optional[str] = None):
        self.diagnostics: List[str] = list(diagnostics)
        self.model_name = model_name
        heading = f"model {model_name!r}" if model_name else "model"
        message = (
            f"{len(self.diagnostics)} constraint violation(s) in {heading}:\n"
            + "\n".join(f"  - {d}" for d in self.diagnostics)
        )
        super().__init__(message)


class MappingError(ModelError):
    """An application process could not be mapped onto the platform."""


class XMLFormatError(SegBusError):
    """An XML scheme does not follow the expected M2T output structure."""


class EmulationError(SegBusError):
    """The emulator reached an invalid runtime state."""


class DeadlockError(EmulationError):
    """Emulation stalled: pending work exists but no event can make progress."""

    def __init__(self, message: str, pending: Optional[Sequence[str]] = None):
        self.pending: List[str] = list(pending or [])
        if self.pending:
            message = message + "; pending: " + ", ".join(self.pending)
        super().__init__(message)


class RoutingError(EmulationError):
    """A transfer targets a device that is not reachable on the platform."""


class PlacementError(SegBusError):
    """The placement problem is infeasible or the solver misbehaved."""
