"""The simplified stereo MP3 decoder case study (paper section 4).

The application has 15 processes P0–P14: *"P0 represents frame decoding,
P1/P8 scaling on the left/right channel, P2/P9 dequantizing left/right
channel, etc."*  The traffic volumes come verbatim from the communication
matrix of Fig. 8; the flow ordering follows the decoder pipeline; the
per-package production costs use the two-part model
``C(s) = c_fixed + c_item * s`` (see DESIGN.md, substitutions):

* ``P0 -> P1`` is pinned to the paper's only legible value, C = 250 at
  s = 36 (the ``P1_576_1_250`` element of section 3.5);
* the remaining costs are documented assumptions calibrated against every
  published checkpoint of Fig. 10 and the section-4 listing: P0 finishes
  ~75 µs, P8 ~138 µs, P7 starts ~401 µs, P14 receives its last package
  ~460 µs, total execution ~490 µs.

The three platform configurations of Fig. 9 (one/two/three segments, linear
topology) and the paper's clock plan (segments at 91/98/89 MHz, CA at
111 MHz) are provided by :func:`paper_allocation` and
:func:`paper_platform`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import SegBusError
from repro.model.elements import SegBusPlatform
from repro.model.mapping import Allocation, map_application
from repro.psdf.flow import FlowCost
from repro.psdf.graph import PSDFGraph

#: package size used for the paper's main experiment
PAPER_PACKAGE_SIZE = 36
#: central-arbiter clock (paper section 4)
PAPER_CA_FREQUENCY_MHZ = 111.0
#: segment clocks for the 3-segment configuration (paper section 4)
PAPER_SEGMENT_FREQUENCIES_MHZ = (91.0, 98.0, 89.0)

# Flow table: (source, target, data_items, order, FlowCost).
# data_items are exactly Fig. 8; orders follow the pipeline depth;
# costs are the calibrated assumptions described in the module docstring.
_FLOWS: Tuple[Tuple[str, str, int, int, FlowCost], ...] = (
    ("P0", "P1", 576, 1, FlowCost(c_fixed=34, c_item=6)),    # C(36) = 250 (paper)
    ("P0", "P8", 576, 2, FlowCost(c_fixed=34, c_item=2)),    # C(36) = 106
    ("P1", "P2", 540, 3, FlowCost(c_fixed=32, c_item=8)),    # C(36) = 320
    ("P1", "P3", 36, 4, FlowCost(c_fixed=32, c_item=8)),     # C(36) = 320
    ("P8", "P9", 540, 3, FlowCost(c_fixed=32, c_item=8)),    # C(36) = 320
    ("P8", "P3", 36, 4, FlowCost(c_fixed=32, c_item=8)),     # C(36) = 320
    ("P2", "P3", 540, 5, FlowCost(c_fixed=48, c_item=7)),    # C(36) = 300
    ("P9", "P3", 540, 5, FlowCost(c_fixed=48, c_item=7)),    # C(36) = 300
    ("P3", "P10", 36, 6, FlowCost(c_fixed=28, c_item=7)),    # C(36) = 280
    ("P3", "P11", 540, 7, FlowCost(c_fixed=28, c_item=7)),   # C(36) = 280
    ("P3", "P5", 540, 8, FlowCost(c_fixed=28, c_item=7)),    # C(36) = 280
    ("P3", "P4", 36, 9, FlowCost(c_fixed=28, c_item=7)),     # C(36) = 280
    ("P4", "P5", 36, 10, FlowCost(c_fixed=20, c_item=5)),    # C(36) = 200
    ("P10", "P11", 36, 7, FlowCost(c_fixed=20, c_item=5)),   # C(36) = 200
    ("P5", "P6", 576, 11, FlowCost(c_fixed=34, c_item=6)),   # C(36) = 250
    ("P6", "P7", 576, 12, FlowCost(c_fixed=34, c_item=6)),   # C(36) = 250
    ("P7", "P14", 576, 13, FlowCost(c_fixed=32, c_item=8)),  # C(36) = 320
    ("P11", "P12", 576, 11, FlowCost(c_fixed=34, c_item=6)),  # C(36) = 250
    ("P12", "P13", 576, 12, FlowCost(c_fixed=34, c_item=6)),  # C(36) = 250
    ("P13", "P14", 576, 13, FlowCost(c_fixed=32, c_item=8)),  # C(36) = 320
)

#: functional role of each process (paper section 4)
PROCESS_ROLES: Dict[str, str] = {
    "P0": "frame decoding",
    "P1": "scaling, left channel",
    "P2": "dequantizing, left channel",
    "P3": "joint stereo / reordering",
    "P4": "alias reduction",
    "P5": "IMDCT, left channel",
    "P6": "frequency inversion, left channel",
    "P7": "synthesis filterbank, left channel",
    "P8": "scaling, right channel",
    "P9": "dequantizing, right channel",
    "P10": "stereo side processing",
    "P11": "IMDCT, right channel",
    "P12": "frequency inversion, right channel",
    "P13": "synthesis filterbank, right channel",
    "P14": "PCM output",
}

# Fig. 9: allocation of processes on different platform configurations.
_ALLOCATIONS: Dict[int, Tuple[Tuple[str, ...], ...]] = {
    1: (
        tuple(f"P{i}" for i in range(15)),
    ),
    2: (
        ("P4", "P5", "P6", "P7", "P10", "P11", "P12", "P13", "P14"),
        ("P0", "P1", "P2", "P3", "P8", "P9"),
    ),
    3: (
        ("P0", "P1", "P2", "P3", "P8", "P9", "P10"),
        ("P5", "P6", "P7", "P11", "P12", "P13", "P14"),
        ("P4",),
    ),
}


def mp3_decoder_psdf() -> PSDFGraph:
    """The PSDF model of the MP3 decoder (Fig. 7 / Fig. 8)."""
    return PSDFGraph.from_edges(list(_FLOWS), name="MP3Decoder")


def paper_allocation(segment_count: int) -> Allocation:
    """The Fig. 9 allocation for 1, 2 or 3 segments."""
    try:
        groups = _ALLOCATIONS[segment_count]
    except KeyError:
        raise SegBusError(
            f"the paper defines allocations for 1, 2 or 3 segments, "
            f"not {segment_count}"
        ) from None
    return Allocation.from_groups(groups)


def paper_segment_frequencies_mhz(segment_count: int) -> Tuple[float, ...]:
    """Segment clock plan: the paper's 91/98/89 MHz, truncated to the count."""
    if not 1 <= segment_count <= len(PAPER_SEGMENT_FREQUENCIES_MHZ):
        raise SegBusError(
            f"no clock plan for {segment_count} segments"
        )
    return PAPER_SEGMENT_FREQUENCIES_MHZ[:segment_count]


def paper_platform(
    segment_count: int = 3,
    package_size: int = PAPER_PACKAGE_SIZE,
    allocation: Allocation = None,
) -> SegBusPlatform:
    """The validated PSM platform for one of the paper's configurations.

    ``allocation`` overrides Fig. 9 (e.g. the "P9 moved to segment 3"
    experiment); it must match ``segment_count``.
    """
    if allocation is None:
        allocation = paper_allocation(segment_count)
    if allocation.segment_count != segment_count:
        raise SegBusError(
            f"allocation has {allocation.segment_count} segments, "
            f"expected {segment_count}"
        )
    psm = map_application(
        mp3_decoder_psdf(),
        allocation,
        segment_frequencies_mhz=paper_segment_frequencies_mhz(segment_count),
        ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
        package_size=package_size,
        name="SBP",
    )
    return psm.platform


# ---------------------------------------------------------------------------
# Published reference numbers (paper section 4) used by EXPERIMENTS.md and
# the benchmark harness to report paper-vs-measured.
# ---------------------------------------------------------------------------

#: section-4 listing, 3 segments, s = 36
PAPER_3SEG_RESULTS = {
    "execution_time_us": 489.79,
    "ca_tct": 54367,
    "bu12_input_packages": 32,
    "bu12_received_from_seg1": 32,
    "bu12_transferred_to_seg2": 32,
    "bu12_tct": 2336,
    "bu23_input_packages": 2,
    "bu23_tct": 146,
    "sa1_tct": 34764,
    "sa1_intra_requests": 124,
    "sa1_inter_requests": 32,
    "sa2_tct": 46031,
    "sa2_intra_requests": 137,
    "sa2_inter_requests": 0,
    "sa3_tct": 35884,
    "sa3_intra_requests": 0,
    "sa3_inter_requests": 1,
    "p0_start_ps": 10989,
    "p0_end_ps": 75307617,
    "p8_end_ps": 137758104,
    "p7_start_ps": 401435564,
    "p14_last_package_ps": 460435092,
}

#: accuracy experiments (estimated vs actual, microseconds)
PAPER_ACCURACY_EXPERIMENTS = {
    "s36": {"estimated_us": 489.79, "actual_us": 515.2, "accuracy": 0.95},
    "s18": {"estimated_us": 560.16, "actual_us": 600.02, "accuracy": 0.93},
    "p9_moved": {"estimated_us": 540.4, "actual_us": 570.12, "accuracy": 0.95},
}

#: BU utilization analysis (clock ticks)
PAPER_BU_ANALYSIS = {
    "UP12": 2304,
    "TCT12": 2336,
    "WP12": 1,
    "UP23": 144,
    "TCT23": 146,
    "WP23": 1,
}
