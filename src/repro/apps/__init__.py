"""Application models: the paper's MP3 decoder case study plus synthetic workloads."""

from repro.apps.mp3 import (
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
    paper_segment_frequencies_mhz,
    PAPER_CA_FREQUENCY_MHZ,
    PAPER_PACKAGE_SIZE,
)
from repro.apps.jpeg import (
    jpeg_allocation,
    jpeg_decoder_psdf,
    jpeg_platform,
)
from repro.apps.workloads import (
    workload_catalog,
    named_workload,
)

__all__ = [
    "mp3_decoder_psdf",
    "paper_allocation",
    "paper_platform",
    "paper_segment_frequencies_mhz",
    "PAPER_CA_FREQUENCY_MHZ",
    "PAPER_PACKAGE_SIZE",
    "jpeg_allocation",
    "jpeg_decoder_psdf",
    "jpeg_platform",
    "workload_catalog",
    "named_workload",
]
