"""A named catalog of synthetic workloads for exploration and benchmarking.

The paper's future work asks for *"more application models to be tested on
the emulator platform"*; this module curates deterministic instances of the
generator families in :mod:`repro.psdf.generators` so examples, tests and
benchmarks can reference workloads by name.

Two catalogs live here:

* :func:`workload_catalog` — bare PSDF graphs (the original families plus
  the adversarial shapes), for callers that bring their own platform;
* :func:`scenario_catalog` — complete *scenarios*: an application (single-
  or multi-mode) **and** the platform it runs on, lint-clean by
  construction.  These back ``segbus emulate/estimate --workload``, the
  workload golden store and the ``multimode_switch`` bench scenario.

The adversarial scenarios are fixed seeds of
:func:`repro.testing.generators.generate_adversarial_model`;
``mp3_jpeg_multimode`` composes the two paper-grade case studies (MP3 and
JPEG decoding) as a two-phase multi-mode application on one shared
three-segment platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

from repro.errors import SegBusError
from repro.model.elements import SegBusPlatform
from repro.psdf.generators import (
    chain_psdf,
    fork_join_psdf,
    random_dag_psdf,
    stereo_pipeline_psdf,
)
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import ModePhase, ModeSchedule, MultiModeApplication, TransitionSpec

#: seed pinning the adversarial scenario instances (goldens depend on it)
_SCENARIO_SEED = 2026


def _adversarial_graph(shape: str) -> PSDFGraph:
    # lazy: testing.generators pulls in numpy + the lint engine
    from repro.testing.generators import generate_adversarial_model

    return generate_adversarial_model(_SCENARIO_SEED, shape).application


_CATALOG: Dict[str, Callable[[], PSDFGraph]] = {
    "chain4": lambda: chain_psdf(4, items_per_stage=576, ticks_per_package=250),
    "chain8": lambda: chain_psdf(8, items_per_stage=360, ticks_per_package=200),
    "fork_join4": lambda: fork_join_psdf(4, items_per_worker=360),
    "fork_join8": lambda: fork_join_psdf(8, items_per_worker=180),
    "stereo3": lambda: stereo_pipeline_psdf(3),
    "stereo5": lambda: stereo_pipeline_psdf(5, items=360),
    "random12": lambda: random_dag_psdf(12, seed=7),
    "random20": lambda: random_dag_psdf(20, seed=11),
    "bursty": lambda: _adversarial_graph("bursty"),
    "adversarial_hot_segment": lambda: _adversarial_graph(
        "adversarial_hot_segment"
    ),
    "long_tail": lambda: _adversarial_graph("long_tail"),
    "pipelined_streaming": lambda: _adversarial_graph("pipelined_streaming"),
}


def workload_catalog() -> Tuple[str, ...]:
    """Names of the curated workloads, sorted."""
    return tuple(sorted(_CATALOG))


def named_workload(name: str) -> PSDFGraph:
    """Instantiate a catalog workload by name (deterministic)."""
    try:
        factory = _CATALOG[name]
    except KeyError:
        raise SegBusError(
            f"unknown workload {name!r}; available: {', '.join(workload_catalog())}"
        ) from None
    return factory()


# ---------------------------------------------------------------------------
# scenarios: application + platform pairs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadModel:
    """One complete scenario: an application plus the platform it runs on."""

    name: str
    description: str
    application: Union[PSDFGraph, MultiModeApplication]
    platform: SegBusPlatform

    @property
    def is_multimode(self) -> bool:
        return isinstance(self.application, MultiModeApplication)


def _adversarial_scenario(shape: str, description: str) -> WorkloadModel:
    from repro.testing.generators import generate_adversarial_model

    model = generate_adversarial_model(_SCENARIO_SEED, shape)
    return WorkloadModel(
        name=shape,
        description=description,
        application=model.application,
        platform=model.platform,
    )


def mp3_jpeg_multimode() -> WorkloadModel:
    """The two-phase MP3↔JPEG multi-mode scenario on one shared platform.

    A portable player decoding an album while showing cover art: the
    platform alternates between the paper's MP3 decoder and the JPEG
    sibling study.  The process sets are disjoint, so the shared platform
    maps the union graph onto three segments (each segment hosting one
    MP3 allocation group and one JPEG allocation group, paper clock plan);
    the schedule runs two MP3 iterations, switches, runs two JPEG
    iterations, and charges a deliberately visible transition cost.
    """
    from repro.apps.jpeg import jpeg_decoder_psdf
    from repro.apps.mp3 import (
        PAPER_CA_FREQUENCY_MHZ,
        PAPER_PACKAGE_SIZE,
        PAPER_SEGMENT_FREQUENCIES_MHZ,
        mp3_decoder_psdf,
        paper_allocation,
    )
    from repro.model.mapping import Allocation, map_application

    mp3 = mp3_decoder_psdf()
    jpeg = jpeg_decoder_psdf()
    schedule = ModeSchedule(
        phases=(ModePhase("mp3", iterations=2), ModePhase("jpeg", iterations=2)),
        transition=TransitionSpec(reconfig_ticks=64, flush_ticks_per_bu=8),
    )
    application = MultiModeApplication(
        name="mp3_jpeg_multimode",
        modes={"mp3": mp3, "jpeg": jpeg},
        schedule=schedule,
    )
    # JPEG placement differs from jpeg_allocation(3): with MP3's paper
    # allocation fixing the segment cut, color conversion joins the chroma
    # segment so the seg2->seg3 bridge carries no JPEG traffic (keeps the
    # SB221 bridge-dominance lint quiet on the shared platform)
    mp3_groups = paper_allocation(3).groups
    jpeg_groups = (
        ("ED", "DQy", "IDCTy"),
        ("DQcb", "IDCTcb", "UPcb", "DQcr", "IDCTcr", "UPcr", "CC", "OUT"),
        (),
    )
    merged = Allocation.from_groups(
        [
            tuple(mp3_group) + tuple(jpeg_group)
            for mp3_group, jpeg_group in zip(mp3_groups, jpeg_groups)
        ]
    )
    psm = map_application(
        application.union_graph(),
        merged,
        segment_frequencies_mhz=PAPER_SEGMENT_FREQUENCIES_MHZ,
        ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
        package_size=PAPER_PACKAGE_SIZE,
        name="SBPMp3Jpeg",
    )
    return WorkloadModel(
        name="mp3_jpeg_multimode",
        description=(
            "two-phase MP3->JPEG multi-mode application on a shared "
            "3-segment platform with a visible transition cost"
        ),
        application=application,
        platform=psm.platform,
    )


_SCENARIOS: Dict[str, Callable[[], WorkloadModel]] = {
    "bursty": lambda: _adversarial_scenario(
        "bursty",
        "chain alternating single-package trickles with multi-package bursts",
    ),
    "adversarial_hot_segment": lambda: _adversarial_scenario(
        "adversarial_hot_segment",
        "chain plus fan-in funnelling every flow through one border unit",
    ),
    "long_tail": lambda: _adversarial_scenario(
        "long_tail",
        "chain with one oversized mid-chain transfer dominating the tail",
    ),
    "pipelined_streaming": lambda: _adversarial_scenario(
        "pipelined_streaming",
        "source feeding parallel branch chains that rejoin at a sink",
    ),
    "mp3_jpeg_multimode": mp3_jpeg_multimode,
}


def scenario_catalog() -> Tuple[str, ...]:
    """Names of the complete (application + platform) scenarios, sorted."""
    return tuple(sorted(_SCENARIOS))


def workload_model(name: str) -> WorkloadModel:
    """Instantiate a complete scenario by name (deterministic)."""
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise SegBusError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(scenario_catalog())}"
        ) from None
    return factory()
