"""A named catalog of synthetic workloads for exploration and benchmarking.

The paper's future work asks for *"more application models to be tested on
the emulator platform"*; this module curates deterministic instances of the
generator families in :mod:`repro.psdf.generators` so examples, tests and
benchmarks can reference workloads by name.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import SegBusError
from repro.psdf.generators import (
    chain_psdf,
    fork_join_psdf,
    random_dag_psdf,
    stereo_pipeline_psdf,
)
from repro.psdf.graph import PSDFGraph

_CATALOG: Dict[str, Callable[[], PSDFGraph]] = {
    "chain4": lambda: chain_psdf(4, items_per_stage=576, ticks_per_package=250),
    "chain8": lambda: chain_psdf(8, items_per_stage=360, ticks_per_package=200),
    "fork_join4": lambda: fork_join_psdf(4, items_per_worker=360),
    "fork_join8": lambda: fork_join_psdf(8, items_per_worker=180),
    "stereo3": lambda: stereo_pipeline_psdf(3),
    "stereo5": lambda: stereo_pipeline_psdf(5, items=360),
    "random12": lambda: random_dag_psdf(12, seed=7),
    "random20": lambda: random_dag_psdf(20, seed=11),
}


def workload_catalog() -> Tuple[str, ...]:
    """Names of the curated workloads, sorted."""
    return tuple(sorted(_CATALOG))


def named_workload(name: str) -> PSDFGraph:
    """Instantiate a catalog workload by name (deterministic)."""
    try:
        factory = _CATALOG[name]
    except KeyError:
        raise SegBusError(
            f"unknown workload {name!r}; available: {', '.join(workload_catalog())}"
        ) from None
    return factory()
