"""A baseline-JPEG decoder as a second SegBus case study.

The paper's future work calls for more application models; JPEG decoding is
the natural sibling of the MP3 study — a real multimedia pipeline with a
fork into per-component chains (Y, Cb, Cr) and a join at color conversion:

    ED (entropy decode)
      -> DQy -> IDCTy ------------------\\
      -> DQcb -> IDCTcb -> UPcb ---------+--> CC (color convert) -> OUT
      -> DQcr -> IDCTcr -> UPcr ---------/

Traffic follows 4:2:0 chroma subsampling for one MCU row of a 640-pixel
image: the luma path carries four 8x8 blocks per MCU (2560 coefficients
per row ~= 71 packages of 36), each chroma path one block (640 items).
Per-package costs use the two-part model with IDCT as the heavy stage.
All parameters are documented assumptions — there is no published SegBus
JPEG dataset; the model exists to exercise the tooling on a second
realistic topology (wider fork, asymmetric branch loads).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import SegBusError
from repro.model.elements import SegBusPlatform
from repro.model.mapping import Allocation, map_application
from repro.psdf.flow import FlowCost
from repro.psdf.graph import PSDFGraph

#: data items per MCU row (one 640-wide 4:2:0 image row of MCUs)
LUMA_ITEMS = 2556  # 71 packages of 36
CHROMA_ITEMS = 648  # 18 packages of 36

_FLOWS: Tuple[Tuple[str, str, int, int, FlowCost], ...] = (
    # entropy decode fans out coefficient blocks per component
    ("ED", "DQy", LUMA_ITEMS, 1, FlowCost(c_fixed=30, c_item=5)),
    ("ED", "DQcb", CHROMA_ITEMS, 2, FlowCost(c_fixed=30, c_item=5)),
    ("ED", "DQcr", CHROMA_ITEMS, 3, FlowCost(c_fixed=30, c_item=5)),
    # dequantization
    ("DQy", "IDCTy", LUMA_ITEMS, 4, FlowCost(c_fixed=20, c_item=3)),
    ("DQcb", "IDCTcb", CHROMA_ITEMS, 4, FlowCost(c_fixed=20, c_item=3)),
    ("DQcr", "IDCTcr", CHROMA_ITEMS, 4, FlowCost(c_fixed=20, c_item=3)),
    # inverse DCT: the heavy stage
    ("IDCTy", "CC", LUMA_ITEMS, 5, FlowCost(c_fixed=60, c_item=9)),
    ("IDCTcb", "UPcb", CHROMA_ITEMS, 5, FlowCost(c_fixed=60, c_item=9)),
    ("IDCTcr", "UPcr", CHROMA_ITEMS, 5, FlowCost(c_fixed=60, c_item=9)),
    # chroma upsampling doubles the items towards color conversion
    ("UPcb", "CC", 2 * CHROMA_ITEMS, 6, FlowCost(c_fixed=16, c_item=2)),
    ("UPcr", "CC", 2 * CHROMA_ITEMS, 6, FlowCost(c_fixed=16, c_item=2)),
    # color conversion emits interleaved RGB rows
    ("CC", "OUT", LUMA_ITEMS, 7, FlowCost(c_fixed=24, c_item=4)),
)

#: functional role of each process
PROCESS_ROLES: Dict[str, str] = {
    "ED": "entropy (Huffman) decoding",
    "DQy": "dequantization, luma",
    "DQcb": "dequantization, Cb",
    "DQcr": "dequantization, Cr",
    "IDCTy": "inverse DCT, luma",
    "IDCTcb": "inverse DCT, Cb",
    "IDCTcr": "inverse DCT, Cr",
    "UPcb": "chroma upsampling, Cb",
    "UPcr": "chroma upsampling, Cr",
    "CC": "color conversion",
    "OUT": "pixel output",
}

_ALLOCATIONS: Dict[int, Tuple[Tuple[str, ...], ...]] = {
    1: (tuple(PROCESS_ROLES),),
    2: (
        ("ED", "DQy", "IDCTy", "CC", "OUT"),
        ("DQcb", "DQcr", "IDCTcb", "IDCTcr", "UPcb", "UPcr"),
    ),
    3: (
        ("ED", "DQy", "IDCTy"),
        ("DQcb", "IDCTcb", "UPcb", "DQcr", "IDCTcr", "UPcr"),
        ("CC", "OUT"),
    ),
}


def jpeg_decoder_psdf() -> PSDFGraph:
    """The PSDF model of the baseline JPEG decoder."""
    return PSDFGraph.from_edges(list(_FLOWS), name="JPEGDecoder")


def jpeg_allocation(segment_count: int) -> Allocation:
    """A documented allocation for 1, 2 or 3 segments (luma/chroma split)."""
    try:
        return Allocation.from_groups(_ALLOCATIONS[segment_count])
    except KeyError:
        raise SegBusError(
            f"JPEG allocations defined for 1, 2 or 3 segments, "
            f"not {segment_count}"
        ) from None


def jpeg_platform(
    segment_count: int = 3,
    package_size: int = 36,
    allocation: Allocation = None,
) -> SegBusPlatform:
    """A validated platform for the JPEG study (uniform 100 MHz segments,
    120 MHz CA — the chroma path tolerates slower clocks but uniform keeps
    the study focused on structure)."""
    if allocation is None:
        allocation = jpeg_allocation(segment_count)
    if allocation.segment_count != segment_count:
        raise SegBusError(
            f"allocation has {allocation.segment_count} segments, "
            f"expected {segment_count}"
        )
    psm = map_application(
        jpeg_decoder_psdf(),
        allocation,
        segment_frequencies_mhz=[100.0] * segment_count,
        ca_frequency_mhz=120.0,
        package_size=package_size,
        name="SBPJpeg",
    )
    return psm.platform
