"""Command-line interface: ``segbus`` — generate, emulate, explore.

Subcommands mirror the design flow of Fig. 3:

``segbus generate``
    write the PSDF and PSM XML schemes of a built-in configuration
    (the M2T step);
``segbus emulate``
    run the emulator on two scheme files and print the results listing;
``segbus accuracy``
    run emulator + reference simulator on a built-in configuration and
    print the estimated/actual/accuracy row;
``segbus explore``
    design-space exploration over segment counts and package sizes;
``segbus power``
    activity-based energy breakdown of a configuration;
``segbus codegen``
    generate the arbiter VHDL (schedule ROM, SAs, CA) for a configuration;
``segbus trace``
    emulate and write a VCD waveform of the platform activity;
``segbus campaign``
    run a package-size campaign, print the Markdown table, export CSV;
``segbus analytic``
    instant contention-free estimate vs emulation;
``segbus report``
    re-run the headline experiments and write the Markdown
    paper-vs-measured report;
``segbus faults``
    reliability sweep under transient fault injection — completion
    probability and execution-time overhead per fault rate;
``segbus lint``
    static analysis of PSDF/PSM/fault-plan schemes: rule engine with
    stable ids, PSDF verifier, hazard detector, scheme integrity (exit 0
    clean, 1 warnings, 2 errors — see docs/LINTING.md);
``segbus selftest``
    conformance harness: seeded random models through the differential
    oracle plus golden-trace drift detection (see docs/TESTING.md);
``segbus bench``
    headless perf scenarios with deterministic tick counters;
    ``--check`` gates against the committed ``BENCH_*.json`` baselines;
``segbus serve``
    simulation-as-a-service: an HTTP front end with a digest-keyed
    result cache, job batching and bounded-queue backpressure
    (see docs/SERVING.md);
``segbus loadgen``
    seeded deterministic load generator against a running server;
    ``--verify`` re-executes distinct payloads in-process and demands
    byte-identical responses.

Any :class:`~repro.errors.SegBusError` surfaces as a one-line message on
stderr and exit code 2; pass ``--debug`` (before the subcommand) to get the
full traceback instead.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.dse import explore_design_space
from repro.apps.mp3 import (
    PAPER_CA_FREQUENCY_MHZ,
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
    paper_segment_frequencies_mhz,
)
from repro.apps.workloads import named_workload, workload_catalog
from repro.emulator.emulator import SegBusEmulator
from repro.reference.accuracy import compare_estimate_to_reference
from repro.xmlio.codegen import CodeEngineeringSet, generate_models


def _application(name: str):
    if name == "mp3":
        return mp3_decoder_psdf()
    return named_workload(name)


def _cmd_generate(args: argparse.Namespace) -> int:
    application = _application(args.app)
    platform = paper_platform(
        segment_count=args.segments, package_size=args.package_size
    )
    if args.app != "mp3":
        print(
            "generate currently pairs the paper platform with the MP3 "
            "application only",
            file=sys.stderr,
        )
        return 2
    sets = [
        CodeEngineeringSet(
            name="psdf",
            model=application,
            output_file="psdf.xml",
            package_size=args.package_size,
        ),
        CodeEngineeringSet(name="psm", model=platform, output_file="psm.xml"),
    ]
    written = generate_models(sets, args.output_dir)
    for path in written:
        print(path)
    return 0


def _workload_or_files(args: argparse.Namespace, command: str):
    """Resolve the scheme-files-vs-``--workload`` choice of a subcommand.

    Returns the named :class:`~repro.apps.workloads.WorkloadModel`, or
    ``None`` for the scheme-file path; raises ``SystemExit``-style by
    printing and returning an error marker string on misuse.
    """
    if args.workload is not None:
        if args.psdf is not None or args.psm is not None:
            print(
                f"{command}: give either PSDF/PSM scheme files or "
                "--workload, not both",
                file=sys.stderr,
            )
            return 2
        from repro.apps.workloads import workload_model

        return workload_model(args.workload)
    if args.psdf is None or args.psm is None:
        print(
            f"{command}: need a PSDF and a PSM scheme file "
            "(or --workload NAME)",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_emulate(args: argparse.Namespace) -> int:
    resolved = _workload_or_files(args, "emulate")
    if resolved == 2:
        return 2
    if resolved is not None and resolved.is_multimode:
        from repro.emulator.multimode import run_multimode

        composed = run_multimode(
            resolved.application, resolved.platform, engine=args.engine
        )
        print(composed.format_listing())
        print(
            f"\nTotal execution time: {composed.execution_time_us:.2f} us "
            f"({composed.total_events} events)"
        )
        return 0
    if resolved is not None:
        emulator = SegBusEmulator.from_models(
            resolved.application, resolved.platform
        )
    else:
        emulator = SegBusEmulator.from_files(args.psdf, args.psm)
    report = emulator.run(strict=args.strict, engine=args.engine)
    print(report.format_listing())
    print(
        f"\nTotal execution time: {report.execution_time_us:.2f} us "
        f"({report.total_events} events)"
    )
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    application = mp3_decoder_psdf()
    platform = paper_platform(
        segment_count=args.segments, package_size=args.package_size
    )
    result = compare_estimate_to_reference(
        application,
        platform,
        label=f"{args.segments} segments, s={args.package_size}",
    )
    print(
        f"{result.label}: estimated {result.estimated_us:.2f} us, "
        f"actual {result.actual_us:.2f} us, accuracy {result.accuracy:.1%}"
    )
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    application = _application(args.app)
    if args.app == "mp3":
        freq = paper_segment_frequencies_mhz
        ca = PAPER_CA_FREQUENCY_MHZ
        extra = [
            (f"paper[{n}seg]", paper_allocation(n)) for n in args.segment_counts
            if n in (1, 2, 3)
        ]
    else:
        freq = lambda n: [100.0] * n  # noqa: E731 - tiny local adapter
        ca = 111.0
        extra = []
    points = explore_design_space(
        application,
        segment_counts=args.segment_counts,
        package_sizes=args.package_sizes,
        segment_frequencies_mhz=freq,
        ca_frequency_mhz=ca,
        extra_allocations=extra,
        estimator_prune=args.estimate_prune,
    )
    print(f"{'rank':>4} {'segments':>8} {'pkg':>4} {'time (us)':>10}  allocation")
    for rank, point in enumerate(points, start=1):
        estimated = (
            f" (est {point.estimated_us:.2f})"
            if point.estimated_us is not None
            else ""
        )
        print(
            f"{rank:>4} {point.segment_count:>8} {point.package_size:>4} "
            f"{point.execution_time_us:>10.2f}  "
            f"{point.allocation_source}: {point.allocation}{estimated}"
        )
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.analysis.power import estimate_power
    from repro.emulator.emulator import SegBusEmulator

    application = mp3_decoder_psdf()
    platform = paper_platform(
        segment_count=args.segments, package_size=args.package_size
    )
    emulator = SegBusEmulator.from_models(application, platform)
    emulator.run()
    report = estimate_power(emulator.simulation)
    print(report.format_table())
    print(
        f"\nRuntime: {report.runtime_us:.2f} us, "
        f"average power: {report.average_power:.2f} au/us"
    )
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.codegen import ArbiterCodeGenerator

    application = mp3_decoder_psdf()
    platform = paper_platform(
        segment_count=args.segments, package_size=args.package_size
    )
    generator = ArbiterCodeGenerator(application, platform)
    for path in generator.write(args.output_dir):
        print(path)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.emulator.kernel import PlatformSpec, Simulation
    from repro.emulator.trace import Tracer, export_vcd

    application = mp3_decoder_psdf()
    platform = paper_platform(
        segment_count=args.segments, package_size=args.package_size
    )
    tracer = Tracer()
    sim = Simulation(
        application, PlatformSpec.from_platform(platform), tracer=tracer
    ).run()
    export_vcd(sim, path=args.output)
    print(f"{args.output}: {len(tracer)} events, "
          f"run length {sim.global_end_fs / 1e9:.2f} us")
    if args.log:
        print(tracer.format_log(limit=args.log))
    return 0


def _cmd_estimate_multimode(args: argparse.Namespace, resolved) -> int:
    from repro.analysis.stochastic import stochastic_estimate_multimode
    from repro.emulator.kernel import PlatformSpec

    spec = PlatformSpec.from_platform(resolved.platform)
    estimate = stochastic_estimate_multimode(resolved.application, spec)
    analytic = estimate.analytic
    print(
        f"analytic lower bound:  {analytic.execution_time_us:.2f} us "
        f"(incl. {analytic.transition_total_fs / 1e9:.2f} us over "
        f"{analytic.switch_count} switch(es))\n"
        f"predicted contention:  {estimate.contention_us:.2f} us\n"
        f"expected TCT:          {estimate.execution_time_us:.2f} us"
    )
    print(f"\n{'#':>3} {'mode':<24} {'iter':>5} {'per-iter (us)':>14}")
    for index, (mode, count) in enumerate(analytic.phases):
        per_iter = estimate.per_mode[mode].execution_time_us
        print(f"{index:>3} {mode:<24} {count:>5} {per_iter:>14.2f}")
    if args.emulate:
        from repro.emulator.multimode import run_multimode

        composed = run_multimode(
            resolved.application, spec, engine=args.engine
        )
        error = (
            (estimate.execution_time_us - composed.execution_time_us)
            / composed.execution_time_us
            if composed.execution_time_us
            else 0.0
        )
        print(
            f"\nemulated TCT:          {composed.execution_time_us:.2f} us "
            f"(estimate off by {error:+.2%})"
        )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.analysis.stochastic import stochastic_estimate
    from repro.emulator.emulator import SegBusEmulator

    resolved = _workload_or_files(args, "estimate")
    if resolved == 2:
        return 2
    if resolved is not None and resolved.is_multimode:
        return _cmd_estimate_multimode(args, resolved)
    if resolved is not None:
        emulator = SegBusEmulator.from_models(
            resolved.application, resolved.platform
        )
    else:
        emulator = SegBusEmulator.from_files(args.psdf, args.psm)
    estimate = stochastic_estimate(
        emulator.application, emulator.spec, emulator.config
    )
    print(
        f"analytic lower bound:  {estimate.analytic_us:.2f} us\n"
        f"predicted contention:  {estimate.contention_us:.2f} us\n"
        f"expected TCT:          {estimate.execution_time_us:.2f} us "
        f"({estimate.contention_ratio:.3f}x the bound)\n"
        f"critical chain:        {' -> '.join(estimate.critical_chain)}"
    )
    print(f"\n{'resource':<10} {'grants':>7} {'rho':>6} {'Wq (us)':>9} {'Lq':>7}")
    rows = [estimate.segments[i] for i in sorted(estimate.segments)]
    rows.append(estimate.ca)
    rows.extend(estimate.border_units[p] for p in sorted(estimate.border_units))
    for model in rows:
        print(
            f"{model.name:<10} {model.arrivals:>7} {model.utilization:>6.3f} "
            f"{model.mean_wait_fs / 1e9:>9.4f} {model.mean_queue_depth:>7.4f}"
        )
    if args.emulate:
        report = emulator.run(engine=args.engine)
        error = (
            (estimate.execution_time_us - report.execution_time_us)
            / report.execution_time_us
            if report.execution_time_us
            else 0.0
        )
        print(
            f"\nemulated TCT:          {report.execution_time_us:.2f} us "
            f"(estimate off by {error:+.2%})"
        )
    return 0


def _cmd_analytic(args: argparse.Namespace) -> int:
    from repro.analysis.analytic import diagnose_contention
    from repro.emulator.kernel import PlatformSpec

    application = mp3_decoder_psdf()
    platform = paper_platform(
        segment_count=args.segments, package_size=args.package_size
    )
    diagnosis = diagnose_contention(
        application, PlatformSpec.from_platform(platform)
    )
    print(
        f"analytic (contention-free): {diagnosis.analytic_us:.2f} us\n"
        f"emulated:                   {diagnosis.emulated_us:.2f} us\n"
        f"contention cost:            {diagnosis.contention_us:.2f} us "
        f"({diagnosis.contention_share:.1%})"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.model.compare import diff_platforms
    from repro.xmlio.psm_parser import parse_psm_xml

    a = parse_psm_xml(Path(args.psm_a).read_text(encoding="utf-8")).to_platform()
    b = parse_psm_xml(Path(args.psm_b).read_text(encoding="utf-8")).to_platform()
    diff = diff_platforms(a, b)
    print(diff.format())
    return 0 if diff.identical else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import write_experiment_report

    target = write_experiment_report(args.output)
    print(f"wrote {target}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.analysis.reliability import reliability_sweep
    from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform
    from repro.faults import RetryPolicy
    from repro.xmlio.faults_xml import fault_plan_to_xml
    from repro.faults.model import FaultPlan

    if args.app == "mp3":
        application = mp3_decoder_psdf()
        platform = paper_platform(args.segments, package_size=args.package_size)
    elif args.app == "jpeg":
        application = jpeg_decoder_psdf()
        platform = jpeg_platform(args.segments, package_size=args.package_size)
    else:
        print(f"faults supports mp3 or jpeg, not {args.app!r}", file=sys.stderr)
        return 2
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        backoff=args.backoff,
        timeout_ticks=args.timeout_ticks,
        on_exhaustion=args.on_exhaustion,
    )
    curve = reliability_sweep(
        application,
        platform,
        rates=args.rates,
        kind=args.kind,
        seeds=tuple(range(1, args.seeds + 1)),
        retry_policy=policy,
        engine=args.engine,
        **_executor_kwargs(args),
    )
    print(
        f"{curve.application}: {curve.kind} sweep, baseline "
        f"{curve.baseline_execution_time_us:.2f} us"
    )
    print(curve.to_markdown())
    if args.csv:
        curve.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    if args.plan_xml:
        rate_kw = {
            "package_corruption": "corruption_rate",
            "grant_loss": "grant_loss_rate",
            "fu_stall": "stall_rate",
            "bu_drop": "bu_drop_rate",
        }[args.kind]
        plan = FaultPlan.transient(seed=1, **{rate_kw: max(args.rates)})
        Path(args.plan_xml).write_text(
            fault_plan_to_xml(plan), encoding="utf-8"
        )
        print(f"wrote {args.plan_xml}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import default_registry, lint_paths, render

    registry = default_registry()
    if args.list_rules:
        for rule in registry:
            print(
                f"{rule.id}  {rule.severity.value:<7}  {rule.category:<9}  "
                f"{rule.name}: {rule.description}"
            )
        return 0
    if not args.paths:
        print("segbus lint: no input files (or use --list-rules)", file=sys.stderr)
        return 2
    report = lint_paths(
        [str(p) for p in args.paths], registry=registry, disable=args.disable
    )
    print(render(report, args.format, registry=registry))
    return report.exit_code


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import Campaign
    from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform

    campaign = Campaign(args.name)
    if args.app == "mp3":
        application = mp3_decoder_psdf()
        factory = lambda s: paper_platform(args.segments, package_size=s)  # noqa: E731
    elif args.app == "jpeg":
        application = jpeg_decoder_psdf()
        factory = lambda s: jpeg_platform(args.segments, package_size=s)  # noqa: E731
    else:
        print(f"campaign supports mp3 or jpeg, not {args.app!r}", file=sys.stderr)
        return 2
    campaign.add_grid(application, factory, package_sizes=args.package_sizes)
    print(campaign.to_markdown())
    if args.csv:
        campaign.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    best = campaign.best()
    print(f"\nbest: {best.name} at {best.execution_time_us:.2f} us")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.testing.selftest import (
        DEFAULT_COUNT,
        QUICK_COUNT,
        run_selftest,
    )

    count = args.count
    if count is None:
        count = QUICK_COUNT if args.quick else DEFAULT_COUNT
    report = run_selftest(
        count=count,
        base_seed=args.seed,
        include_golden=not args.skip_golden,
        models_dir=args.models_dir,
        store_path=args.golden_store,
        update_golden=args.update_golden,
        progress=print,
        engine=args.engine,
        **_executor_kwargs(args),
    )
    print(report.format())
    return report.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.testing.bench import (
        SCENARIOS,
        check_bench,
        format_results,
        run_bench,
        write_baselines,
    )

    if args.list:
        for item in SCENARIOS:
            print(f"{item.name:<24}  {item.description}")
        return 0
    executor_kwargs = _executor_kwargs(args)
    if executor_kwargs["workers"] is None:
        # bench defaults to one worker: concurrent scenarios contend for
        # CPU and wall-clock gates would trip on scheduling noise
        executor_kwargs["workers"] = 1
    results = run_bench(
        names=args.scenarios or None,
        repeats=args.repeats,
        inject_slowdown=args.inject_slowdown,
        engine=args.engine,
        **executor_kwargs,
    )
    print(format_results(results))
    if args.update:
        paths = write_baselines(results, args.baseline_dir)
        print(f"\nwrote {len(paths)} baseline(s) under {args.baseline_dir}")
        return 0
    if args.check:
        check = check_bench(
            results,
            baseline_dir=args.baseline_dir,
            wall_ratio_max=args.wall_ratio_max,
            check_wall=not args.no_wall,
        )
        print()
        print(check.format())
        return 0 if check.ok else 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import create_server
    from repro.serve.service import SegbusService, ServiceConfig

    config = ServiceConfig(
        engine=args.engine,
        workers=args.serve_workers,
        timeout_s=args.timeout,
        retries=args.retries if args.retries is not None else 3,
        queue_depth=args.queue_depth,
        cache_entries=args.cache_entries,
        cache_bytes=int(args.cache_mb * (1 << 20)),
        batch_window_s=args.batch_window_ms / 1e3,
        batch_max=args.batch_max,
    )
    service = SegbusService(config)
    server = create_server(service, host=args.host, port=args.port)

    # a `segbus serve … &` launched from a non-interactive shell inherits
    # SIGINT as SIG_IGN (POSIX job control), and Python keeps an ignored
    # disposition — reinstall both stop signals so `kill [-INT]` always
    # shuts the server down instead of hanging a CI `wait`
    def _request_stop(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    for stop_signal in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(stop_signal, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    # tests parse this line for the ephemeral port — keep it first & flushed
    print(f"serving on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import run_from_args

    return run_from_args(args)


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """Flags for the supervised campaign executor (see docs/ROBUSTNESS.md)."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the batch (default: CPU count; "
        "1 forces the in-process serial path)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job timeout; a stalled worker is killed and the job "
        "retried (needs workers >= 2)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries per job after the first attempt, with seeded "
        "exponential backoff (default 2)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal completed jobs under this directory "
        "(e.g. .segbus/checkpoints) so --resume can replay them",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint journal and run only the missing jobs "
        "(implies --checkpoint-dir, default .segbus/checkpoints)",
    )


def _executor_kwargs(args: argparse.Namespace) -> dict:
    """Translate the executor flags into run_* keyword arguments."""
    from repro.analysis.executor import ExecutorPolicy

    policy = None
    if args.timeout is not None or args.retries is not None:
        defaults = ExecutorPolicy()
        policy = ExecutorPolicy(
            max_attempts=(
                args.retries + 1
                if args.retries is not None
                else defaults.max_attempts
            ),
            timeout_s=args.timeout,
        )
    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        checkpoint_dir = str(Path(".segbus") / "checkpoints")
    return {
        "workers": args.workers,
        "executor_policy": policy,
        "checkpoint_dir": checkpoint_dir,
        "resume": args.resume,
    }


def _add_workload_flag(parser: argparse.ArgumentParser) -> None:
    from repro.apps.workloads import scenario_catalog

    parser.add_argument(
        "--workload",
        default=None,
        choices=sorted(scenario_catalog()),
        metavar="NAME",
        help="run a named workload scenario instead of scheme files: "
        f"{', '.join(sorted(scenario_catalog()))}",
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    from repro.emulator.fastkernel import ENGINE_NAMES

    parser.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_NAMES),
        help="simulation kernel: 'stepped' (cycle-stepped reference), "
        "'fast' (event-driven) or 'batch' (vectorized lockstep batches), "
        "all tick-for-tick equivalent; default honours SEGBUS_ENGINE "
        "(see docs/PERFORMANCE.md). For bench, omitting it times every "
        "engine and records the speedups.",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="segbus",
        description="SegBus performance estimation (ICPP 2010 reproduction)",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise SegBus errors with a full traceback (default: "
        "one-line message, exit code 2)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write PSDF/PSM XML schemes")
    gen.add_argument("--app", default="mp3", help="application name (default mp3)")
    gen.add_argument("--segments", type=int, default=3)
    gen.add_argument("--package-size", type=int, default=36)
    gen.add_argument("--output-dir", default="generated")
    gen.set_defaults(func=_cmd_generate)

    emu = sub.add_parser(
        "emulate", help="emulate from XML schemes or a named workload scenario"
    )
    emu.add_argument("psdf", type=Path, nargs="?", default=None)
    emu.add_argument("psm", type=Path, nargs="?", default=None)
    _add_workload_flag(emu)
    emu.add_argument(
        "--strict",
        action="store_true",
        help="run the static analyzer first; refuse inputs with lint errors",
    )
    _add_engine_flag(emu)
    emu.set_defaults(func=_cmd_emulate)

    lnt = sub.add_parser(
        "lint", help="static analysis of XML scheme files (see docs/LINTING.md)"
    )
    lnt.add_argument(
        "paths", type=Path, nargs="*", help="PSDF/PSM/fault-plan scheme files"
    )
    lnt.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"]
    )
    lnt.add_argument(
        "--disable", nargs="+", default=[], metavar="RULE_ID",
        help="rule ids to skip (e.g. --disable SB209 SB212)",
    )
    lnt.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lnt.set_defaults(func=_cmd_lint)

    acc = sub.add_parser("accuracy", help="estimated vs reference execution")
    acc.add_argument("--segments", type=int, default=3)
    acc.add_argument("--package-size", type=int, default=36)
    acc.set_defaults(func=_cmd_accuracy)

    exp = sub.add_parser("explore", help="design-space exploration")
    exp.add_argument(
        "--app",
        default="mp3",
        help=f"mp3 or one of: {', '.join(workload_catalog())}",
    )
    exp.add_argument(
        "--segment-counts", type=int, nargs="+", default=[1, 2, 3]
    )
    exp.add_argument("--package-sizes", type=int, nargs="+", default=[18, 36])
    exp.add_argument(
        "--estimate-prune",
        type=int,
        default=None,
        metavar="N",
        help="rank candidates with the stochastic estimator and emulate "
        "only the best N (the estimator prunes, the engines confirm)",
    )
    exp.set_defaults(func=_cmd_explore)

    pwr = sub.add_parser("power", help="energy breakdown of a configuration")
    pwr.add_argument("--segments", type=int, default=3)
    pwr.add_argument("--package-size", type=int, default=36)
    pwr.set_defaults(func=_cmd_power)

    gen = sub.add_parser("codegen", help="generate arbiter VHDL")
    gen.add_argument("--segments", type=int, default=3)
    gen.add_argument("--package-size", type=int, default=36)
    gen.add_argument("--output-dir", default="rtl")
    gen.set_defaults(func=_cmd_codegen)

    trc = sub.add_parser("trace", help="emulate and write a VCD waveform")
    trc.add_argument("--segments", type=int, default=3)
    trc.add_argument("--package-size", type=int, default=36)
    trc.add_argument("--output", default="segbus.vcd")
    trc.add_argument(
        "--log", type=int, default=0, metavar="N",
        help="also print the first N trace events",
    )
    trc.set_defaults(func=_cmd_trace)

    camp = sub.add_parser(
        "campaign", help="run a package-size campaign and export the table"
    )
    camp.add_argument("--name", default="campaign")
    camp.add_argument("--app", default="mp3", help="mp3 or jpeg")
    camp.add_argument("--segments", type=int, default=3)
    camp.add_argument(
        "--package-sizes", type=int, nargs="+", default=[18, 36, 72]
    )
    camp.add_argument("--csv", default="", help="also write a CSV file here")
    camp.set_defaults(func=_cmd_campaign)

    ana = sub.add_parser(
        "analytic", help="instant contention-free estimate vs emulation"
    )
    ana.add_argument("--segments", type=int, default=3)
    ana.add_argument("--package-size", type=int, default=36)
    ana.set_defaults(func=_cmd_analytic)

    est = sub.add_parser(
        "estimate",
        help="stochastic contention estimate from XML schemes (no simulation)",
    )
    est.add_argument("psdf", type=Path, nargs="?", default=None)
    est.add_argument("psm", type=Path, nargs="?", default=None)
    _add_workload_flag(est)
    est.add_argument(
        "--emulate",
        action="store_true",
        help="also emulate and report the estimator's signed error",
    )
    _add_engine_flag(est)
    est.set_defaults(func=_cmd_estimate)

    rep = sub.add_parser(
        "report", help="re-run the headline experiments, write a Markdown report"
    )
    rep.add_argument("--output", default="reproduction_report.md")
    rep.set_defaults(func=_cmd_report)

    cmp_ = sub.add_parser(
        "compare", help="diff two PSM scheme files (exit 1 when they differ)"
    )
    cmp_.add_argument("psm_a", type=Path)
    cmp_.add_argument("psm_b", type=Path)
    cmp_.set_defaults(func=_cmd_compare)

    flt = sub.add_parser(
        "faults",
        help="reliability sweep under transient fault injection",
    )
    flt.add_argument("--app", default="mp3", help="mp3 or jpeg")
    flt.add_argument("--segments", type=int, default=3)
    flt.add_argument("--package-size", type=int, default=36)
    flt.add_argument(
        "--kind",
        default="package_corruption",
        choices=["package_corruption", "grant_loss", "fu_stall", "bu_drop"],
    )
    flt.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.0, 0.001, 0.01, 0.05],
        help="fault rates to sweep",
    )
    flt.add_argument(
        "--seeds", type=int, default=3, help="seed population per rate"
    )
    flt.add_argument("--max-attempts", type=int, default=4)
    flt.add_argument(
        "--backoff", default="exponential", choices=["none", "linear", "exponential"]
    )
    flt.add_argument(
        "--timeout-ticks", type=int, default=None,
        help="per-hop CA-queue timeout (CA clock ticks)",
    )
    flt.add_argument(
        "--on-exhaustion", default="degrade", choices=["fail", "degrade"]
    )
    flt.add_argument("--csv", default="", help="also write a CSV file here")
    flt.add_argument(
        "--plan-xml", default="",
        help="also write the worst-case fault plan as an XML scheme",
    )
    _add_engine_flag(flt)
    _add_executor_flags(flt)
    flt.set_defaults(func=_cmd_faults)

    slf = sub.add_parser(
        "selftest",
        help="conformance harness: random-model oracle + golden traces",
    )
    slf.add_argument(
        "--count",
        type=int,
        default=None,
        help="random models to run through the oracle (default 200)",
    )
    slf.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 25 models unless --count is given",
    )
    slf.add_argument(
        "--seed", type=int, default=1, help="first seed (default 1)"
    )
    slf.add_argument(
        "--skip-golden",
        action="store_true",
        help="skip the golden-trace comparison stage",
    )
    slf.add_argument(
        "--update-golden",
        action="store_true",
        help="re-pin the golden-trace store instead of checking it",
    )
    slf.add_argument(
        "--models-dir",
        default="examples/models",
        help="directory of (psdf, psm) pairs (default examples/models)",
    )
    slf.add_argument(
        "--golden-store",
        default="tests/integration/golden/trace_digests.json",
        help="golden digest store path",
    )
    _add_engine_flag(slf)
    _add_executor_flags(slf)
    slf.set_defaults(func=_cmd_selftest)

    bch = sub.add_parser(
        "bench",
        help="headless perf scenarios; --check gates against baselines",
    )
    bch.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names (default: all; see --list)",
    )
    bch.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    bch.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="wall-clock repetitions per scenario, best kept (default 3)",
    )
    bch.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baselines (exit 1 on drift)",
    )
    bch.add_argument(
        "--update",
        action="store_true",
        help="(re)write the baseline files from this run",
    )
    bch.add_argument(
        "--no-wall",
        action="store_true",
        help="with --check: compare ticks only (heterogeneous CI runners)",
    )
    bch.add_argument(
        "--wall-ratio-max",
        type=float,
        default=1.5,
        help="wall-clock regression gate as a multiple of the baseline "
        "(default 1.5)",
    )
    bch.add_argument(
        "--inject-slowdown",
        type=float,
        default=1.0,
        help="test hook: multiply measured wall time by this factor",
    )
    bch.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="baseline directory (default benchmarks/baselines)",
    )
    _add_engine_flag(bch)
    _add_executor_flags(bch)
    bch.set_defaults(func=_cmd_bench)

    srv = sub.add_parser(
        "serve",
        help="HTTP simulation service with result cache and batching",
    )
    srv.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    srv.add_argument(
        "--port",
        type=int,
        default=8337,
        help="bind port; 0 picks an ephemeral one (default 8337)",
    )
    srv.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        help="executor worker processes behind the service (default 1: "
        "in-process serial; >= 2 enables per-job timeouts)",
    )
    srv.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job timeout (needs --serve-workers >= 2)",
    )
    srv.add_argument(
        "--retries",
        type=int,
        default=None,
        help="attempts per job including the first (default 3)",
    )
    srv.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admission queue bound; excess jobs shed with 429 "
        "(default 64)",
    )
    srv.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="result cache entry cap (default 1024)",
    )
    srv.add_argument(
        "--cache-mb",
        type=float,
        default=64.0,
        help="result cache byte cap in MiB (default 64)",
    )
    srv.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="micro-batch gathering window in milliseconds (default 5)",
    )
    srv.add_argument(
        "--batch-max",
        type=int,
        default=32,
        help="max jobs per dispatcher micro-batch (default 32)",
    )
    _add_engine_flag(srv)
    srv.set_defaults(func=_cmd_serve)

    ldg = sub.add_parser(
        "loadgen",
        help="seeded load generator against a running segbus serve",
    )
    from repro.serve.loadgen import add_arguments as _loadgen_arguments

    _loadgen_arguments(ldg)
    ldg.set_defaults(func=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import SegBusError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (SegBusError, OSError) as exc:
        if args.debug:
            raise
        print(f"segbus: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
