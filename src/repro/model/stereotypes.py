"""The SegBus UML profile: stereotypes and tag definitions.

The DSL of [11] stores platform concepts as stereotypes in a UML profile;
section 2.2 of the paper extends it with the PSDF stereotypes
``InitialNode``/``ProcessNode``/``FinalNode``, each a generalization of the
UML2 ``Kernel::Class`` metaclass.  We reproduce the profile as a small
registry: each :class:`Stereotype` records its name, the metaclass it
extends and its tag definitions (name -> expected Python type).  Model
elements point at their stereotype, and tag values are checked when set —
the moral equivalent of MagicDraw's profile-driven validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ModelError

#: The UML metaclass all SegBus stereotypes extend (paper section 2.2).
KERNEL_CLASS = "UML Standard Profile::UML2MetaModel::Classes::Kernel::Class"


@dataclass(frozen=True)
class Stereotype:
    """One stereotype of the SegBus profile.

    ``tags`` maps tag names to the Python type expected for their values.
    """

    name: str
    metaclass: str = KERNEL_CLASS
    tags: Mapping[str, type] = field(default_factory=dict)

    def check_tag(self, tag: str, value: Any) -> None:
        """Validate a tag assignment against the profile definition."""
        if tag not in self.tags:
            raise ModelError(
                f"stereotype {self.name!r} has no tag {tag!r}; "
                f"known tags: {sorted(self.tags)}"
            )
        expected = self.tags[tag]
        if not isinstance(value, expected):
            raise ModelError(
                f"tag {tag!r} of stereotype {self.name!r} expects "
                f"{expected.__name__}, got {type(value).__name__}"
            )


def _st(name: str, **tags: type) -> Stereotype:
    return Stereotype(name=name, tags=dict(tags))


#: The profile registry: platform stereotypes from [11] plus the three PSDF
#: stereotypes introduced by this paper.
STEREOTYPES: Dict[str, Stereotype] = {
    s.name: s
    for s in (
        _st("SegBusPlatform", packageSize=int),
        _st("Segment", frequencyMHz=float, index=int),
        _st("CentralArbiter", frequencyMHz=float),
        _st("SegmentArbiter", policy=str),
        _st("BorderUnit", depth=int),
        _st("FunctionalUnit", library=str),
        _st("Master",),
        _st("Slave",),
        # PSDF stereotypes added by the paper (section 2.2)
        _st("InitialNode",),
        _st("ProcessNode",),
        _st("FinalNode",),
    )
}


class StereotypedElement:
    """Base class for model elements carrying a profile stereotype.

    Subclasses set ``STEREOTYPE`` to a name in :data:`STEREOTYPES`; instances
    hold tag values validated against the profile.
    """

    STEREOTYPE: str = ""

    def __init__(self, name: str) -> None:
        if not name:
            raise ModelError(f"{type(self).__name__} needs a non-empty name")
        if self.STEREOTYPE not in STEREOTYPES:
            raise ModelError(
                f"{type(self).__name__} declares unknown stereotype "
                f"{self.STEREOTYPE!r}"
            )
        self.name = name
        self._tags: Dict[str, Any] = {}

    @property
    def stereotype(self) -> Stereotype:
        return STEREOTYPES[self.STEREOTYPE]

    def set_tag(self, tag: str, value: Any) -> None:
        """Assign a stereotype tag value (type-checked against the profile)."""
        self.stereotype.check_tag(tag, value)
        self._tags[tag] = value

    def get_tag(self, tag: str, default: Any = None) -> Any:
        return self._tags.get(tag, default)

    @property
    def tag_items(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(sorted(self._tags.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
