"""Structured diffing of platform configurations.

The design loop iterates configurations; reviewing *what actually changed*
between two candidates (before trusting a 2 % improvement) needs a diff at
the model level, not on XML text.  :func:`diff_platforms` compares two
:class:`~repro.model.elements.SegBusPlatform` instances and returns typed
change records covering: segment count, clocks, package size, BU depths,
arbitration policies and process placement (moved / added / removed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.model.elements import SegBusPlatform


@dataclass(frozen=True)
class Change:
    """One difference between two platforms."""

    kind: str      # e.g. "package_size", "segment_clock", "placement"
    subject: str   # the element concerned
    before: Optional[str]
    after: Optional[str]

    def __str__(self) -> str:
        if self.before is None:
            return f"{self.kind} {self.subject}: added ({self.after})"
        if self.after is None:
            return f"{self.kind} {self.subject}: removed (was {self.before})"
        return f"{self.kind} {self.subject}: {self.before} -> {self.after}"


@dataclass(frozen=True)
class PlatformDiff:
    """All changes between two platforms, grouped for reporting."""

    changes: Tuple[Change, ...]

    @property
    def identical(self) -> bool:
        return not self.changes

    def of_kind(self, kind: str) -> Tuple[Change, ...]:
        return tuple(c for c in self.changes if c.kind == kind)

    def moved_processes(self) -> Tuple[str, ...]:
        return tuple(c.subject for c in self.of_kind("placement")
                     if c.before is not None and c.after is not None)

    def format(self) -> str:
        if self.identical:
            return "(identical configurations)"
        return "\n".join(str(c) for c in self.changes)


def diff_platforms(a: SegBusPlatform, b: SegBusPlatform) -> PlatformDiff:
    """Compare two platforms; returns a :class:`PlatformDiff`.

    Ordering: global parameters, segments, BUs, then placement — stable and
    deterministic so diffs can be tested and logged.
    """
    changes: List[Change] = []
    if a.package_size != b.package_size:
        changes.append(
            Change("package_size", "platform",
                   str(a.package_size), str(b.package_size))
        )
    if a.segment_count != b.segment_count:
        changes.append(
            Change("segment_count", "platform",
                   str(a.segment_count), str(b.segment_count))
        )
    ca_a = a.central_arbiter.frequency.mhz if a.central_arbiter else None
    ca_b = b.central_arbiter.frequency.mhz if b.central_arbiter else None
    if ca_a != ca_b:
        changes.append(
            Change("ca_clock", "CA",
                   None if ca_a is None else f"{ca_a:g}MHz",
                   None if ca_b is None else f"{ca_b:g}MHz")
        )

    indices_a = {seg.index for seg in a.segments}
    indices_b = {seg.index for seg in b.segments}
    for index in sorted(indices_a | indices_b):
        seg_a = a.segment(index) if index in indices_a else None
        seg_b = b.segment(index) if index in indices_b else None
        if seg_a is None:
            changes.append(
                Change("segment", f"Segment{index}", None,
                       f"{seg_b.frequency.mhz:g}MHz")
            )
            continue
        if seg_b is None:
            changes.append(
                Change("segment", f"Segment{index}",
                       f"{seg_a.frequency.mhz:g}MHz", None)
            )
            continue
        if seg_a.frequency.mhz != seg_b.frequency.mhz:
            changes.append(
                Change("segment_clock", f"Segment{index}",
                       f"{seg_a.frequency.mhz:g}MHz",
                       f"{seg_b.frequency.mhz:g}MHz")
            )
        if seg_a.arbiter.policy != seg_b.arbiter.policy:
            changes.append(
                Change("sa_policy", f"SA{index}",
                       seg_a.arbiter.policy, seg_b.arbiter.policy)
            )

    depths_a = {(bu.left, bu.right): bu.depth for bu in a.border_units}
    depths_b = {(bu.left, bu.right): bu.depth for bu in b.border_units}
    for pair in sorted(set(depths_a) | set(depths_b)):
        name = f"BU{pair[0]}{pair[1]}"
        if pair not in depths_a:
            changes.append(Change("border_unit", name, None,
                                  f"depth {depths_b[pair]}"))
        elif pair not in depths_b:
            changes.append(Change("border_unit", name,
                                  f"depth {depths_a[pair]}", None))
        elif depths_a[pair] != depths_b[pair]:
            changes.append(
                Change("bu_depth", name,
                       str(depths_a[pair]), str(depths_b[pair]))
            )

    placement_a = a.process_placement()
    placement_b = b.process_placement()
    for process in sorted(set(placement_a) | set(placement_b)):
        seg_a = placement_a.get(process)
        seg_b = placement_b.get(process)
        if seg_a != seg_b:
            changes.append(
                Change("placement", process,
                       None if seg_a is None else f"segment {seg_a}",
                       None if seg_b is None else f"segment {seg_b}")
            )
    return PlatformDiff(changes=tuple(changes))
