"""Application-to-platform mapping: producing the Platform Specific Model.

A PSM is a platform whose segments host FUs for every application process,
with masters/slaves instantiated according to the process's flows: *"the
constructor method of the FU class analyzes the passed information and
instantiates the required number of objects of masters and slaves"*
(section 3.5).  :func:`map_application` performs exactly that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.errors import MappingError
from repro.model.builder import PlatformBuilder, FrequencyLike
from repro.model.elements import SegBusPlatform
from repro.model.validation import validate_platform
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class Allocation:
    """An allocation of processes to segments (paper Fig. 9 rows).

    ``groups[i]`` lists the processes on segment ``i + 1``.  The string form
    uses the paper's ``||`` segment-border notation.
    """

    groups: Tuple[Tuple[str, ...], ...]

    @classmethod
    def from_groups(cls, groups: Sequence[Iterable[str]]) -> "Allocation":
        return cls(tuple(tuple(g) for g in groups))

    @classmethod
    def from_placement(cls, placement: Mapping[str, int]) -> "Allocation":
        if not placement:
            raise MappingError("empty placement")
        count = max(placement.values())
        if min(placement.values()) < 1:
            raise MappingError("segment indices start at 1")
        groups: Tuple = tuple(
            tuple(sorted((p for p, s in placement.items() if s == idx),
                         key=_natural_key))
            for idx in range(1, count + 1)
        )
        return cls(groups)

    @property
    def segment_count(self) -> int:
        return len(self.groups)

    def placement(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for offset, group in enumerate(self.groups):
            for process in group:
                if process in out:
                    raise MappingError(f"process {process!r} allocated twice")
                out[process] = offset + 1
        return out

    def moved(self, process: str, to_segment: int) -> "Allocation":
        """A copy with ``process`` moved to ``to_segment`` (1-based)."""
        if not 1 <= to_segment <= self.segment_count:
            raise MappingError(
                f"target segment {to_segment} outside 1..{self.segment_count}"
            )
        placement = self.placement()
        if process not in placement:
            raise MappingError(f"process {process!r} not in allocation")
        placement[process] = to_segment
        groups = tuple(
            tuple(p for p in group if p != process) for group in self.groups
        )
        groups = tuple(
            group + ((process,) if idx + 1 == to_segment else ())
            for idx, group in enumerate(groups)
        )
        return Allocation(groups)

    def __str__(self) -> str:
        return " || ".join(" ".join(group) for group in self.groups)


def _natural_key(name: str):
    digits = "".join(ch for ch in name if ch.isdigit())
    return (name.rstrip("0123456789"), int(digits) if digits else -1)


@dataclass
class PlatformSpecificModel:
    """A validated (platform, application, allocation) triple ready to emulate."""

    platform: SegBusPlatform
    application: PSDFGraph
    allocation: Allocation

    @property
    def package_size(self) -> int:
        return self.platform.package_size

    def placement(self) -> Dict[str, int]:
        return self.allocation.placement()


def map_application(
    application: PSDFGraph,
    allocation: Allocation,
    segment_frequencies_mhz: Sequence[FrequencyLike],
    ca_frequency_mhz: FrequencyLike,
    package_size: int = 36,
    name: str = "SBP",
    validate: bool = True,
) -> PlatformSpecificModel:
    """Build the PSM for ``application`` under ``allocation``.

    ``segment_frequencies_mhz[i]`` clocks segment ``i + 1``.  Masters and
    slaves are instantiated per flow direction: a process with outgoing
    flows gets a Master, one with incoming flows gets a Slave (both when it
    has both).  With ``validate=True`` (default) the PSM is checked against
    the full constraint registry and the application cross-checks before it
    is returned.
    """
    if len(segment_frequencies_mhz) != allocation.segment_count:
        raise MappingError(
            f"{allocation.segment_count} segments but "
            f"{len(segment_frequencies_mhz)} frequencies given"
        )
    builder = PlatformBuilder(name=name, package_size=package_size)
    for freq in segment_frequencies_mhz:
        builder.segment(frequency_mhz=freq)
    builder.central_arbiter(frequency_mhz=ca_frequency_mhz)
    builder.auto_border_units()
    placement = allocation.placement()
    unknown = sorted(set(placement) - set(application.process_names))
    if unknown:
        raise MappingError(
            "allocation names processes absent from the application: "
            + ", ".join(unknown)
        )
    builder.place_all(placement)
    platform = builder.build()
    for process in application.process_names:
        if process not in placement:
            raise MappingError(f"application process {process!r} is not allocated")
        fu = platform.fu_of_process(process)
        if application.outgoing(process):
            fu.add_master()
        if application.incoming(process):
            fu.add_slave()
        if not fu.masters and not fu.slaves:
            # isolated process: give it a slave so FU-EP-1 holds; the graph
            # validator rejects disconnected processes in multi-flow graphs.
            fu.add_slave()
    psm = PlatformSpecificModel(
        platform=platform, application=application, allocation=allocation
    )
    if validate:
        report = validate_platform(platform, application)
        report.raise_if_invalid()
    return psm
