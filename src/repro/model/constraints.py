"""OCL-style structural constraints of the SegBus DSL.

The DSL *"comprises a number of structural constraints related to the
platform, written in OCL, to implement the correct component approach to
platform design"* (section 2.2).  Each :class:`Constraint` carries an
identifier, the informal rule text and a checker returning diagnostic
strings (empty = satisfied).  :data:`STRUCTURAL_CONSTRAINTS` is the registry
evaluated by :func:`repro.model.validation.validate_platform`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.model.elements import SegBusPlatform

Checker = Callable[[SegBusPlatform], List[str]]


@dataclass(frozen=True)
class Constraint:
    """One structural rule: an id, the rule text, and its checker."""

    identifier: str
    rule: str
    check: Checker

    def evaluate(self, platform: SegBusPlatform) -> List[str]:
        """Diagnostics for ``platform`` (empty list when satisfied)."""
        return [f"[{self.identifier}] {msg}" for msg in self.check(platform)]


def _has_one_ca(p: SegBusPlatform) -> List[str]:
    if p.central_arbiter is None:
        return ["platform has no Central Arbiter (exactly one CA required)"]
    return []


def _has_segments(p: SegBusPlatform) -> List[str]:
    if not p.segments:
        return ["platform has no segments (at least one required)"]
    return []


def _contiguous_indices(p: SegBusPlatform) -> List[str]:
    indices = [s.index for s in p.segments]
    expected = list(range(1, len(indices) + 1))
    if indices != expected:
        return [f"segment indices {indices} are not contiguous from 1"]
    return []


def _segment_has_fu(p: SegBusPlatform) -> List[str]:
    return [
        f"segment {seg.index} has no Functional Unit (at least one required)"
        for seg in p.segments
        if not seg.fus
    ]


def _segment_has_sa(p: SegBusPlatform) -> List[str]:
    # Segment construction always attaches an SA; guard against tampering.
    return [
        f"segment {seg.index} has no Segment Arbiter"
        for seg in p.segments
        if seg.arbiter is None
    ]


def _bus_between_neighbours(p: SegBusPlatform) -> List[str]:
    problems: List[str] = []
    needed = {(i, i + 1) for i in range(1, len(p.segments))}
    present = {(bu.left, bu.right) for bu in p.border_units}
    for pair in sorted(needed - present):
        problems.append(f"missing BU between adjacent segments {pair[0]} and {pair[1]}")
    for pair in sorted(present - needed):
        problems.append(
            f"BU between segments {pair[0]} and {pair[1]} does not match the "
            "linear topology"
        )
    return problems


def _fu_has_endpoint(p: SegBusPlatform) -> List[str]:
    return [
        f"FU {fu.name!r} (segment {seg.index}) has neither a Master nor a Slave"
        for seg in p.segments
        for fu in seg.fus
        if not fu.masters and not fu.slaves
    ]


def _unique_process_mapping(p: SegBusPlatform) -> List[str]:
    seen = {}
    problems: List[str] = []
    for seg in p.segments:
        for proc in seg.processes:
            if proc in seen and seen[proc] != seg.index:
                problems.append(
                    f"process {proc!r} mapped to both segment {seen[proc]} "
                    f"and segment {seg.index}"
                )
            seen.setdefault(proc, seg.index)
    return problems


def _positive_package_size(p: SegBusPlatform) -> List[str]:
    if p.package_size < 1:
        return [f"package size {p.package_size} must be >= 1"]
    return []


def _clock_sanity(p: SegBusPlatform) -> List[str]:
    problems: List[str] = []
    for seg in p.segments:
        if seg.frequency.hz <= 0:
            problems.append(f"segment {seg.index} has non-positive clock frequency")
    if p.central_arbiter is not None and p.central_arbiter.frequency.hz <= 0:
        problems.append("central arbiter has non-positive clock frequency")
    return problems


#: The constraint registry evaluated during model validation.
STRUCTURAL_CONSTRAINTS: Tuple[Constraint, ...] = (
    Constraint("SBP-CA-1", "the platform contains exactly one Central Arbiter", _has_one_ca),
    Constraint("SBP-SEG-1", "the platform contains at least one Segment", _has_segments),
    Constraint("SBP-SEG-2", "segment indices are contiguous starting at 1", _contiguous_indices),
    Constraint("SEG-FU-1", "every segment contains at least one Functional Unit", _segment_has_fu),
    Constraint("SEG-SA-1", "every segment contains exactly one Segment Arbiter", _segment_has_sa),
    Constraint("SBP-BU-1", "adjacent segments are connected through exactly one BU", _bus_between_neighbours),
    Constraint("FU-EP-1", "every FU contains at least one Master or one Slave", _fu_has_endpoint),
    Constraint("MAP-1", "every application process is mapped to exactly one segment", _unique_process_mapping),
    Constraint("SBP-PKG-1", "the platform package size is positive", _positive_package_size),
    Constraint("SBP-CLK-1", "all clock frequencies are positive", _clock_sanity),
)
