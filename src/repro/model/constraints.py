"""OCL-style structural constraints of the SegBus DSL.

The DSL *"comprises a number of structural constraints related to the
platform, written in OCL, to implement the correct component approach to
platform design"* (section 2.2).  Each :class:`Constraint` carries an
identifier, the informal rule text and a checker returning structured
:class:`Diagnostic` entries (empty = satisfied).  Every diagnostic names
the offending element (its id, plus the segment index where applicable) so
the "associated model element" of the paper's error reporting is always
recoverable.  :data:`STRUCTURAL_CONSTRAINTS` is the registry evaluated by
:func:`repro.model.validation.validate_platform` and mirrored as ``SB1xx``
rules by the :mod:`repro.lint` engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.model.elements import SegBusPlatform


@dataclass(frozen=True)
class Diagnostic:
    """One constraint breach, anchored to the offending model element.

    ``element`` is the element's id/name (platform, segment, FU, BU or
    process name); ``segment`` the hosting segment index when applicable.
    """

    message: str
    element: Optional[str] = None
    segment: Optional[int] = None


Checker = Callable[[SegBusPlatform], List[Diagnostic]]


@dataclass(frozen=True)
class Constraint:
    """One structural rule: an id, the rule text, and its checker."""

    identifier: str
    rule: str
    check: Checker

    def evaluate(self, platform: SegBusPlatform) -> List[str]:
        """Diagnostics for ``platform`` as strings (empty when satisfied)."""
        return [f"[{self.identifier}] {d.message}" for d in self.check(platform)]

    def evaluate_structured(self, platform: SegBusPlatform) -> List[Diagnostic]:
        """Diagnostics for ``platform`` with element anchors preserved."""
        return list(self.check(platform))


def _has_one_ca(p: SegBusPlatform) -> List[Diagnostic]:
    if p.central_arbiter is None:
        return [
            Diagnostic(
                f"platform {p.name!r} has no Central Arbiter "
                "(exactly one CA required)",
                element=p.name,
            )
        ]
    return []


def _has_segments(p: SegBusPlatform) -> List[Diagnostic]:
    if not p.segments:
        return [
            Diagnostic(
                f"platform {p.name!r} has no segments (at least one required)",
                element=p.name,
            )
        ]
    return []


def _contiguous_indices(p: SegBusPlatform) -> List[Diagnostic]:
    indices = [s.index for s in p.segments]
    expected = list(range(1, len(indices) + 1))
    if indices != expected:
        return [
            Diagnostic(
                f"platform {p.name!r}: segment indices {indices} are not "
                "contiguous from 1",
                element=p.name,
            )
        ]
    return []


def _segment_has_fu(p: SegBusPlatform) -> List[Diagnostic]:
    return [
        Diagnostic(
            f"segment {seg.index} ({seg.name!r}) has no Functional Unit "
            "(at least one required)",
            element=seg.name,
            segment=seg.index,
        )
        for seg in p.segments
        if not seg.fus
    ]


def _segment_has_sa(p: SegBusPlatform) -> List[Diagnostic]:
    # Segment construction always attaches an SA; guard against tampering.
    return [
        Diagnostic(
            f"segment {seg.index} ({seg.name!r}) has no Segment Arbiter",
            element=seg.name,
            segment=seg.index,
        )
        for seg in p.segments
        if seg.arbiter is None
    ]


def _bus_between_neighbours(p: SegBusPlatform) -> List[Diagnostic]:
    problems: List[Diagnostic] = []
    needed = {(i, i + 1) for i in range(1, len(p.segments))}
    present = {(bu.left, bu.right) for bu in p.border_units}
    for pair in sorted(needed - present):
        problems.append(
            Diagnostic(
                f"missing BU between adjacent segments {pair[0]} and {pair[1]}",
                element=f"BU{pair[0]}{pair[1]}",
                segment=pair[0],
            )
        )
    for pair in sorted(present - needed):
        problems.append(
            Diagnostic(
                f"BU {f'BU{pair[0]}{pair[1]}'!r} between segments {pair[0]} and "
                f"{pair[1]} does not match the linear topology",
                element=f"BU{pair[0]}{pair[1]}",
                segment=pair[0],
            )
        )
    return problems


def _fu_has_endpoint(p: SegBusPlatform) -> List[Diagnostic]:
    return [
        Diagnostic(
            f"FU {fu.name!r} (segment {seg.index}) has neither a Master "
            "nor a Slave",
            element=fu.name,
            segment=seg.index,
        )
        for seg in p.segments
        for fu in seg.fus
        if not fu.masters and not fu.slaves
    ]


def _unique_process_mapping(p: SegBusPlatform) -> List[Diagnostic]:
    seen = {}
    problems: List[Diagnostic] = []
    for seg in p.segments:
        for proc in seg.processes:
            if proc in seen and seen[proc] != seg.index:
                problems.append(
                    Diagnostic(
                        f"process {proc!r} mapped to both segment {seen[proc]} "
                        f"and segment {seg.index}",
                        element=proc,
                        segment=seg.index,
                    )
                )
            seen.setdefault(proc, seg.index)
    return problems


def _positive_package_size(p: SegBusPlatform) -> List[Diagnostic]:
    if p.package_size < 1:
        return [
            Diagnostic(
                f"platform {p.name!r}: package size {p.package_size} "
                "must be >= 1",
                element=p.name,
            )
        ]
    return []


def _clock_sanity(p: SegBusPlatform) -> List[Diagnostic]:
    problems: List[Diagnostic] = []
    for seg in p.segments:
        if seg.frequency.hz <= 0:
            problems.append(
                Diagnostic(
                    f"segment {seg.index} ({seg.name!r}) has non-positive "
                    "clock frequency",
                    element=seg.name,
                    segment=seg.index,
                )
            )
    ca = p.central_arbiter
    if ca is not None and ca.frequency.hz <= 0:
        problems.append(
            Diagnostic(
                f"central arbiter {ca.name!r} has non-positive clock frequency",
                element=ca.name,
            )
        )
    return problems


#: The constraint registry evaluated during model validation.
STRUCTURAL_CONSTRAINTS: Tuple[Constraint, ...] = (
    Constraint("SBP-CA-1", "the platform contains exactly one Central Arbiter", _has_one_ca),
    Constraint("SBP-SEG-1", "the platform contains at least one Segment", _has_segments),
    Constraint("SBP-SEG-2", "segment indices are contiguous starting at 1", _contiguous_indices),
    Constraint("SEG-FU-1", "every segment contains at least one Functional Unit", _segment_has_fu),
    Constraint("SEG-SA-1", "every segment contains exactly one Segment Arbiter", _segment_has_sa),
    Constraint("SBP-BU-1", "adjacent segments are connected through exactly one BU", _bus_between_neighbours),
    Constraint("FU-EP-1", "every FU contains at least one Master or one Slave", _fu_has_endpoint),
    Constraint("MAP-1", "every application process is mapped to exactly one segment", _unique_process_mapping),
    Constraint("SBP-PKG-1", "the platform package size is positive", _positive_package_size),
    Constraint("SBP-CLK-1", "all clock frequencies are positive", _clock_sanity),
)
