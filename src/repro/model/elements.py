"""The SegBus platform element classes (paper Fig. 5 hierarchy).

At the top level is the ``SegBusPlatform`` itself, composed of ``Segment``\\ s
and exactly one ``CA``.  Every segment is composed of at least one ``FU`` and
exactly one ``SA``; adjacent segments are connected through ``BU``\\ s; one
``FU`` contains at least one ``Master`` or one ``Slave``.

These classes are *descriptive*: they hold structure and parameters only.
The runtime behaviour (arbitration, transfers, counters) lives in
:mod:`repro.emulator`, which instantiates its own runtime objects from this
model — the same split as the paper's MagicDraw model vs. Java emulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.model.stereotypes import StereotypedElement
from repro.units import Frequency


class Master(StereotypedElement):
    """A bus master inside an FU: initiates package transfers."""

    STEREOTYPE = "Master"


class Slave(StereotypedElement):
    """A bus slave inside an FU: receives package transfers."""

    STEREOTYPE = "Slave"


class FunctionalUnit(StereotypedElement):
    """A functional unit: a library component executing one PSDF process.

    The application is realized *"with the support of (library available)
    Functional Units"* (section 2.1).  ``process`` names the PSDF process
    the FU executes; masters/slaves are created on demand by the mapping
    step (a process with outgoing flows needs a master, one with incoming
    flows needs a slave).
    """

    STEREOTYPE = "FunctionalUnit"

    def __init__(self, name: str, process: str, library: str = "generic") -> None:
        super().__init__(name)
        if not process:
            raise ModelError(f"FU {name!r} must execute a named process")
        self.process = process
        self.set_tag("library", library)
        self.masters: List[Master] = []
        self.slaves: List[Slave] = []

    def add_master(self, name: Optional[str] = None) -> Master:
        master = Master(name or f"{self.name}_m{len(self.masters)}")
        self.masters.append(master)
        return master

    def add_slave(self, name: Optional[str] = None) -> Slave:
        slave = Slave(name or f"{self.name}_s{len(self.slaves)}")
        self.slaves.append(slave)
        return slave


class SegmentArbiter(StereotypedElement):
    """The per-segment arbiter (SA): grants the local bus per transfer burst."""

    STEREOTYPE = "SegmentArbiter"

    def __init__(self, name: str, policy: str = "round-robin") -> None:
        super().__init__(name)
        if policy not in ("round-robin", "fixed-priority"):
            raise ModelError(
                f"SA {name!r}: unknown arbitration policy {policy!r} "
                "(expected 'round-robin' or 'fixed-priority')"
            )
        self.set_tag("policy", policy)

    @property
    def policy(self) -> str:
        return self.get_tag("policy")


class CentralArbiter(StereotypedElement):
    """The single central arbiter (CA): owns inter-segment circuit switching."""

    STEREOTYPE = "CentralArbiter"

    def __init__(self, name: str, frequency: Frequency) -> None:
        super().__init__(name)
        self.frequency = frequency
        self.set_tag("frequencyMHz", float(frequency.mhz))


class BorderUnit(StereotypedElement):
    """A border unit (BU): the FIFO bridging two adjacent segments.

    ``left``/``right`` are segment indices with ``left + 1 == right`` in the
    linear topology; ``depth`` is the FIFO capacity in packages.
    """

    STEREOTYPE = "BorderUnit"

    def __init__(self, left: int, right: int, depth: int = 1, name: Optional[str] = None) -> None:
        if right != left + 1:
            raise ModelError(
                f"BU must bridge adjacent segments, got {left} and {right}"
            )
        if depth < 1:
            raise ModelError(f"BU FIFO depth must be >= 1, got {depth}")
        super().__init__(name or f"BU{left}{right}")
        self.left = left
        self.right = right
        self.set_tag("depth", depth)

    @property
    def depth(self) -> int:
        return self.get_tag("depth")

    def bridges(self, a: int, b: int) -> bool:
        return {a, b} == {self.left, self.right}


class Segment(StereotypedElement):
    """One bus segment: an SA, at least one FU, its own clock domain."""

    STEREOTYPE = "Segment"

    def __init__(self, index: int, frequency: Frequency, name: Optional[str] = None) -> None:
        if index < 1:
            raise ModelError(f"segment indices start at 1, got {index}")
        super().__init__(name or f"Segment{index}")
        self.index = index
        self.frequency = frequency
        self.set_tag("index", index)
        self.set_tag("frequencyMHz", float(frequency.mhz))
        self.arbiter = SegmentArbiter(f"SA{index}")
        self.fus: List[FunctionalUnit] = []

    def add_fu(self, fu: FunctionalUnit) -> FunctionalUnit:
        if any(existing.process == fu.process for existing in self.fus):
            raise ModelError(
                f"segment {self.index}: process {fu.process!r} is already mapped here"
            )
        self.fus.append(fu)
        return fu

    @property
    def processes(self) -> Tuple[str, ...]:
        return tuple(fu.process for fu in self.fus)


class SegBusPlatform(StereotypedElement):
    """The platform root: segments, exactly one CA, BUs between neighbours.

    Use :class:`repro.model.builder.PlatformBuilder` for convenient
    construction; this class only aggregates and offers lookups.  Structural
    correctness is asserted by :func:`repro.model.validation.validate_platform`
    (construction keeps partial states legal so the builder can work
    incrementally, exactly like drawing an unfinished diagram in the tool).
    """

    STEREOTYPE = "SegBusPlatform"

    def __init__(self, name: str = "SBP", package_size: int = 36) -> None:
        super().__init__(name)
        if package_size < 1:
            raise ModelError(f"package size must be >= 1, got {package_size}")
        self.package_size = package_size
        self.set_tag("packageSize", package_size)
        self.segments: List[Segment] = []
        self.border_units: List[BorderUnit] = []
        self.central_arbiter: Optional[CentralArbiter] = None

    # -- composition -----------------------------------------------------------

    def add_segment(self, segment: Segment) -> Segment:
        if any(s.index == segment.index for s in self.segments):
            raise ModelError(f"duplicate segment index {segment.index}")
        self.segments.append(segment)
        self.segments.sort(key=lambda s: s.index)
        return segment

    def add_border_unit(self, bu: BorderUnit) -> BorderUnit:
        if any(existing.bridges(bu.left, bu.right) for existing in self.border_units):
            raise ModelError(f"duplicate BU between segments {bu.left} and {bu.right}")
        self.border_units.append(bu)
        self.border_units.sort(key=lambda b: b.left)
        return bu

    def set_central_arbiter(self, ca: CentralArbiter) -> CentralArbiter:
        if self.central_arbiter is not None:
            raise ModelError("platform already has a central arbiter (exactly one CA)")
        self.central_arbiter = ca
        return ca

    # -- lookups ---------------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    def segment(self, index: int) -> Segment:
        for seg in self.segments:
            if seg.index == index:
                return seg
        raise ModelError(f"no segment with index {index}")

    def border_unit(self, left: int, right: int) -> BorderUnit:
        for bu in self.border_units:
            if bu.bridges(left, right):
                return bu
        raise ModelError(f"no BU between segments {left} and {right}")

    def segment_of_process(self, process: str) -> int:
        """Segment index hosting ``process`` (raises if unmapped)."""
        for seg in self.segments:
            if process in seg.processes:
                return seg.index
        raise ModelError(f"process {process!r} is not mapped on platform {self.name!r}")

    def process_placement(self) -> Dict[str, int]:
        """Mapping of every placed process name to its segment index."""
        placement: Dict[str, int] = {}
        for seg in self.segments:
            for proc in seg.processes:
                if proc in placement:
                    raise ModelError(
                        f"process {proc!r} mapped to both segment "
                        f"{placement[proc]} and {seg.index}"
                    )
                placement[proc] = seg.index
        return placement

    def fu_of_process(self, process: str) -> FunctionalUnit:
        for seg in self.segments:
            for fu in seg.fus:
                if fu.process == process:
                    return fu
        raise ModelError(f"process {process!r} is not mapped on platform {self.name!r}")
