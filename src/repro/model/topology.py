"""Linear segmented-bus topology: adjacency, paths and BU routing.

The paper's configurations all use a *linear* topology (Fig. 9): segments
``1..n`` in a row, one BU between each adjacent pair.  A transfer from
segment ``k`` to segment ``n`` traverses every intermediate segment and the
``n - k`` BUs between them, with segments released in cascade from the
source side (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ModelError, RoutingError


@dataclass(frozen=True)
class LinearTopology:
    """A linear arrangement of ``segment_count`` segments (indices 1..n)."""

    segment_count: int

    def __post_init__(self) -> None:
        if self.segment_count < 1:
            raise ModelError(
                f"topology needs at least 1 segment, got {self.segment_count}"
            )

    @property
    def bu_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The (left, right) BU positions: one per adjacent pair."""
        return tuple((i, i + 1) for i in range(1, self.segment_count))

    def validate_index(self, index: int) -> None:
        if not 1 <= index <= self.segment_count:
            raise RoutingError(
                f"segment index {index} outside 1..{self.segment_count}"
            )

    def hops(self, source: int, target: int) -> int:
        """Number of BUs crossed from segment ``source`` to ``target``."""
        self.validate_index(source)
        self.validate_index(target)
        return abs(target - source)

    def path(self, source: int, target: int) -> Tuple[int, ...]:
        """The segments visited, inclusive of both endpoints, in travel order.

        >>> LinearTopology(4).path(1, 3)
        (1, 2, 3)
        >>> LinearTopology(4).path(3, 1)
        (3, 2, 1)
        """
        self.validate_index(source)
        self.validate_index(target)
        step = 1 if target >= source else -1
        return tuple(range(source, target + step, step))

    def bus_on_path(self, source: int, target: int) -> Tuple[Tuple[int, int], ...]:
        """The (left, right) BU positions crossed, in travel order.

        >>> LinearTopology(3).bus_on_path(1, 3)
        ((1, 2), (2, 3))
        >>> LinearTopology(3).bus_on_path(3, 2)
        ((2, 3),)
        """
        segments = self.path(source, target)
        pairs: List[Tuple[int, int]] = []
        for a, b in zip(segments, segments[1:]):
            pairs.append((min(a, b), min(a, b) + 1))
        return tuple(pairs)

    def direction(self, source: int, target: int) -> int:
        """``+1`` for rightward transfers, ``-1`` leftward, ``0`` local."""
        if target > source:
            return 1
        if target < source:
            return -1
        return 0
