"""The SegBus platform DSL: a typed object model of the UML profile.

The paper models platforms in MagicDraw using a UML profile with stereotypes
for every SegBus element (section 2.2, Fig. 5).  This package re-implements
that DSL as a plain Python object model:

* :mod:`repro.model.stereotypes` — the profile machinery (stereotype names,
  tag values) mirroring the ``SegBus UML profile``;
* :mod:`repro.model.elements` — ``SegBusPlatform``, ``Segment``, ``CA``,
  ``SA``, ``BU``, ``FU``, ``Master``, ``Slave`` following the hierarchical
  structure of Fig. 5;
* :mod:`repro.model.constraints` — the OCL-style structural rules, evaluated
  by :func:`repro.model.validation.validate_platform`;
* :mod:`repro.model.builder` — a fluent :class:`PlatformBuilder`;
* :mod:`repro.model.topology` — linear-topology adjacency and hop routing;
* :mod:`repro.model.mapping` — binding PSDF processes to FUs, producing the
  Platform Specific Model (PSM).
"""

from repro.model.stereotypes import Stereotype, STEREOTYPES
from repro.model.elements import (
    BorderUnit,
    CentralArbiter,
    FunctionalUnit,
    Master,
    Segment,
    SegmentArbiter,
    SegBusPlatform,
    Slave,
)
from repro.model.builder import PlatformBuilder
from repro.model.constraints import Constraint, STRUCTURAL_CONSTRAINTS
from repro.model.validation import ValidationReport, validate_platform
from repro.model.topology import LinearTopology
from repro.model.mapping import Allocation, PlatformSpecificModel, map_application
from repro.model.compare import Change, PlatformDiff, diff_platforms

__all__ = [
    "Stereotype",
    "STEREOTYPES",
    "BorderUnit",
    "CentralArbiter",
    "FunctionalUnit",
    "Master",
    "Segment",
    "SegmentArbiter",
    "SegBusPlatform",
    "Slave",
    "PlatformBuilder",
    "Constraint",
    "STRUCTURAL_CONSTRAINTS",
    "ValidationReport",
    "validate_platform",
    "LinearTopology",
    "Allocation",
    "PlatformSpecificModel",
    "map_application",
    "Change",
    "PlatformDiff",
    "diff_platforms",
]
