"""Model validation: evaluating the constraint registry over a platform.

Mirrors the DSL's validation step: *"we apply validation process to get the
correct PSM of the application; if there exists some errors in the model, we
get error message(s) and associated model element become highlighted"*
(section 2.2).  The "highlighting" here is the per-constraint diagnostic
list of :class:`ValidationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConstraintViolation
from repro.model.constraints import Constraint, STRUCTURAL_CONSTRAINTS
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph


@dataclass
class ValidationReport:
    """Outcome of validating a platform (and optionally its application)."""

    model_name: str
    diagnostics: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.ConstraintViolation` on any breach."""
        if not self.ok:
            raise ConstraintViolation(self.diagnostics, model_name=self.model_name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{len(self.diagnostics)} violation(s)"
        return f"ValidationReport({self.model_name}: {status}, {self.checked} constraints)"


def validate_platform(
    platform: SegBusPlatform,
    application: Optional[PSDFGraph] = None,
    constraints: Sequence[Constraint] = STRUCTURAL_CONSTRAINTS,
) -> ValidationReport:
    """Evaluate every constraint; optionally cross-check the application.

    With ``application`` given, additionally verifies that every PSDF process
    is mapped onto the platform and that the platform hosts no stray FUs for
    processes absent from the application — the correctness precondition for
    emulation.
    """
    report = ValidationReport(model_name=platform.name)
    for constraint in constraints:
        report.checked += 1
        report.diagnostics.extend(constraint.evaluate(platform))
    if application is not None:
        report.checked += 1
        report.diagnostics.extend(_cross_check(platform, application))
    return report


def _cross_check(platform: SegBusPlatform, application: PSDFGraph) -> List[str]:
    problems: List[str] = []
    try:
        placement = platform.process_placement()
    except Exception as exc:  # duplicate mapping already reported by MAP-1
        return [f"[MAP-2] cannot derive placement: {exc}"]
    app_names = set(application.process_names)
    placed = set(placement)
    for missing in sorted(app_names - placed):
        problems.append(f"[MAP-2] application process {missing!r} is not mapped")
    for stray in sorted(placed - app_names):
        problems.append(
            f"[MAP-3] platform maps process {stray!r} that does not exist "
            "in the application"
        )
    return problems


def validated_placement(
    platform: SegBusPlatform, application: PSDFGraph
) -> Tuple[ValidationReport, dict]:
    """Validate and return ``(report, placement)``; raises on violation."""
    report = validate_platform(platform, application)
    report.raise_if_invalid()
    return report, platform.process_placement()
