"""Model validation: evaluating the constraint registry over a platform.

Mirrors the DSL's validation step: *"we apply validation process to get the
correct PSM of the application; if there exists some errors in the model, we
get error message(s) and associated model element become highlighted"*
(section 2.2).  The "highlighting" is the per-constraint
:class:`ValidationRecord` list of :class:`ValidationReport`, each record
anchored to the offending element.  Reports serialize
(:meth:`ValidationReport.to_dict`) to the same machine-readable finding
shape as the :mod:`repro.lint` engine, so tooling can consume validation
output and lint output uniformly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConstraintViolation
from repro.model.constraints import Constraint, STRUCTURAL_CONSTRAINTS
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class ValidationRecord:
    """One constraint breach: rule id, message, offending element anchor."""

    rule_id: str
    message: str
    element: Optional[str] = None
    segment: Optional[int] = None
    category: str = "platform"
    severity: str = "error"

    def format(self) -> str:
        return f"[{self.rule_id}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "category": self.category,
            "message": self.message,
        }
        location: Dict[str, object] = {}
        if self.element is not None:
            location["element"] = self.element
        if self.segment is not None:
            location["segment"] = self.segment
        if location:
            out["location"] = location
        return out


@dataclass
class ValidationReport:
    """Outcome of validating a platform (and optionally its application).

    Identical messages are recorded once: a checker that trips repeatedly
    over the same element (e.g. re-validation after partial fixes merged
    several reports) does not inflate the diagnostics list.
    """

    model_name: str
    records: List[ValidationRecord] = field(default_factory=list)
    checked: int = 0

    def add(self, record: ValidationRecord) -> bool:
        """Record ``record`` unless an identical one is already present."""
        if record in self.records:
            return False
        self.records.append(record)
        return True

    @property
    def diagnostics(self) -> List[str]:
        """The formatted messages, one per recorded breach (deduplicated)."""
        return [record.format() for record in self.records]

    @property
    def ok(self) -> bool:
        return not self.records

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.ConstraintViolation` on any breach."""
        if not self.ok:
            raise ConstraintViolation(self.diagnostics, model_name=self.model_name)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable shape shared with lint reports."""
        return {
            "model": self.model_name,
            "ok": self.ok,
            "checked": self.checked,
            "counts": {
                "error": sum(1 for r in self.records if r.severity == "error"),
                "warning": sum(1 for r in self.records if r.severity == "warning"),
                "info": sum(1 for r in self.records if r.severity == "info"),
            },
            "findings": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{len(self.records)} violation(s)"
        return f"ValidationReport({self.model_name}: {status}, {self.checked} constraints)"


def validate_platform(
    platform: SegBusPlatform,
    application: Optional[PSDFGraph] = None,
    constraints: Sequence[Constraint] = STRUCTURAL_CONSTRAINTS,
) -> ValidationReport:
    """Evaluate every constraint; optionally cross-check the application.

    With ``application`` given, additionally verifies that every PSDF process
    is mapped onto the platform and that the platform hosts no stray FUs for
    processes absent from the application — the correctness precondition for
    emulation.
    """
    report = ValidationReport(model_name=platform.name)
    for constraint in constraints:
        report.checked += 1
        for diagnostic in constraint.evaluate_structured(platform):
            report.add(
                ValidationRecord(
                    rule_id=constraint.identifier,
                    message=diagnostic.message,
                    element=diagnostic.element,
                    segment=diagnostic.segment,
                )
            )
    if application is not None:
        report.checked += 1
        for record in cross_check_records(platform, application.process_names):
            report.add(record)
    return report


def cross_check_records(
    platform: SegBusPlatform, process_names: Sequence[str]
) -> List[ValidationRecord]:
    """MAP-2/MAP-3: application processes vs platform placement.

    Shared by :func:`validate_platform` and the lint engine's mapping rules.
    """
    records: List[ValidationRecord] = []
    try:
        placement = platform.process_placement()
    except Exception as exc:  # duplicate mapping already reported by MAP-1
        return [
            ValidationRecord(
                rule_id="MAP-2",
                message=f"cannot derive placement: {exc}",
                element=platform.name,
                category="mapping",
            )
        ]
    app_names = set(process_names)
    placed = set(placement)
    for missing in sorted(app_names - placed):
        records.append(
            ValidationRecord(
                rule_id="MAP-2",
                message=f"application process {missing!r} is not mapped",
                element=missing,
                category="mapping",
            )
        )
    for stray in sorted(placed - app_names):
        records.append(
            ValidationRecord(
                rule_id="MAP-3",
                message=(
                    f"platform maps process {stray!r} (segment "
                    f"{placement[stray]}) that does not exist in the "
                    "application"
                ),
                element=stray,
                segment=placement[stray],
                category="mapping",
            )
        )
    return records


def validated_placement(
    platform: SegBusPlatform, application: PSDFGraph
) -> Tuple[ValidationReport, dict]:
    """Validate and return ``(report, placement)``; raises on violation."""
    report = validate_platform(platform, application)
    report.raise_if_invalid()
    return report, platform.process_placement()
