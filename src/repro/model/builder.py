"""Fluent construction of SegBus platform models.

The builder plays the role of drawing the PSM diagram in the DSL: declare
segments with their clock frequencies, set the CA clock, choose the package
size, and (optionally) let the builder insert the linear-topology BUs
automatically.  ``build()`` returns the :class:`SegBusPlatform`; validation
remains a separate, explicit step (as in the tool) via
:func:`repro.model.validation.validate_platform`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.errors import ModelError
from repro.model.elements import (
    BorderUnit,
    CentralArbiter,
    FunctionalUnit,
    Segment,
    SegmentArbiter,
    SegBusPlatform,
)
from repro.units import Frequency

FrequencyLike = Union[Frequency, float, int]


def _freq(value: FrequencyLike) -> Frequency:
    if isinstance(value, Frequency):
        return value
    return Frequency.from_mhz(float(value))


class PlatformBuilder:
    """Incrementally assemble a :class:`SegBusPlatform`.

    >>> platform = (
    ...     PlatformBuilder("SBP", package_size=36)
    ...     .segment(frequency_mhz=91)
    ...     .segment(frequency_mhz=98)
    ...     .central_arbiter(frequency_mhz=111)
    ...     .auto_border_units()
    ...     .build()
    ... )
    >>> platform.segment_count
    2
    """

    def __init__(self, name: str = "SBP", package_size: int = 36) -> None:
        self._platform = SegBusPlatform(name=name, package_size=package_size)
        self._built = False

    def _check_open(self) -> None:
        if self._built:
            raise ModelError("builder already produced its platform; create a new one")

    # -- structure -------------------------------------------------------------

    def segment(
        self,
        frequency_mhz: FrequencyLike,
        index: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "PlatformBuilder":
        """Append a segment (index defaults to the next free one)."""
        self._check_open()
        idx = index if index is not None else self._platform.segment_count + 1
        self._platform.add_segment(Segment(idx, _freq(frequency_mhz), name=name))
        return self

    def central_arbiter(
        self, frequency_mhz: FrequencyLike, name: str = "CA"
    ) -> "PlatformBuilder":
        self._check_open()
        self._platform.set_central_arbiter(CentralArbiter(name, _freq(frequency_mhz)))
        return self

    def arbitration_policy(self, segment_index: int, policy: str) -> "PlatformBuilder":
        """Set a segment's SA arbitration policy (round-robin default)."""
        self._check_open()
        segment = self._platform.segment(segment_index)
        segment.arbiter = SegmentArbiter(f"SA{segment_index}", policy=policy)
        return self

    def border_unit(self, left: int, right: int, depth: int = 1) -> "PlatformBuilder":
        self._check_open()
        self._platform.add_border_unit(BorderUnit(left, right, depth=depth))
        return self

    def auto_border_units(self, depth: int = 1) -> "PlatformBuilder":
        """Insert the linear-topology BUs between every adjacent pair."""
        self._check_open()
        existing = {(bu.left, bu.right) for bu in self._platform.border_units}
        for left in range(1, self._platform.segment_count):
            if (left, left + 1) not in existing:
                self._platform.add_border_unit(BorderUnit(left, left + 1, depth=depth))
        return self

    # -- application mapping -----------------------------------------------------

    def place(
        self, process: str, segment_index: int, library: str = "generic"
    ) -> "PlatformBuilder":
        """Map one process onto a segment (creates its FU)."""
        self._check_open()
        segment = self._platform.segment(segment_index)
        segment.add_fu(FunctionalUnit(f"FU_{process}", process=process, library=library))
        return self

    def place_all(
        self, placement: Mapping[str, int]
    ) -> "PlatformBuilder":
        """Map many processes at once from a name -> segment-index mapping."""
        for process in sorted(placement):
            self.place(process, placement[process])
        return self

    def place_groups(self, groups: Sequence[Iterable[str]]) -> "PlatformBuilder":
        """Map group ``i`` (0-based) of process names onto segment ``i + 1``.

        Convenient for the paper's Fig. 9 allocations given as per-segment
        lists.
        """
        for offset, group in enumerate(groups):
            for process in group:
                self.place(process, offset + 1)
        return self

    # -- result -----------------------------------------------------------------

    def build(self) -> SegBusPlatform:
        """Finalize and return the platform (builder becomes unusable)."""
        self._check_open()
        self._built = True
        return self._platform


def uniform_platform(
    segment_count: int,
    frequency_mhz: FrequencyLike = 100,
    ca_frequency_mhz: Optional[FrequencyLike] = None,
    package_size: int = 36,
    name: str = "SBP",
) -> PlatformBuilder:
    """A builder pre-populated with ``segment_count`` same-frequency segments.

    Returns the builder (not the platform) so callers can continue with
    process placement.
    """
    if segment_count < 1:
        raise ModelError(f"segment count must be >= 1, got {segment_count}")
    builder = PlatformBuilder(name=name, package_size=package_size)
    for _ in range(segment_count):
        builder.segment(frequency_mhz=frequency_mhz)
    builder.central_arbiter(
        frequency_mhz=ca_frequency_mhz if ca_frequency_mhz is not None else frequency_mhz
    )
    builder.auto_border_units()
    return builder
