"""Fault models: what can go wrong, where, and how often.

A :class:`FaultPlan` is the declarative description of a fault campaign —
a PRNG seed plus :class:`FaultRecord` entries, each an
``(site, kind, rate | schedule)`` triple:

========================  =====================================  ===========
kind                      meaning                                sites
========================  =====================================  ===========
``package_corruption``    a delivered package fails its CRC      ``segment:N``, ``*``
                          check and is NACKed (intra- or
                          inter-segment, detected at the
                          receiving side)
``grant_loss``            an arbitration grant signal is lost    ``segment:N``, ``ca``, ``*``
                          before the master drives the bus;
                          the request re-enters arbitration
``fu_stall``              a functional unit stalls for           ``fu:NAME``, ``*``
                          ``ticks`` extra clock ticks before
                          producing its package
``bu_drop``               a border unit overruns and drops       ``bu:L:R``, ``*``
                          the package it just latched; the
                          transfer is re-requested end-to-end
``permanent_failure``     the element dies at ``at_tick``        ``fu:NAME``
                          (local clock) and never recovers
========================  =====================================  ===========

Transient kinds carry a ``rate`` (Bernoulli probability per opportunity,
drawn from the record's own deterministic stream); ``permanent_failure``
carries an ``at_tick`` schedule instead.  Validation happens eagerly at
construction so an ill-formed campaign fails before any emulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.errors import FaultConfigError

KIND_CORRUPTION = "package_corruption"
KIND_GRANT_LOSS = "grant_loss"
KIND_FU_STALL = "fu_stall"
KIND_BU_DROP = "bu_drop"
KIND_PERMANENT = "permanent_failure"

#: every fault kind the injector understands, in taxonomy order
FAULT_KINDS = (
    KIND_CORRUPTION,
    KIND_GRANT_LOSS,
    KIND_FU_STALL,
    KIND_BU_DROP,
    KIND_PERMANENT,
)

#: transient kinds are rate-driven; permanent kinds are schedule-driven
TRANSIENT_KINDS = (KIND_CORRUPTION, KIND_GRANT_LOSS, KIND_FU_STALL, KIND_BU_DROP)

#: site prefixes admissible per kind ("*" means any matching element)
_SITE_RULES = {
    KIND_CORRUPTION: ("segment:", "*"),
    KIND_GRANT_LOSS: ("segment:", "ca", "*"),
    KIND_FU_STALL: ("fu:", "*"),
    KIND_BU_DROP: ("bu:", "*"),
    KIND_PERMANENT: ("fu:",),
}


def _check_site(site: str, kind: str) -> None:
    allowed = _SITE_RULES[kind]
    if site == "*":
        if "*" not in allowed:
            raise FaultConfigError(
                f"kind {kind!r} does not accept the wildcard site"
            )
        return
    if site == "ca":
        if "ca" not in allowed:
            raise FaultConfigError(f"site 'ca' is not valid for kind {kind!r}")
        return
    for prefix in allowed:
        if prefix.endswith(":") and site.startswith(prefix):
            suffix = site[len(prefix):]
            if prefix == "segment:":
                if not suffix.isdigit():
                    raise FaultConfigError(
                        f"site {site!r}: segment index must be an integer"
                    )
            elif prefix == "bu:":
                parts = suffix.split(":")
                if len(parts) != 2 or not all(p.isdigit() for p in parts):
                    raise FaultConfigError(
                        f"site {site!r}: expected 'bu:<left>:<right>'"
                    )
            elif prefix == "fu:" and not suffix:
                raise FaultConfigError(f"site {site!r}: missing process name")
            return
    raise FaultConfigError(
        f"site {site!r} is not valid for kind {kind!r} "
        f"(expected one of {allowed})"
    )


@dataclass(frozen=True)
class FaultRecord:
    """One fault source: ``(site, kind, rate | schedule)``.

    ``rate`` is the per-opportunity injection probability of a transient
    fault; ``at_tick`` is the failure instant (element-local clock ticks)
    of a permanent one; ``ticks`` is the stall duration for ``fu_stall``.
    """

    site: str
    kind: str
    rate: float = 0.0
    at_tick: Optional[int] = None
    ticks: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        _check_site(self.site, self.kind)
        if self.kind == KIND_PERMANENT:
            if self.at_tick is None or self.at_tick < 0:
                raise FaultConfigError(
                    f"{self.kind} at {self.site!r} needs at_tick >= 0"
                )
            if self.rate:
                raise FaultConfigError(
                    f"{self.kind} at {self.site!r} is schedule-driven; "
                    "rate must stay 0"
                )
        else:
            if self.at_tick is not None:
                raise FaultConfigError(
                    f"{self.kind} at {self.site!r} is rate-driven; "
                    "at_tick is only valid for permanent_failure"
                )
            if not 0.0 <= self.rate <= 1.0:
                raise FaultConfigError(
                    f"{self.kind} at {self.site!r}: rate {self.rate} "
                    "outside [0, 1]"
                )
        if self.kind == KIND_FU_STALL:
            if self.ticks <= 0:
                raise FaultConfigError(
                    f"fu_stall at {self.site!r} needs ticks > 0 "
                    "(the stall duration)"
                )
        elif self.ticks:
            raise FaultConfigError(
                f"{self.kind} at {self.site!r}: ticks is only valid for "
                "fu_stall"
            )

    @property
    def is_transient(self) -> bool:
        return self.kind in TRANSIENT_KINDS

    def matches(self, site: str) -> bool:
        """True when this record covers the concrete ``site``."""
        return self.site == "*" or self.site == site


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seed-driven fault campaign."""

    seed: int = 0
    records: Tuple[FaultRecord, ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultConfigError(f"seed must be >= 0, got {self.seed}")
        object.__setattr__(self, "records", tuple(self.records))
        permanents = [r.site for r in self.records if r.kind == KIND_PERMANENT]
        if len(permanents) != len(set(permanents)):
            raise FaultConfigError(
                "duplicate permanent_failure records for one site"
            )

    # -- derived views ---------------------------------------------------------

    @property
    def transient_records(self) -> Tuple[FaultRecord, ...]:
        return tuple(r for r in self.records if r.is_transient)

    @property
    def permanent_records(self) -> Tuple[FaultRecord, ...]:
        return tuple(r for r in self.records if r.kind == KIND_PERMANENT)

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything."""
        return all(r.rate == 0.0 for r in self.transient_records) and not (
            self.permanent_records
        )

    def of_kind(self, kind: str) -> Tuple[FaultRecord, ...]:
        return tuple(r for r in self.records if r.kind == kind)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def transient(
        cls,
        seed: int,
        corruption_rate: float = 0.0,
        grant_loss_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_ticks: int = 50,
        bu_drop_rate: float = 0.0,
    ) -> "FaultPlan":
        """A uniform transient campaign over every element (site ``*``)."""
        records: List[FaultRecord] = []
        if corruption_rate:
            records.append(FaultRecord("*", KIND_CORRUPTION, corruption_rate))
        if grant_loss_rate:
            records.append(FaultRecord("*", KIND_GRANT_LOSS, grant_loss_rate))
        if stall_rate:
            records.append(
                FaultRecord("*", KIND_FU_STALL, stall_rate, ticks=stall_ticks)
            )
        if bu_drop_rate:
            records.append(FaultRecord("*", KIND_BU_DROP, bu_drop_rate))
        return cls(seed=seed, records=tuple(records))

    def with_record(self, record: FaultRecord) -> "FaultPlan":
        """A copy with one more record appended."""
        return replace(self, records=self.records + (record,))

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same campaign under a different PRNG seed."""
        return replace(self, seed=seed)

    def injector(self):
        """Instantiate the runtime :class:`~repro.faults.injector.FaultInjector`."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self)
