"""Deterministic pseudo-random streams for fault injection.

Fault decisions must be reproducible bit-for-bit across runs, platforms and
Python versions, and independent of ``PYTHONHASHSEED`` — so the streams are
built from scratch: a SHA-256 digest of ``(seed, *keys)`` seeds a
``splitmix64``-scrambled ``xorshift64*`` generator.  Each fault record gets
its *own* stream keyed by ``(site, kind, index)``, so adding a record to a
plan never perturbs the draws of the existing ones.

No wall-clock, no :mod:`random`, no global state.
"""

from __future__ import annotations

import hashlib

_MASK64 = (1 << 64) - 1
#: 2**-64 as a float: maps a u64 draw onto [0, 1)
_INV_2_64 = 1.0 / float(1 << 64)


def _splitmix64(state: int) -> int:
    """One splitmix64 scramble step (used to whiten the initial state)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def stream_state(seed: int, *keys: str) -> int:
    """Derive a 64-bit nonzero initial state from a seed and string keys."""
    digest = hashlib.sha256(
        ("|".join([str(int(seed))] + [str(k) for k in keys])).encode("utf-8")
    ).digest()
    state = int.from_bytes(digest[:8], "big")
    state = _splitmix64(state)
    return state or 0x9E3779B97F4A7C15  # xorshift states must be nonzero


class DeterministicStream:
    """A tiny xorshift64* generator with a per-purpose derived seed."""

    __slots__ = ("_state",)

    def __init__(self, seed: int, *keys: str) -> None:
        self._state = stream_state(seed, *keys)

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_float(self) -> float:
        """A float uniform on [0, 1)."""
        return self.next_u64() * _INV_2_64

    def chance(self, rate: float) -> bool:
        """One Bernoulli draw at probability ``rate`` (always draws)."""
        return self.next_float() < rate
