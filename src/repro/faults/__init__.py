"""Fault injection and resilience for the SegBus emulator.

The paper's emulator assumes a perfectly reliable platform: every package
transfer, arbitration grant and BU hop succeeds on the first attempt.  This
package models the platform *misbehaving* — deterministically, so fault
campaigns are exactly reproducible:

* :class:`~repro.faults.model.FaultPlan` — a seed plus a list of
  ``(site, kind, rate | schedule)`` records describing what can go wrong
  where; serializable through the same XML scheme path as the PSDF/PSM
  models (:mod:`repro.xmlio.faults_xml`).
* :class:`~repro.faults.policy.RetryPolicy` — how the SA/CA runtimes react:
  maximum attempts, linear/exponential backoff in ticks, per-hop timeout,
  and what to do on exhaustion or permanent element failure.
* :class:`~repro.faults.injector.FaultInjector` — the per-simulation
  runtime that draws from seed-derived PRNG streams (never wall-clock) and
  counts every injected fault.
* :class:`~repro.faults.watchdog.Watchdog` — converts "no event retired
  for N ticks" into a structured :class:`~repro.errors.StallError`.

Determinism guarantees (see docs/ROBUSTNESS.md):

1. two runs of the same (application, platform, plan, policy) produce
   bit-identical reports;
2. a plan whose rates are all zero and that schedules no permanent
   failures leaves the emulation bit-identical to a run without any plan.
"""

from repro.faults.injector import FaultCounters, FaultInjector
from repro.faults.model import (
    FAULT_KINDS,
    KIND_BU_DROP,
    KIND_CORRUPTION,
    KIND_FU_STALL,
    KIND_GRANT_LOSS,
    KIND_PERMANENT,
    FaultRecord,
    FaultPlan,
)
from repro.faults.policy import RetryPolicy
from repro.faults.watchdog import Watchdog

__all__ = [
    "FAULT_KINDS",
    "KIND_BU_DROP",
    "KIND_CORRUPTION",
    "KIND_FU_STALL",
    "KIND_GRANT_LOSS",
    "KIND_PERMANENT",
    "FaultRecord",
    "FaultPlan",
    "FaultCounters",
    "FaultInjector",
    "RetryPolicy",
    "Watchdog",
]
