"""The progress watchdog: structured stall diagnostics.

The event queue drains on healthy models, so a hung emulation shows up as
one of two shapes: a *livelock* (events keep firing, simulated time keeps
advancing, but nothing retires — e.g. an arbitration loop that never
grants) or an exhausted event budget.  The watchdog converts the first
shape into a :class:`~repro.errors.StallError` carrying the stalled
elements, the pending jobs and the last-progress tick, instead of letting
the run burn through its whole event budget first.

Attach via ``Simulation(..., watchdog=Watchdog(stall_ticks=...))`` or the
facade's ``watchdog=`` parameter.  The kernel calls :meth:`observe` after
every executed event; the check itself runs every ``check_every`` events to
stay off the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultConfigError, StallError


@dataclass
class Watchdog:
    """Raise :class:`StallError` when no event retires for ``stall_ticks``.

    ``stall_ticks`` is measured on the CA clock — the platform's global
    timebase.  ``check_every`` trades detection latency for overhead.
    """

    stall_ticks: int = 100_000
    check_every: int = 256

    def __post_init__(self) -> None:
        if self.stall_ticks <= 0:
            raise FaultConfigError("stall_ticks must be positive")
        if self.check_every <= 0:
            raise FaultConfigError("check_every must be positive")
        self._events_seen = 0
        self._last_progress_count = -1
        self._last_progress_fs = 0

    def observe(self, sim) -> None:
        """Called by the kernel after each executed event."""
        self._events_seen += 1
        if self._events_seen % self.check_every:
            return
        progress = sim.progress_count
        now_fs = sim.queue.now_fs
        if progress != self._last_progress_count:
            self._last_progress_count = progress
            self._last_progress_fs = now_fs
            return
        limit_fs = sim.ca.clock.ticks_to_fs(self.stall_ticks)
        if now_fs - self._last_progress_fs <= limit_fs:
            return
        raise StallError(
            f"watchdog: no progress for more than {self.stall_ticks} CA "
            "ticks while events keep firing",
            pending=sim.pending_work(),
            last_progress_tick=sim.ca.clock.ticks(self._last_progress_fs),
            stalled_elements=sim.stalled_elements(),
        )
