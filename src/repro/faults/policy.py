"""Resilience policy: retries, backoff, timeouts, degradation.

The SA/CA runtimes consult one :class:`RetryPolicy` whenever a transfer
fails (corrupted package, dropped BU package) or waits too long for a CA
grant.  All delays are expressed in clock ticks of the domain where the
retry happens, keeping the protocol frequency-portable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FaultConfigError

BACKOFF_MODES = ("none", "linear", "exponential")
EXHAUSTION_MODES = ("fail", "degrade")


@dataclass(frozen=True)
class RetryPolicy:
    """How the platform reacts to transfer failures.

    ``max_attempts``
        total tries per package (first attempt included); a package that
        fails ``max_attempts`` times is *exhausted*.
    ``backoff`` / ``base_delay_ticks`` / ``max_delay_ticks``
        delay before re-arbitrating attempt ``n`` (1-based count of
        failures): ``none`` → 0, ``linear`` → ``base * n``,
        ``exponential`` → ``base * 2**(n-1)``, all capped at
        ``max_delay_ticks``.
    ``timeout_ticks``
        per-hop budget (CA clock) an inter-segment request may wait in the
        CA queue before the wait itself counts as a failed attempt;
        ``None`` disables the timeout.
    ``on_exhaustion``
        ``"fail"`` raises :class:`~repro.errors.RetryExhaustedError`;
        ``"degrade"`` abandons the package, flags the run degraded and
        lists the flow as unserved.
    ``on_permanent_failure``
        ``"degrade"`` (default) completes the remaining flows and reports
        ``degraded=True``; ``"fail"`` raises
        :class:`~repro.errors.ElementFailureError` at the failure instant.
    """

    max_attempts: int = 4
    backoff: str = "exponential"
    base_delay_ticks: int = 4
    max_delay_ticks: int = 4096
    timeout_ticks: Optional[int] = None
    on_exhaustion: str = "fail"
    on_permanent_failure: str = "degrade"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff not in BACKOFF_MODES:
            raise FaultConfigError(
                f"unknown backoff {self.backoff!r} "
                f"(expected one of {BACKOFF_MODES})"
            )
        if self.base_delay_ticks < 0:
            raise FaultConfigError("base_delay_ticks must be >= 0")
        if self.max_delay_ticks < self.base_delay_ticks:
            raise FaultConfigError(
                "max_delay_ticks must be >= base_delay_ticks"
            )
        if self.timeout_ticks is not None and self.timeout_ticks <= 0:
            raise FaultConfigError("timeout_ticks must be positive (or None)")
        if self.on_exhaustion not in EXHAUSTION_MODES:
            raise FaultConfigError(
                f"unknown on_exhaustion {self.on_exhaustion!r} "
                f"(expected one of {EXHAUSTION_MODES})"
            )
        if self.on_permanent_failure not in EXHAUSTION_MODES:
            raise FaultConfigError(
                f"unknown on_permanent_failure {self.on_permanent_failure!r} "
                f"(expected one of {EXHAUSTION_MODES})"
            )

    def delay_ticks(self, failures: int) -> int:
        """Backoff delay before the retry following the ``failures``-th failure."""
        if failures < 1:
            return 0
        if self.backoff == "none":
            delay = 0
        elif self.backoff == "linear":
            delay = self.base_delay_ticks * failures
        else:  # exponential
            delay = self.base_delay_ticks * (2 ** (failures - 1))
        return min(delay, self.max_delay_ticks)

    @property
    def degrades_on_exhaustion(self) -> bool:
        return self.on_exhaustion == "degrade"

    @property
    def degrades_on_permanent_failure(self) -> bool:
        return self.on_permanent_failure == "degrade"
