"""The per-simulation fault-injection runtime.

The kernel asks the injector one question per fault opportunity ("does this
delivery fail its CRC?", "is this grant lost?") and the injector answers
from the fault plan's deterministic PRNG streams.  One stream per record:
every opportunity draws a Bernoulli sample from *each* matching record, so
adding a record to a plan never changes the decisions of the others, and
two runs of the same plan produce bit-identical injections.

The injector also keeps the fault bookkeeping — how many faults of each
kind were injected at which site — snapshotted into the report's fault
summary at the end of emulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.model import (
    KIND_BU_DROP,
    KIND_CORRUPTION,
    KIND_FU_STALL,
    KIND_GRANT_LOSS,
    FaultPlan,
    FaultRecord,
)
from repro.faults.prng import DeterministicStream


@dataclass
class FaultCounters:
    """Injection bookkeeping: per-kind and per-site totals."""

    by_kind: Dict[str, int] = field(default_factory=dict)
    by_site: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, site: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.by_site[site] = self.by_site.get(site, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_kind.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "by_kind": dict(sorted(self.by_kind.items())),
            "by_site": dict(sorted(self.by_site.items())),
        }


class FaultInjector:
    """Runtime oracle over a :class:`~repro.faults.model.FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        # one independent stream per record, keyed by its position so two
        # otherwise-identical records still draw independently
        self._streams: List[Tuple[FaultRecord, DeterministicStream]] = [
            (record, DeterministicStream(plan.seed, record.site, record.kind, str(i)))
            for i, record in enumerate(plan.records)
            if record.is_transient
        ]

    # -- generic draw ----------------------------------------------------------

    def _draw(self, kind: str, site: str) -> Optional[FaultRecord]:
        """One opportunity at ``site``: Bernoulli-draw every matching record."""
        hit: Optional[FaultRecord] = None
        for record, stream in self._streams:
            if record.kind != kind or not record.matches(site):
                continue
            if stream.chance(record.rate) and hit is None:
                hit = record
        if hit is not None:
            self.counters.record(kind, site)
        return hit

    # -- kernel-facing queries -------------------------------------------------

    def corrupt_package(self, segment_index: int) -> bool:
        """Does the package delivered on ``segment_index`` fail its CRC?"""
        return self._draw(KIND_CORRUPTION, f"segment:{segment_index}") is not None

    def lose_segment_grant(self, segment_index: int) -> bool:
        """Is the SA grant on ``segment_index`` lost before the transfer?"""
        return self._draw(KIND_GRANT_LOSS, f"segment:{segment_index}") is not None

    def lose_ca_grant(self) -> bool:
        """Is the CA's circuit grant lost before the source fills the BU?"""
        return self._draw(KIND_GRANT_LOSS, "ca") is not None

    def stall_ticks(self, process: str) -> int:
        """Extra compute ticks injected into ``process`` (0 = no stall)."""
        record = self._draw(KIND_FU_STALL, f"fu:{process}")
        return record.ticks if record is not None else 0

    def drop_in_bu(self, left: int, right: int) -> bool:
        """Does BU(left,right) overrun and drop the package it latched?"""
        return self._draw(KIND_BU_DROP, f"bu:{left}:{right}") is not None

    def permanent_failures(self) -> Tuple[FaultRecord, ...]:
        """The scheduled permanent failures (kernel turns them into events)."""
        return self.plan.permanent_records

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        data = self.counters.as_dict()
        data["seed"] = self.plan.seed
        data["records"] = len(self.plan.records)
        return data
