"""Emulator-side parsing of PSDF XML schemes.

The emulator *"extracts the number of application processes, data transfers
from each process, ordering of transfers and clock ticks to be consumed by
each process while processing one package"* (section 3.5).  The parser
returns a :class:`ParsedPSDF` exposing exactly those four pieces plus a
reconstruction of the :class:`~repro.psdf.graph.PSDFGraph` (with constant
per-package costs, since the scheme stores ``C`` at a fixed package size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import XMLFormatError
from repro.psdf.flow import PacketFlow
from repro.psdf.graph import PSDFGraph
from repro.psdf.process import Process, ProcessKind
from repro.xmlio.psdf_writer import TRANSFER_TYPE
from repro.xmlio.schema_writer import SchemaDocument

_STEREOTYPE_TO_KIND = {kind.value: kind for kind in ProcessKind}


@dataclass
class ParsedPSDF:
    """The information the emulator needs from a PSDF scheme."""

    name: str
    processes: Tuple[Process, ...]
    flows: Tuple[PacketFlow, ...]

    @property
    def process_count(self) -> int:
        return len(self.processes)

    def transfers_from(self, source: str) -> Tuple[PacketFlow, ...]:
        return tuple(f for f in self.flows if f.source == source)

    def to_graph(self) -> PSDFGraph:
        """Reconstruct the validated PSDF graph."""
        return PSDFGraph(self.processes, self.flows, name=self.name)


def parse_psdf_xml(text: str) -> ParsedPSDF:
    """Parse the XML scheme produced by :func:`repro.xmlio.psdf_writer.psdf_to_xml`.

    Raises :class:`~repro.errors.XMLFormatError` on malformed schemes
    (missing header, dangling flow targets, unparseable element names).
    """
    doc = SchemaDocument.from_xml(text)
    from repro.xmlio.schema_check import assert_scheme_valid

    assert_scheme_valid(doc)
    if not doc.top_level:
        raise XMLFormatError("PSDF scheme has no top-level element")
    header_type = doc.top_level[0].type
    try:
        header = doc.complex_type(header_type)
    except XMLFormatError as exc:
        raise XMLFormatError(
            f"PSDF scheme names header type {header_type!r} but does not define it"
        ) from exc

    processes: List[Process] = []
    for entry in header.children:
        kind = _STEREOTYPE_TO_KIND.get(entry.type)
        if kind is None:
            raise XMLFormatError(
                f"process {entry.name!r} has unknown stereotype {entry.type!r}"
            )
        processes.append(Process(entry.name, kind))
    declared = {p.name for p in processes}
    if len(declared) != len(processes):
        raise XMLFormatError("duplicate process declarations in PSDF header")

    flows: List[PacketFlow] = []
    for ctype in doc.complex_types:
        if ctype.name == header_type:
            continue
        if ctype.name not in declared:
            raise XMLFormatError(
                f"complexType {ctype.name!r} is not a declared process"
            )
        for entry in ctype.children:
            if entry.type != TRANSFER_TYPE:
                raise XMLFormatError(
                    f"process {ctype.name!r}: unexpected child type {entry.type!r}"
                )
            flow = PacketFlow.from_element_name(ctype.name, entry.name)
            if flow.target not in declared:
                raise XMLFormatError(
                    f"flow {entry.name!r} of {ctype.name!r} targets undeclared "
                    f"process {flow.target!r}"
                )
            flows.append(flow)
    return ParsedPSDF(
        name=header_type, processes=tuple(processes), flows=tuple(flows)
    )
