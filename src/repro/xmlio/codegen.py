"""The code-engineering-set abstraction.

In MagicDraw, *"a code engineering set needs to be introduced for each model
where we specify the required type of transformation ... we make two separate
code engineering sets (one for PSDF and other for PSM) ... a directory is
also specified where the generated XML schemes are to be saved"* (section
3.4).  :class:`CodeEngineeringSet` reproduces that workflow: it bundles a
model, a transformation kind and an output path, and :func:`generate_models`
runs a batch of sets, writing the scheme files to disk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import SegBusError
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml


class TransformationKind(enum.Enum):
    """The M2T specification's transformation types we support."""

    MODEL_TO_TEXT = "Model-to-Text"


@dataclass
class CodeEngineeringSet:
    """One code engineering set: a model plus its transformation recipe."""

    name: str
    model: Union[PSDFGraph, SegBusPlatform]
    output_file: str
    kind: TransformationKind = TransformationKind.MODEL_TO_TEXT
    package_size: int = 36

    def transform(self) -> str:
        """Run the transformation and return the generated text."""
        if self.kind is not TransformationKind.MODEL_TO_TEXT:  # pragma: no cover
            raise SegBusError(f"unsupported transformation kind {self.kind}")
        if isinstance(self.model, PSDFGraph):
            return psdf_to_xml(self.model, self.package_size)
        if isinstance(self.model, SegBusPlatform):
            return psm_to_xml(self.model)
        raise SegBusError(
            f"code engineering set {self.name!r}: unsupported model type "
            f"{type(self.model).__name__}"
        )


def generate_models(
    sets: Sequence[CodeEngineeringSet], output_dir: Union[str, Path]
) -> List[Path]:
    """Run every set and write its scheme into ``output_dir``.

    Returns the written file paths in input order; the directory is created
    if missing (the "specified directory" of the paper's workflow).
    """
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for ces in sets:
        path = directory / ces.output_file
        path.write_text(ces.transform(), encoding="utf-8")
        written.append(path)
    return written
