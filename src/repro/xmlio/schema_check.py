"""Referential-integrity checking of scheme documents.

The M2T output is only useful if every ``type`` attribute resolves: a PSM
scheme whose segment references an undefined FU type would crash the
emulator's setup halfway through.  :func:`check_scheme` validates a
:class:`~repro.xmlio.schema_writer.SchemaDocument` before it is consumed:

* every referenced type is either defined as a complex type in the same
  document or one of the known *terminal* types (``Transfer``,
  ``Parameter``, ``Master``, ``Slave`` and the PSDF stereotypes);
* every top-level element's type is defined;
* no complex type is orphaned (unreachable from a top-level element) —
  orphans signal a generator bug even though parsers would ignore them;
* type names are unique (enforced structurally by the document model, but
  re-checked here for documents built by hand);
* child element names are unique within each complex type — ``xs:all``
  semantics forbid two children with the same id, and every parser in
  :mod:`repro.xmlio` would silently keep only one of them.

Problems are reported both as plain strings (``problems``, the historical
interface) and as kind-tagged :class:`SchemeProblem` entries (``entries``)
so downstream tooling — the :mod:`repro.lint` scheme rules — can map each
problem class onto a stable rule id without string matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.xmlio.schema_writer import SchemaDocument

#: types that terminate the reference chain (no complex-type definition)
TERMINAL_TYPES = frozenset(
    {
        "Transfer",
        "Parameter",
        "Master",
        "Slave",
        "InitialNode",
        "ProcessNode",
        "FinalNode",
    }
)

#: problem kinds carried by :class:`SchemeProblem`
KIND_DUPLICATE_TYPE = "duplicate-type"
KIND_UNDEFINED_REFERENCE = "undefined-reference"
KIND_ORPHAN_TYPE = "orphan-type"
KIND_DUPLICATE_CHILD = "duplicate-child"


@dataclass(frozen=True)
class SchemeProblem:
    """One integrity problem, tagged with its kind and offending type."""

    kind: str
    message: str
    type_name: Optional[str] = None


@dataclass
class SchemeCheckReport:
    """Diagnostics from checking one scheme document."""

    problems: List[str] = field(default_factory=list)
    entries: List[SchemeProblem] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(
        self,
        message: str,
        kind: str = KIND_UNDEFINED_REFERENCE,
        type_name: Optional[str] = None,
    ) -> None:
        self.problems.append(message)
        self.entries.append(
            SchemeProblem(kind=kind, message=message, type_name=type_name)
        )


def check_scheme(doc: SchemaDocument) -> SchemeCheckReport:
    """Validate referential integrity of ``doc``."""
    report = SchemeCheckReport()
    defined: Set[str] = set()
    for ctype in doc.complex_types:
        if ctype.name in defined:
            report.add(
                f"complexType {ctype.name!r} defined more than once",
                kind=KIND_DUPLICATE_TYPE,
                type_name=ctype.name,
            )
        defined.add(ctype.name)

    for ctype in doc.complex_types:
        seen_children: Set[str] = set()
        for child in ctype.children:
            if child.name in seen_children:
                report.add(
                    f"complexType {ctype.name!r} declares duplicate child "
                    f"element {child.name!r}",
                    kind=KIND_DUPLICATE_CHILD,
                    type_name=ctype.name,
                )
            seen_children.add(child.name)

    def check_reference(owner: str, type_name: str) -> None:
        if type_name in TERMINAL_TYPES:
            return
        if type_name not in defined:
            report.add(
                f"{owner} references undefined type {type_name!r}",
                kind=KIND_UNDEFINED_REFERENCE,
                type_name=type_name,
            )

    for element in doc.top_level:
        check_reference(f"top-level element {element.name!r}", element.type)
    for ctype in doc.complex_types:
        for child in ctype.children:
            check_reference(
                f"complexType {ctype.name!r} child {child.name!r}", child.type
            )

    # reachability from top-level roots; a child references a type either
    # through its ``type`` attribute or — the PSDF-header pattern, where the
    # type attribute carries the stereotype — through an element *name*
    # equal to a defined type
    reachable: Set[str] = set()
    frontier = [e.type for e in doc.top_level if e.type in defined]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        try:
            ctype = doc.complex_type(name)
        except Exception:  # undefined: already reported above
            continue
        for child in ctype.children:
            for referenced in (child.type, child.name):
                if referenced in defined and referenced not in reachable:
                    frontier.append(referenced)
    for name in sorted(defined - reachable):
        report.add(
            f"complexType {name!r} is unreachable from any top-level element",
            kind=KIND_ORPHAN_TYPE,
            type_name=name,
        )
    return report


def assert_scheme_valid(doc: SchemaDocument) -> None:
    """Raise :class:`~repro.errors.XMLFormatError` on any integrity problem."""
    from repro.errors import XMLFormatError

    report = check_scheme(doc)
    if not report.ok:
        raise XMLFormatError(
            "scheme integrity check failed:\n"
            + "\n".join(f"  - {p}" for p in report.problems)
        )
