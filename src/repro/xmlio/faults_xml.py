"""Fault-plan serialization through the M2T scheme dialect.

A :class:`~repro.faults.model.FaultPlan` travels the same road as the PSDF
and PSM models: an XSD-style scheme document whose complex types carry
``<name>_<value>`` Parameter entries (section 3.4's convention).  The plan
becomes one ``FaultPlan`` complex type holding the seed plus one
``FaultRecordN`` child type per record; :func:`parse_fault_plan_xml`
rebuilds a plan that is *equal* to the original — same seed, same records
in the same order — so an emulation driven by a parsed plan injects the
bit-identical fault sequence (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import XMLFormatError
from repro.faults.model import FaultPlan, FaultRecord
from repro.xmlio.psm_writer import PARAM_TYPE
from repro.xmlio.schema_writer import ComplexType, SchemaDocument

PLAN_TYPE = "FaultPlan"
RECORD_TYPE_PREFIX = "FaultRecord"


def fault_plan_to_scheme(plan: FaultPlan) -> SchemaDocument:
    """Render ``plan`` as a scheme document (M2T direction)."""
    doc = SchemaDocument()
    doc.add_top_level("faultPlan", PLAN_TYPE)
    root = ComplexType(name=PLAN_TYPE)
    root.add(f"seed_{plan.seed}", PARAM_TYPE)
    for i, record in enumerate(plan.records):
        root.add(f"record{i}", f"{RECORD_TYPE_PREFIX}{i}")
    doc.add_complex_type(root)
    for i, record in enumerate(plan.records):
        rtype = ComplexType(name=f"{RECORD_TYPE_PREFIX}{i}")
        rtype.add(f"site_{record.site}", PARAM_TYPE)
        rtype.add(f"kind_{record.kind}", PARAM_TYPE)
        # repr round-trips the float exactly; integral rates stay readable
        rtype.add(f"rate_{record.rate!r}", PARAM_TYPE)
        if record.at_tick is not None:
            rtype.add(f"atTick_{record.at_tick}", PARAM_TYPE)
        if record.ticks:
            rtype.add(f"ticks_{record.ticks}", PARAM_TYPE)
        doc.add_complex_type(rtype)
    return doc


def fault_plan_to_xml(plan: FaultPlan) -> str:
    """Serialize ``plan`` to the XML scheme text."""
    return fault_plan_to_scheme(plan).to_xml()


def parse_fault_plan_xml(text: str) -> FaultPlan:
    """Parse a scheme produced by :func:`fault_plan_to_xml`."""
    doc = SchemaDocument.from_xml(text)
    if not doc.top_level:
        raise XMLFormatError("fault scheme has no top-level element")
    root = doc.complex_type(doc.top_level[0].type)

    seed: Optional[int] = None
    record_types: List[str] = []
    for entry in root.children:
        if entry.type == PARAM_TYPE:
            key, value = _split_param(entry.name, root.name)
            if key == "seed":
                seed = _int(value, "fault plan seed")
        elif entry.type.startswith(RECORD_TYPE_PREFIX):
            record_types.append(entry.type)
        else:
            raise XMLFormatError(
                f"fault plan {root.name!r}: unexpected child type {entry.type!r}"
            )
    if seed is None:
        raise XMLFormatError("fault scheme does not declare a seed parameter")

    records: List[FaultRecord] = []
    for type_name in record_types:
        rtype = doc.complex_type(type_name)
        site: Optional[str] = None
        kind: Optional[str] = None
        rate = 0.0
        at_tick: Optional[int] = None
        ticks = 0
        for entry in rtype.children:
            key, value = _split_param(entry.name, type_name)
            if key == "site":
                site = value
            elif key == "kind":
                kind = value
            elif key == "rate":
                rate = _float(value, f"{type_name} rate")
            elif key == "atTick":
                at_tick = _int(value, f"{type_name} atTick")
            elif key == "ticks":
                ticks = _int(value, f"{type_name} ticks")
            else:
                raise XMLFormatError(
                    f"{type_name}: unknown parameter {key!r}"
                )
        if site is None or kind is None:
            raise XMLFormatError(
                f"{type_name}: record needs site and kind parameters"
            )
        records.append(
            FaultRecord(site=site, kind=kind, rate=rate, at_tick=at_tick, ticks=ticks)
        )
    return FaultPlan(seed=seed, records=tuple(records))


def _split_param(name: str, owner: str) -> "tuple[str, str]":
    # the value may itself contain "_" (e.g. a kind like grant_loss), so
    # split on the FIRST underscore: keys are single camelCase words
    if "_" not in name:
        raise XMLFormatError(
            f"{owner}: parameter entry {name!r} is not '<name>_<value>'"
        )
    key, value = name.split("_", 1)
    return key, value


def _int(value: str, what: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise XMLFormatError(f"{what}: {value!r} is not an integer") from exc


def _float(value: str, what: str) -> float:
    try:
        return float(value)
    except ValueError as exc:
        raise XMLFormatError(f"{what}: {value!r} is not a number") from exc
