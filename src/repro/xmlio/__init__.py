"""Model-to-Text transformation and XML scheme parsing.

The paper exports PSDF and PSM models to XML schemes via MagicDraw's M2T
code-generation engine (section 3.4) and the emulator parses them back
(section 3.5).  This package reproduces both directions:

* :mod:`repro.xmlio.schema_writer` — the generic XSD-style scheme emitter
  (``xs:schema`` / ``xs:complexType`` / ``xs:element`` trees);
* :mod:`repro.xmlio.psdf_writer` / :mod:`repro.xmlio.psm_writer` — the two
  "code engineering sets" of the paper;
* :mod:`repro.xmlio.psdf_parser` / :mod:`repro.xmlio.psm_parser` — the
  emulator-side parsers (the ``DocumentBuilder`` role);
* :mod:`repro.xmlio.codegen` — the code-engineering-set abstraction that
  drives writers and records output locations;
* :mod:`repro.xmlio.roundtrip` — write+parse convenience and fidelity
  checks used by the integration tests.
"""

from repro.xmlio.schema_writer import SchemaDocument, ComplexType, Element
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml
from repro.xmlio.psdf_parser import ParsedPSDF, parse_psdf_xml
from repro.xmlio.psm_parser import ParsedPSM, parse_psm_xml
from repro.xmlio.codegen import CodeEngineeringSet, generate_models
from repro.xmlio.roundtrip import psdf_roundtrip, psm_roundtrip

__all__ = [
    "SchemaDocument",
    "ComplexType",
    "Element",
    "psdf_to_xml",
    "psm_to_xml",
    "ParsedPSDF",
    "parse_psdf_xml",
    "ParsedPSM",
    "parse_psm_xml",
    "CodeEngineeringSet",
    "generate_models",
    "psdf_roundtrip",
    "psm_roundtrip",
]
