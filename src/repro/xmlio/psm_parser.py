"""Emulator-side parsing of PSM XML schemes.

The emulator extracts *"the number of segments in the platform, the number
of border units based on platform geometry, and the placement of application
processes on different segments"* (section 3.5) — plus, in our scheme
dialect, the clock frequencies, package size, arbitration policies and BU
FIFO depths that the writer embedded as ``<name>_<value>`` parameter
entries.  The parse mirrors the paper's procedure: first locate the platform
instance, count its segments and BUs, then walk each segment type to recover
the placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import XMLFormatError
from repro.model.builder import PlatformBuilder
from repro.model.elements import SegBusPlatform
from repro.xmlio.psm_writer import PARAM_TYPE
from repro.xmlio.schema_writer import ComplexType, SchemaDocument


@dataclass
class ParsedPSM:
    """The platform structure the emulator extracts from a PSM scheme."""

    name: str
    package_size: int
    segment_frequencies_mhz: Dict[int, float]
    ca_frequency_mhz: float
    placement: Dict[str, int]
    bu_pairs: Tuple[Tuple[int, int], ...]
    bu_depths: Dict[Tuple[int, int], int] = field(default_factory=dict)
    sa_policies: Dict[int, str] = field(default_factory=dict)
    masters_of: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    slaves_of: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def segment_count(self) -> int:
        return len(self.segment_frequencies_mhz)

    def to_platform(self) -> SegBusPlatform:
        """Rebuild the :class:`SegBusPlatform` object model."""
        builder = PlatformBuilder(name=self.name, package_size=self.package_size)
        for index in sorted(self.segment_frequencies_mhz):
            builder.segment(frequency_mhz=self.segment_frequencies_mhz[index], index=index)
        builder.central_arbiter(frequency_mhz=self.ca_frequency_mhz)
        for left, right in self.bu_pairs:
            builder.border_unit(left, right, depth=self.bu_depths.get((left, right), 1))
        builder.place_all(self.placement)
        for index, policy in self.sa_policies.items():
            builder.arbitration_policy(index, policy)
        platform = builder.build()
        for process, names in self.masters_of.items():
            fu = platform.fu_of_process(process)
            for name in names:
                fu.add_master(name)
        for process, names in self.slaves_of.items():
            fu = platform.fu_of_process(process)
            for name in names:
                fu.add_slave(name)
        return platform


def _split_param(name: str, owner: str) -> Tuple[str, str]:
    if "_" not in name:
        raise XMLFormatError(
            f"{owner}: parameter entry {name!r} is not '<name>_<value>'"
        )
    key, value = name.rsplit("_", 1)
    return key, value


def parse_psm_xml(text: str) -> ParsedPSM:
    """Parse the XML scheme produced by :func:`repro.xmlio.psm_writer.psm_to_xml`."""
    doc = SchemaDocument.from_xml(text)
    from repro.xmlio.schema_check import assert_scheme_valid

    assert_scheme_valid(doc)
    if not doc.top_level:
        raise XMLFormatError("PSM scheme has no top-level element")
    root_type_name = doc.top_level[0].type
    root = doc.complex_type(root_type_name)

    package_size: Optional[int] = None
    segment_types: List[str] = []
    bu_pairs: List[Tuple[int, int]] = []
    has_ca = False
    for entry in root.children:
        if entry.type == PARAM_TYPE:
            key, value = _split_param(entry.name, root_type_name)
            if key == "packageSize":
                package_size = _int(value, "packageSize")
        elif entry.type.startswith("Segment"):
            segment_types.append(entry.type)
        elif entry.type == "CA":
            has_ca = True
        elif entry.type.startswith("BU"):
            bu_pairs.append(_bu_pair(entry.type))
        else:
            raise XMLFormatError(
                f"platform {root_type_name!r}: unexpected child type {entry.type!r}"
            )
    if package_size is None:
        raise XMLFormatError("PSM scheme does not declare a packageSize parameter")
    if not has_ca:
        raise XMLFormatError("PSM scheme declares no CA element")

    ca_type = doc.complex_type("CA")
    ca_freq: Optional[float] = None
    for entry in ca_type.children:
        key, value = _split_param(entry.name, "CA")
        if key == "frequencyMHz":
            ca_freq = _float(value, "CA frequencyMHz")
    if ca_freq is None:
        raise XMLFormatError("CA type declares no frequencyMHz parameter")

    segment_frequencies: Dict[int, float] = {}
    placement: Dict[str, int] = {}
    sa_policies: Dict[int, str] = {}
    masters_of: Dict[str, Tuple[str, ...]] = {}
    slaves_of: Dict[str, Tuple[str, ...]] = {}
    for type_name in segment_types:
        index = _segment_index(type_name)
        seg_type = doc.complex_type(type_name)
        freq: Optional[float] = None
        for entry in seg_type.children:
            if entry.type == PARAM_TYPE:
                key, value = _split_param(entry.name, type_name)
                if key == "frequencyMHz":
                    freq = _float(value, f"{type_name} frequencyMHz")
            elif entry.type.startswith("SA"):
                sa_type = doc.complex_type(entry.type)
                for sa_entry in sa_type.children:
                    key, value = _split_param(sa_entry.name, entry.type)
                    if key == "policy":
                        sa_policies[index] = value
            elif entry.type.startswith("BU"):
                continue  # adjacency is recovered from the platform root
            else:
                process = entry.type
                if process in placement:
                    raise XMLFormatError(
                        f"process {process!r} placed on both segment "
                        f"{placement[process]} and {index}"
                    )
                placement[process] = index
                masters, slaves = _fu_endpoints(doc.complex_type(process))
                if masters:
                    masters_of[process] = masters
                if slaves:
                    slaves_of[process] = slaves
        if freq is None:
            raise XMLFormatError(f"{type_name} declares no frequencyMHz parameter")
        segment_frequencies[index] = freq

    bu_depths: Dict[Tuple[int, int], int] = {}
    for left, right in bu_pairs:
        bu_type = doc.complex_type(f"BU{left}{right}")
        for entry in bu_type.children:
            key, value = _split_param(entry.name, bu_type.name)
            if key == "depth":
                bu_depths[(left, right)] = _int(value, "BU depth")

    return ParsedPSM(
        name=root_type_name,
        package_size=package_size,
        segment_frequencies_mhz=segment_frequencies,
        ca_frequency_mhz=ca_freq,
        placement=placement,
        bu_pairs=tuple(sorted(bu_pairs)),
        bu_depths=bu_depths,
        sa_policies=sa_policies,
        masters_of=masters_of,
        slaves_of=slaves_of,
    )


def _fu_endpoints(fu_type: ComplexType) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    masters: List[str] = []
    slaves: List[str] = []
    for entry in fu_type.children:
        if entry.type == "Master":
            masters.append(entry.name)
        elif entry.type == "Slave":
            slaves.append(entry.name)
        else:
            raise XMLFormatError(
                f"FU type {fu_type.name!r}: unexpected child type {entry.type!r}"
            )
    return tuple(masters), tuple(slaves)


def _segment_index(type_name: str) -> int:
    digits = type_name[len("Segment"):]
    if not digits.isdigit():
        raise XMLFormatError(f"cannot extract segment index from {type_name!r}")
    return int(digits)


def _bu_pair(type_name: str) -> Tuple[int, int]:
    digits = type_name[len("BU"):]
    if len(digits) < 2 or not digits.isdigit():
        raise XMLFormatError(f"cannot extract BU pair from {type_name!r}")
    # linear-topology BUs bridge adjacent segments; split so right = left + 1
    for cut in range(1, len(digits)):
        left, right = int(digits[:cut]), int(digits[cut:])
        if right == left + 1:
            return left, right
    raise XMLFormatError(f"BU type {type_name!r} does not bridge adjacent segments")


def _int(value: str, what: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise XMLFormatError(f"{what}: {value!r} is not an integer") from exc


def _float(value: str, what: str) -> float:
    try:
        return float(value)
    except ValueError as exc:
        raise XMLFormatError(f"{what}: {value!r} is not a number") from exc
