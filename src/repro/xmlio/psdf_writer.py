"""M2T transformation of PSDF models into XML schemes.

One ``xs:complexType`` per process, named after the process; each outgoing
flow becomes a child ``xs:element`` whose ``name`` encodes the transfer in
the underscore format of section 3.5::

    <xs:complexType name="P0">
      <xs:all>
        <xs:element name="P1_576_1_250" type="Transfer"/>
        ...

The target process, the number of data items, the sequencing order and the
per-package tick count are separated by ``_``; the ``type`` attribute is the
fixed marker ``Transfer``.  Process stereotype and total process count are
carried by a header complex type named after the graph, so the parser can
recover the full model without out-of-band information.
"""

from __future__ import annotations

from repro.psdf.graph import PSDFGraph
from repro.xmlio.schema_writer import ComplexType, SchemaDocument

#: ``type`` attribute of flow elements.
TRANSFER_TYPE = "Transfer"
#: ``type`` attribute prefix for process references in the header.
PROCESS_TYPE_PREFIX = ""


def psdf_to_schema(graph: PSDFGraph, package_size: int) -> SchemaDocument:
    """Build the scheme document for ``graph`` at ``package_size``.

    The package size is needed because flow element names embed the
    per-package tick count ``C`` evaluated at the platform's package size
    (the paper's emulator reads the same number).
    """
    doc = SchemaDocument()
    header = ComplexType(name=graph.name)
    for proc in graph:
        header.add(proc.name, proc.stereotype)
    doc.add_complex_type(header)
    doc.add_top_level(graph.name.lower(), graph.name)
    for proc in graph:
        ctype = ComplexType(name=proc.name)
        for flow in graph.outgoing(proc.name):
            ctype.add(flow.element_name(package_size), TRANSFER_TYPE)
        doc.add_complex_type(ctype)
    return doc


def psdf_to_xml(graph: PSDFGraph, package_size: int) -> str:
    """Serialize ``graph`` to its XML scheme string (the M2T output)."""
    return psdf_to_schema(graph, package_size).to_xml()
