"""M2T transformation of PSM models into XML schemes.

Follows the paper's PSM snippet (section 3.4): the platform complex type
lists its segments, the CA and the BUs; each segment complex type lists its
left/right BUs, the mapped processes and its arbiter::

    <xs:complexType name="SBP">
      <xs:all>
        <xs:element name="segment1" type="Segment1"/>
        ...
        <xs:element name="ca" type="CA"/>
        <xs:element name="bu12" type="BU12"/>
      </xs:all>
    </xs:complexType>
    <xs:complexType name="Segment1">
      <xs:all>
        <xs:element name="buRight" type="BU23"/>
        <xs:element name="p5" type="P5"/>
        ...
        <xs:element name="arbiter" type="SA1"/>
      </xs:all>
    </xs:complexType>

Numeric platform parameters (clock frequencies, package size, FIFO depths)
are emitted as dedicated complex types (``CA``, ``SAx``, ``BUxy``) whose
children carry ``<name>_<value>`` entries, keeping the whole configuration
inside the scheme.
"""

from __future__ import annotations

from repro.model.elements import SegBusPlatform
from repro.xmlio.schema_writer import ComplexType, SchemaDocument

PARAM_TYPE = "Parameter"
PROCESS_REF_TYPE_PREFIX = ""


def _bu_type_name(left: int, right: int) -> str:
    return f"BU{left}{right}"


def psm_to_schema(platform: SegBusPlatform) -> SchemaDocument:
    """Build the scheme document for a platform model."""
    doc = SchemaDocument()
    root = ComplexType(name=platform.name)
    for segment in platform.segments:
        root.add(f"segment{segment.index}", f"Segment{segment.index}")
    root.add("ca", "CA")
    for bu in platform.border_units:
        type_name = _bu_type_name(bu.left, bu.right)
        root.add(type_name.lower(), type_name)
    root.add(f"packageSize_{platform.package_size}", PARAM_TYPE)
    doc.add_complex_type(root)
    doc.add_top_level(platform.name.lower(), platform.name)

    ca = platform.central_arbiter
    ca_type = ComplexType(name="CA")
    if ca is not None:
        ca_type.add(f"frequencyMHz_{_format_mhz(ca.frequency.mhz)}", PARAM_TYPE)
    doc.add_complex_type(ca_type)

    for segment in platform.segments:
        seg_type = ComplexType(name=f"Segment{segment.index}")
        for bu in platform.border_units:
            if bu.right == segment.index:
                seg_type.add("buLeft", _bu_type_name(bu.left, bu.right))
            if bu.left == segment.index:
                seg_type.add("buRight", _bu_type_name(bu.left, bu.right))
        for fu in segment.fus:
            seg_type.add(fu.process.lower(), fu.process)
        seg_type.add("arbiter", f"SA{segment.index}")
        seg_type.add(
            f"frequencyMHz_{_format_mhz(segment.frequency.mhz)}", PARAM_TYPE
        )
        doc.add_complex_type(seg_type)

        sa_type = ComplexType(name=f"SA{segment.index}")
        sa_type.add(f"policy_{segment.arbiter.policy}", PARAM_TYPE)
        doc.add_complex_type(sa_type)

        for fu in segment.fus:
            fu_type = ComplexType(name=fu.process)
            for master in fu.masters:
                fu_type.add(master.name, "Master")
            for slave in fu.slaves:
                fu_type.add(slave.name, "Slave")
            doc.add_complex_type(fu_type)

    for bu in platform.border_units:
        bu_type = ComplexType(name=_bu_type_name(bu.left, bu.right))
        bu_type.add(f"depth_{bu.depth}", PARAM_TYPE)
        doc.add_complex_type(bu_type)

    return doc


def _format_mhz(mhz: float) -> str:
    """Frequency formatting that survives the underscore codec losslessly.

    Values use a dot decimal separator only if needed; the parser accepts
    both integral and fractional forms.
    """
    if float(mhz).is_integer():
        return str(int(mhz))
    return repr(float(mhz))


def psm_to_xml(platform: SegBusPlatform) -> str:
    """Serialize ``platform`` to its XML scheme string (the M2T output)."""
    return psm_to_schema(platform).to_xml()
