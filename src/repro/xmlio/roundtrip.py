"""Write-then-parse round trips with fidelity checks.

Used by integration tests and by the emulator facade when it is fed model
objects instead of XML files: the facade *always* routes through the XML
schemes (section 3.2's design flow), so any information the schemes cannot
carry is caught here rather than silently diverging.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import XMLFormatError
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph
from repro.xmlio.psdf_parser import ParsedPSDF, parse_psdf_xml
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_parser import ParsedPSM, parse_psm_xml
from repro.xmlio.psm_writer import psm_to_xml


def psdf_roundtrip(graph: PSDFGraph, package_size: int) -> ParsedPSDF:
    """Serialize and re-parse ``graph``; verify structural fidelity.

    The per-package tick count is compared at ``package_size`` because the
    scheme stores ``C`` evaluated at the platform's package size.
    """
    parsed = parse_psdf_xml(psdf_to_xml(graph, package_size))
    if set(parsed.to_graph().process_names) != set(graph.process_names):
        raise XMLFormatError("PSDF roundtrip lost processes")
    original = {
        (f.source, f.target, f.order): (f.data_items, f.ticks_per_package(package_size))
        for f in graph.flows
    }
    recovered = {
        (f.source, f.target, f.order): (f.data_items, f.ticks_per_package(package_size))
        for f in parsed.flows
    }
    if original != recovered:
        raise XMLFormatError(
            "PSDF roundtrip changed flows: "
            f"lost={sorted(set(original) - set(recovered))} "
            f"gained={sorted(set(recovered) - set(original))}"
        )
    return parsed


def psm_roundtrip(platform: SegBusPlatform) -> ParsedPSM:
    """Serialize and re-parse ``platform``; verify structural fidelity."""
    parsed = parse_psm_xml(psm_to_xml(platform))
    if parsed.package_size != platform.package_size:
        raise XMLFormatError("PSM roundtrip changed package size")
    if parsed.placement != platform.process_placement():
        raise XMLFormatError("PSM roundtrip changed process placement")
    expected_pairs = tuple(sorted((bu.left, bu.right) for bu in platform.border_units))
    if parsed.bu_pairs != expected_pairs:
        raise XMLFormatError("PSM roundtrip changed BU adjacency")
    for segment in platform.segments:
        parsed_mhz = parsed.segment_frequencies_mhz.get(segment.index)
        if parsed_mhz is None or abs(parsed_mhz - segment.frequency.mhz) > 1e-9:
            raise XMLFormatError(
                f"PSM roundtrip changed segment {segment.index} frequency"
            )
    ca = platform.central_arbiter
    if ca is not None and abs(parsed.ca_frequency_mhz - ca.frequency.mhz) > 1e-9:
        raise XMLFormatError("PSM roundtrip changed CA frequency")
    return parsed


def roundtrip_pair(
    graph: PSDFGraph, platform: SegBusPlatform
) -> Tuple[ParsedPSDF, ParsedPSM]:
    """Round-trip application and platform together (the emulation inputs)."""
    return psdf_roundtrip(graph, platform.package_size), psm_roundtrip(platform)
