"""XSD-style scheme document model and serializer.

The generated XML *"consists of a schema element and a number of
sub-elements, in the form of complexType and element types; each complex
type represents a platform element or application component"* (section 3.4).
This module models exactly that subset of XML Schema:

* a :class:`SchemaDocument` holding top-level :class:`ComplexType` entries
  and optional top-level :class:`Element` declarations;
* each complex type contains an ``xs:all`` group of :class:`Element`
  children (``name`` + ``type`` attributes), following the paper's PSM
  snippet.

Serialization uses :mod:`xml.etree.ElementTree` with the conventional
``xs`` prefix bound to the XML Schema namespace.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List
from xml.etree import ElementTree as ET

from repro.errors import XMLFormatError

XS_NS = "http://www.w3.org/2001/XMLSchema"
_XS = f"{{{XS_NS}}}"


@dataclass(frozen=True)
class Element:
    """An ``xs:element`` declaration: ``<xs:element name=... type=.../>``."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if not self.name or not self.type:
            raise XMLFormatError(
                f"xs:element needs name and type, got name={self.name!r} "
                f"type={self.type!r}"
            )


@dataclass
class ComplexType:
    """An ``xs:complexType`` with an ``xs:all`` group of child elements."""

    name: str
    children: List[Element] = field(default_factory=list)

    def add(self, name: str, type_: str) -> "ComplexType":
        self.children.append(Element(name=name, type=type_))
        return self

    def child(self, name: str) -> Element:
        for element in self.children:
            if element.name == name:
                return element
        raise XMLFormatError(f"complexType {self.name!r} has no child {name!r}")


@dataclass
class SchemaDocument:
    """A full scheme: top-level elements plus the complex-type definitions."""

    top_level: List[Element] = field(default_factory=list)
    complex_types: List[ComplexType] = field(default_factory=list)

    def add_top_level(self, name: str, type_: str) -> "SchemaDocument":
        self.top_level.append(Element(name=name, type=type_))
        return self

    def add_complex_type(self, ctype: ComplexType) -> ComplexType:
        if any(existing.name == ctype.name for existing in self.complex_types):
            raise XMLFormatError(f"duplicate complexType {ctype.name!r}")
        self.complex_types.append(ctype)
        return ctype

    def complex_type(self, name: str) -> ComplexType:
        for ctype in self.complex_types:
            if ctype.name == name:
                return ctype
        raise XMLFormatError(f"scheme has no complexType {name!r}")

    def type_names(self) -> List[str]:
        return [c.name for c in self.complex_types]

    # -- serialization -----------------------------------------------------------

    def to_xml(self) -> str:
        """Serialize to a UTF-8 XML string with the ``xs`` prefix."""
        ET.register_namespace("xs", XS_NS)
        root = ET.Element(f"{_XS}schema")
        for element in self.top_level:
            ET.SubElement(
                root, f"{_XS}element", {"name": element.name, "type": element.type}
            )
        for ctype in self.complex_types:
            ct_el = ET.SubElement(root, f"{_XS}complexType", {"name": ctype.name})
            group = ET.SubElement(ct_el, f"{_XS}all")
            for element in ctype.children:
                ET.SubElement(
                    group,
                    f"{_XS}element",
                    {"name": element.name, "type": element.type},
                )
        _indent(root)
        buffer = io.BytesIO()
        ET.ElementTree(root).write(buffer, encoding="utf-8", xml_declaration=True)
        return buffer.getvalue().decode("utf-8")

    @classmethod
    def from_xml(cls, text: str) -> "SchemaDocument":
        """Parse a scheme produced by :meth:`to_xml` (or the paper's tool)."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise XMLFormatError(f"not well-formed XML: {exc}") from exc
        if root.tag != f"{_XS}schema":
            raise XMLFormatError(
                f"root element is {root.tag!r}, expected xs:schema in {XS_NS!r}"
            )
        doc = cls()
        for child in root:
            if child.tag == f"{_XS}element":
                doc.add_top_level(
                    _required_attr(child, "name"), _required_attr(child, "type")
                )
            elif child.tag == f"{_XS}complexType":
                ctype = ComplexType(name=_required_attr(child, "name"))
                for group in child:
                    if group.tag not in (f"{_XS}all", f"{_XS}sequence"):
                        raise XMLFormatError(
                            f"complexType {ctype.name!r}: unexpected child "
                            f"{group.tag!r}"
                        )
                    for element in group:
                        if element.tag != f"{_XS}element":
                            raise XMLFormatError(
                                f"complexType {ctype.name!r}: unexpected group "
                                f"member {element.tag!r}"
                            )
                        ctype.add(
                            _required_attr(element, "name"),
                            _required_attr(element, "type"),
                        )
                doc.add_complex_type(ctype)
            else:
                raise XMLFormatError(f"unexpected top-level element {child.tag!r}")
        return doc


def _required_attr(node: ET.Element, attr: str) -> str:
    value = node.get(attr)
    if not value:
        raise XMLFormatError(f"element {node.tag!r} missing required {attr!r} attribute")
    return value


def _indent(node: ET.Element, level: int = 0) -> None:
    """Pretty-print indentation (ElementTree.indent exists only on 3.9+)."""
    pad = "\n" + "  " * level
    if len(node):
        if not (node.text or "").strip():
            node.text = pad + "  "
        for child in node:
            _indent(child, level + 1)
            if not (child.tail or "").strip():
                child.tail = pad + "  "
        last = node[-1]
        if not (last.tail or "").strip():
            last.tail = pad
    elif level and not (node.tail or "").strip():
        node.tail = pad
