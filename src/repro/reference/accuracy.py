"""Estimated-vs-actual accuracy comparison (paper section 4's experiments).

The paper quotes accuracy as ``estimated / actual`` (95 % for s = 36, ~93 %
for s = 18, just below 95 % for the moved-P9 configuration), with the
estimate always below the actual time.  :func:`compare_estimate_to_reference`
runs both fidelities on one configuration and packages the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import SegBusEmulator
from repro.emulator.report import EmulationReport
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph
from repro.reference.refsim import ReferenceSimulator


@dataclass(frozen=True)
class AccuracyResult:
    """One row of the accuracy table."""

    label: str
    estimated_report: EmulationReport
    actual_report: EmulationReport

    @property
    def estimated_us(self) -> float:
        return self.estimated_report.execution_time_us

    @property
    def actual_us(self) -> float:
        return self.actual_report.execution_time_us

    @property
    def accuracy(self) -> float:
        """``estimated / actual`` — the paper's precision figure."""
        return self.estimated_us / self.actual_us

    @property
    def error(self) -> float:
        """Relative estimation error ``(actual - estimated) / actual``."""
        return 1.0 - self.accuracy

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.label}: estimated {self.estimated_us:.2f} us, "
            f"actual {self.actual_us:.2f} us, accuracy {self.accuracy:.1%}"
        )


def compare_estimate_to_reference(
    application: PSDFGraph,
    platform: SegBusPlatform,
    label: str = "experiment",
    emulator_config: Optional[EmulationConfig] = None,
    reference_config: Optional[EmulationConfig] = None,
) -> AccuracyResult:
    """Run the emulator and the reference simulator on one configuration."""
    estimated = SegBusEmulator.from_models(
        application, platform, config=emulator_config or EmulationConfig.emulator()
    ).run()
    actual = ReferenceSimulator(config=reference_config).execute(
        application, platform
    )
    return AccuracyResult(
        label=label, estimated_report=estimated, actual_report=actual
    )
