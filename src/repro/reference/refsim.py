"""The reference simulator: the emulator kernel at full timing fidelity.

Runs the identical protocol model with
:meth:`repro.emulator.config.EmulationConfig.reference` — the configuration
that enables every timing factor the paper's emulator skips (section 3.6's
"we didn't include ..." list).  Its execution time stands in for the
"actual execution time" measured on the FPGA platform in section 4.
"""

from __future__ import annotations

from typing import Optional

from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import SegBusEmulator
from repro.emulator.report import EmulationReport
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph


class ReferenceSimulator:
    """High-fidelity runs standing in for the real SegBus platform.

    ``config`` defaults to :meth:`EmulationConfig.reference`; pass a custom
    one to study the sensitivity of individual penalty knobs (benchmark A3).
    """

    def __init__(self, config: Optional[EmulationConfig] = None) -> None:
        self.config = config or EmulationConfig.reference()

    def execute(
        self, application: PSDFGraph, platform: SegBusPlatform
    ) -> EmulationReport:
        """Run the application at reference fidelity and return the report."""
        return SegBusEmulator.from_models(
            application, platform, config=self.config
        ).run()


def reference_execute(
    application: PSDFGraph, platform: SegBusPlatform
) -> EmulationReport:
    """One-shot convenience with the default reference configuration."""
    return ReferenceSimulator().execute(application, platform)
