"""The "real platform" substitute and estimated-vs-actual accuracy analysis.

The paper compares the emulator's estimates against execution on the real
SegBus FPGA platform (93–95 % accuracy).  We have no FPGA; per the
substitution rule (DESIGN.md section 3) the reference simulator is the same
discrete-event kernel with the timing factors the emulator deliberately
skips switched on — clock-domain synchronization at the BUs, SA granting
activity, CA decision latency, bus turnaround and slave acknowledgement.
The paper attributes its estimation error exactly to these factors, so the
substitution reproduces both the magnitude and the direction of the gap
(estimate below actual, error shrinking with larger packages).
"""

from repro.reference.refsim import ReferenceSimulator, reference_execute
from repro.reference.accuracy import AccuracyResult, compare_estimate_to_reference

__all__ = [
    "ReferenceSimulator",
    "reference_execute",
    "AccuracyResult",
    "compare_estimate_to_reference",
]
