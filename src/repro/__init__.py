"""repro — reproduction of *A Performance Estimation Technique for the
SegBus Distributed Architecture* (Niazi, Seceleanu, Tenhunen; ICPP 2010 /
TUCS TR 980).

The library covers the paper's full flow (Fig. 3):

1. model the application as a **PSDF** graph (:mod:`repro.psdf`);
2. model the **platform** and map the application onto segments to obtain
   the PSM (:mod:`repro.model`), optionally letting the **PlaceTool**
   substitute (:mod:`repro.placement`) choose the allocation;
3. transform both models into **XML schemes** (:mod:`repro.xmlio`);
4. feed the schemes to the **emulator** (:mod:`repro.emulator`) and read
   the performance report;
5. compare against the **reference simulator** (:mod:`repro.reference`) —
   our stand-in for the real FPGA platform — and analyze bottlenecks and
   design alternatives (:mod:`repro.analysis`).

Quickstart::

    from repro import emulate, mp3_decoder_psdf, paper_platform

    report = emulate(mp3_decoder_psdf(), paper_platform(segment_count=3))
    print(report.format_listing())
"""

from repro.errors import (
    ConstraintViolation,
    DeadlockError,
    EmulationError,
    MappingError,
    ModelError,
    PlacementError,
    PSDFError,
    SegBusError,
    XMLFormatError,
)
from repro.units import Frequency
from repro.psdf import (
    FlowCost,
    PacketFlow,
    Process,
    ProcessKind,
    PSDFGraph,
    CommunicationMatrix,
    build_communication_matrix,
)
from repro.model import (
    Allocation,
    PlatformBuilder,
    PlatformSpecificModel,
    SegBusPlatform,
    map_application,
    validate_platform,
)
from repro.xmlio import (
    parse_psdf_xml,
    parse_psm_xml,
    psdf_to_xml,
    psm_to_xml,
)
from repro.emulator import (
    EmulationConfig,
    EmulationReport,
    SegBusEmulator,
    emulate,
)
from repro.reference import (
    AccuracyResult,
    ReferenceSimulator,
    compare_estimate_to_reference,
)
from repro.placement import PlaceTool, PlacementResult
from repro.apps import (
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "SegBusError",
    "PSDFError",
    "ModelError",
    "ConstraintViolation",
    "MappingError",
    "XMLFormatError",
    "EmulationError",
    "DeadlockError",
    "PlacementError",
    # units
    "Frequency",
    # psdf
    "FlowCost",
    "PacketFlow",
    "Process",
    "ProcessKind",
    "PSDFGraph",
    "CommunicationMatrix",
    "build_communication_matrix",
    # model
    "Allocation",
    "PlatformBuilder",
    "PlatformSpecificModel",
    "SegBusPlatform",
    "map_application",
    "validate_platform",
    # xml
    "psdf_to_xml",
    "psm_to_xml",
    "parse_psdf_xml",
    "parse_psm_xml",
    # emulator
    "EmulationConfig",
    "EmulationReport",
    "SegBusEmulator",
    "emulate",
    # reference
    "ReferenceSimulator",
    "AccuracyResult",
    "compare_estimate_to_reference",
    # placement
    "PlaceTool",
    "PlacementResult",
    # apps
    "mp3_decoder_psdf",
    "paper_allocation",
    "paper_platform",
    "__version__",
]
