"""Cost model for process-to-segment allocations.

An inter-segment package transfer on the SegBus occupies every segment on
its path (circuit switching, Fig. 2), so the natural cost of placing
communicating processes apart is traffic volume weighted by hop distance::

    cost(placement) = sum over flows  items(src, dst) * |seg(src) - seg(dst)|

A capacity-balance penalty discourages empty or overloaded segments (every
segment needs at least one FU — constraint SEG-FU-1 — and a segment hosting
everything is just a single bus again).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PlacementError
from repro.psdf.matrix import CommunicationMatrix


def placement_cost(
    matrix: CommunicationMatrix,
    placement: Mapping[str, int],
    segment_count: int,
) -> int:
    """Hop-weighted inter-segment traffic of ``placement`` (lower is better)."""
    _check(matrix, placement, segment_count)
    total = 0
    for source, target, items in matrix.pairs():
        total += items * abs(placement[source] - placement[target])
    return total


def balance_penalty(
    placement: Mapping[str, int],
    segment_count: int,
    weight: int = 1,
) -> int:
    """Quadratic load-imbalance penalty, 0 for a perfectly even split.

    Computed on process counts; ``weight`` scales it against the traffic
    cost (the default keeps it a mild tie-breaker).
    """
    counts = [0] * segment_count
    for seg in placement.values():
        counts[seg - 1] += 1
    n = len(placement)
    mean = n / segment_count
    return int(weight * sum((c - mean) ** 2 for c in counts))


def objective(
    matrix: CommunicationMatrix,
    placement: Mapping[str, int],
    segment_count: int,
    balance_weight: int = 1,
) -> int:
    """The solvers' full objective: traffic cost plus balance penalty."""
    return placement_cost(matrix, placement, segment_count) + balance_penalty(
        placement, segment_count, weight=balance_weight
    )


def _check(
    matrix: CommunicationMatrix,
    placement: Mapping[str, int],
    segment_count: int,
) -> None:
    if segment_count < 1:
        raise PlacementError(f"segment count must be >= 1, got {segment_count}")
    missing = sorted(set(matrix.names) - set(placement))
    if missing:
        raise PlacementError(f"placement misses processes: {', '.join(missing)}")
    for process, seg in placement.items():
        if not 1 <= seg <= segment_count:
            raise PlacementError(
                f"process {process!r} placed on segment {seg}, "
                f"outside 1..{segment_count}"
            )
