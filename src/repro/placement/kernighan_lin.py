"""Kernighan–Lin-style local refinement of a placement.

Repeatedly tries single-process moves and pairwise swaps between segments,
accepting any change that lowers the full objective, until a fixed point
(or an iteration cap).  Preserves feasibility: a move never empties a
segment.  Deterministic scan order.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.placement.cost import objective
from repro.psdf.matrix import CommunicationMatrix


def refine_placement(
    matrix: CommunicationMatrix,
    placement: Mapping[str, int],
    segment_count: int,
    balance_weight: int = 1,
    max_rounds: int = 50,
) -> Dict[str, int]:
    """Hill-climb ``placement`` with moves and swaps; returns a new dict."""
    current: Dict[str, int] = dict(placement)
    names = sorted(current)
    cost = objective(matrix, current, segment_count, balance_weight)
    for _ in range(max_rounds):
        improved = False
        # single moves
        for name in names:
            home = current[name]
            if sum(1 for s in current.values() if s == home) <= 1:
                continue  # would empty its segment
            for seg in range(1, segment_count + 1):
                if seg == home:
                    continue
                current[name] = seg
                trial = objective(matrix, current, segment_count, balance_weight)
                if trial < cost:
                    cost = trial
                    home = seg
                    improved = True
                else:
                    current[name] = home
        # pairwise swaps
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if current[a] == current[b]:
                    continue
                current[a], current[b] = current[b], current[a]
                trial = objective(matrix, current, segment_count, balance_weight)
                if trial < cost:
                    cost = trial
                    improved = True
                else:
                    current[a], current[b] = current[b], current[a]
        if not improved:
            break
    return current
