"""Greedy traffic-affinity allocation.

Seeds each segment with one of the heaviest-communicating processes (spread
apart), then repeatedly assigns the unplaced process with the strongest
traffic affinity to an already-populated segment, subject to a soft size
cap.  Deterministic: ties break on process name.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import PlacementError
from repro.psdf.matrix import CommunicationMatrix


def greedy_placement(
    matrix: CommunicationMatrix,
    segment_count: int,
    max_per_segment: Optional[int] = None,
) -> Dict[str, int]:
    """A feasible, deterministic, usually-good placement in O(n^2 log n).

    ``max_per_segment`` defaults to ``ceil(n / segments) + 1`` — loose
    enough to allow skew toward hot segments, tight enough to keep every
    segment non-empty.
    """
    names = list(matrix.names)
    n = len(names)
    if segment_count < 1:
        raise PlacementError(f"segment count must be >= 1, got {segment_count}")
    if segment_count > n:
        raise PlacementError(
            f"{segment_count} segments cannot all be non-empty with only "
            f"{n} processes"
        )
    if max_per_segment is None:
        max_per_segment = -(-n // segment_count) + 1
    if max_per_segment * segment_count < n:
        raise PlacementError(
            f"cap {max_per_segment} per segment cannot fit {n} processes "
            f"on {segment_count} segments"
        )

    def traffic(a: str, b: str) -> int:
        return matrix.items_between(a, b) + matrix.items_between(b, a)

    total_traffic = {
        name: sum(traffic(name, other) for other in names if other != name)
        for name in names
    }
    # Seeds: the heaviest communicators, one per segment.
    seeds = sorted(names, key=lambda p: (-total_traffic[p], p))[:segment_count]
    placement: Dict[str, int] = {}
    loads: List[int] = [0] * segment_count
    for offset, seed in enumerate(seeds):
        placement[seed] = offset + 1
        loads[offset] += 1

    unplaced: Set[str] = set(names) - set(seeds)
    while unplaced:
        # Pick the unplaced process with the strongest pull anywhere.
        best_proc: Optional[str] = None
        best_seg: Optional[int] = None
        best_pull = -1
        for proc in sorted(unplaced):
            for seg in range(1, segment_count + 1):
                if loads[seg - 1] >= max_per_segment:
                    continue
                pull = sum(
                    traffic(proc, other)
                    for other, placed_seg in placement.items()
                    if placed_seg == seg
                )
                # prefer the least-loaded segment on ties for balance
                key = (pull, -loads[seg - 1])
                if best_proc is None or key > (best_pull, -(loads[best_seg - 1])):
                    best_proc, best_seg, best_pull = proc, seg, pull
        assert best_proc is not None and best_seg is not None
        placement[best_proc] = best_seg
        loads[best_seg - 1] += 1
        unplaced.remove(best_proc)
    return placement
