"""The PlaceTool facade: pick a solver, return an allocation.

Strategy: exact search when the instance is small enough, otherwise greedy
construction refined by Kernighan–Lin, optionally polished by simulated
annealing.  The result carries the cost breakdown so callers can compare
against hand-made allocations (benchmark A2 compares PlaceTool output with
the paper's Fig. 9 allocation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.model.mapping import Allocation
from repro.placement.annealing import annealed_placement
from repro.placement.cost import balance_penalty, objective, placement_cost
from repro.placement.exhaustive import exhaustive_placement
from repro.placement.greedy import greedy_placement
from repro.placement.kernighan_lin import refine_placement
from repro.psdf.graph import PSDFGraph
from repro.psdf.matrix import CommunicationMatrix, build_communication_matrix


@dataclass(frozen=True)
class PlacementResult:
    """A solved allocation with its cost breakdown."""

    placement: Dict[str, int]
    segment_count: int
    traffic_cost: int
    balance_cost: int
    solver: str

    @property
    def total_cost(self) -> int:
        return self.traffic_cost + self.balance_cost

    def allocation(self) -> Allocation:
        return Allocation.from_placement(self.placement)


class PlaceTool:
    """Find a device allocation given the platform specifics (section 3.5)."""

    def __init__(
        self,
        balance_weight: int = 1,
        exact_budget: int = 60_000,
        anneal: bool = True,
        seed: int = 0,
    ) -> None:
        self.balance_weight = balance_weight
        self.exact_budget = exact_budget
        self.anneal = anneal
        self.seed = seed

    def solve_matrix(
        self, matrix: CommunicationMatrix, segment_count: int
    ) -> PlacementResult:
        """Allocate the matrix's processes onto ``segment_count`` segments."""
        size = segment_count ** len(matrix.names)
        if size <= self.exact_budget:
            placement = exhaustive_placement(
                matrix,
                segment_count,
                balance_weight=self.balance_weight,
                budget=self.exact_budget,
            )
            solver = "exhaustive"
        else:
            placement = greedy_placement(matrix, segment_count)
            placement = refine_placement(
                matrix,
                placement,
                segment_count,
                balance_weight=self.balance_weight,
            )
            solver = "greedy+kl"
            if self.anneal:
                placement = annealed_placement(
                    matrix,
                    segment_count,
                    seed=self.seed,
                    initial=placement,
                    balance_weight=self.balance_weight,
                )
                placement = refine_placement(
                    matrix,
                    placement,
                    segment_count,
                    balance_weight=self.balance_weight,
                )
                solver = "greedy+kl+sa"
        return PlacementResult(
            placement=placement,
            segment_count=segment_count,
            traffic_cost=placement_cost(matrix, placement, segment_count),
            balance_cost=balance_penalty(
                placement, segment_count, weight=self.balance_weight
            ),
            solver=solver,
        )

    def solve(self, application: PSDFGraph, segment_count: int) -> PlacementResult:
        """Allocate an application (builds its communication matrix first)."""
        return self.solve_matrix(
            build_communication_matrix(application), segment_count
        )

    def evaluate(
        self, matrix: CommunicationMatrix, allocation: Allocation
    ) -> PlacementResult:
        """Cost a given allocation (e.g. the paper's Fig. 9) for comparison."""
        placement = allocation.placement()
        return PlacementResult(
            placement=placement,
            segment_count=allocation.segment_count,
            traffic_cost=placement_cost(
                matrix, placement, allocation.segment_count
            ),
            balance_cost=balance_penalty(
                placement, allocation.segment_count, weight=self.balance_weight
            ),
            solver="given",
        )

    def solve_emulated(
        self,
        application: PSDFGraph,
        segment_count: int,
        segment_frequencies_mhz,
        ca_frequency_mhz: float,
        package_size: int = 36,
        neighbourhood: int = 8,
    ) -> "EmulatedPlacementResult":
        """Pick the allocation by *emulated* execution time, not the proxy.

        The traffic objective is a proxy for performance; this method uses
        it only as a filter: solve for the best-cost placement, generate its
        single-move neighbourhood (bounded to the ``neighbourhood`` cheapest
        candidates by objective), emulate every candidate and return the one
        with the shortest execution time.  Ground truth at ~1 ms per
        candidate (benchmark A9's throughput numbers).
        """
        from repro.emulator.emulator import emulate  # local: avoid cycle
        from repro.model.mapping import map_application

        matrix = build_communication_matrix(application)
        base = self.solve_matrix(matrix, segment_count)
        candidates: Dict[tuple, Dict[str, int]] = {}

        def add(placement: Dict[str, int]) -> None:
            if set(placement.values()) != set(range(1, segment_count + 1)):
                return  # would empty a segment
            key = tuple(sorted(placement.items()))
            candidates.setdefault(key, dict(placement))

        add(base.placement)
        neighbours = []
        for process in sorted(base.placement):
            for seg in range(1, segment_count + 1):
                if seg == base.placement[process]:
                    continue
                trial = dict(base.placement)
                trial[process] = seg
                if set(trial.values()) != set(range(1, segment_count + 1)):
                    continue
                neighbours.append(
                    (objective(matrix, trial, segment_count,
                               self.balance_weight), trial)
                )
        neighbours.sort(key=lambda item: item[0])
        for _, trial in neighbours[:neighbourhood]:
            add(trial)

        best_placement: Optional[Dict[str, int]] = None
        best_us = float("inf")
        evaluated = 0
        for placement in candidates.values():
            psm = map_application(
                application,
                Allocation.from_placement(placement),
                segment_frequencies_mhz=segment_frequencies_mhz,
                ca_frequency_mhz=ca_frequency_mhz,
                package_size=package_size,
            )
            report = emulate(application, psm.platform)
            evaluated += 1
            if report.execution_time_us < best_us:
                best_us = report.execution_time_us
                best_placement = placement
        assert best_placement is not None
        return EmulatedPlacementResult(
            placement=best_placement,
            segment_count=segment_count,
            execution_time_us=best_us,
            candidates_evaluated=evaluated,
            proxy_cost=objective(
                matrix, best_placement, segment_count, self.balance_weight
            ),
        )


    def solve_estimated(
        self,
        application: PSDFGraph,
        segment_count: int,
        segment_frequencies_mhz,
        ca_frequency_mhz: float,
        package_size: int = 36,
        neighbourhood: int = 32,
        confirm: int = 4,
    ) -> "EstimatedPlacementResult":
        """Estimator-pruned placement search: rank wide, emulate narrow.

        Where :meth:`solve_emulated` emulates every neighbourhood candidate,
        this method ranks the whole (much larger) single-move neighbourhood
        with the stochastic contention estimator — microseconds per
        candidate — and emulates only the best ``confirm`` survivors to pick
        the winner by ground truth.  Same quality frontier, a fraction of
        the simulation budget (docs/PERFORMANCE.md, "estimate vs emulate").
        """
        from repro.analysis.stochastic import stochastic_estimate
        from repro.emulator.emulator import emulate  # local: avoid cycle
        from repro.emulator.kernel import PlatformSpec
        from repro.model.mapping import map_application

        if confirm < 1:
            raise ValueError(f"confirm must be >= 1, got {confirm}")
        matrix = build_communication_matrix(application)
        base = self.solve_matrix(matrix, segment_count)
        candidates: Dict[tuple, Dict[str, int]] = {}

        def add(placement: Dict[str, int]) -> None:
            if set(placement.values()) != set(range(1, segment_count + 1)):
                return  # would empty a segment
            key = tuple(sorted(placement.items()))
            candidates.setdefault(key, dict(placement))

        add(base.placement)
        neighbours = []
        for process in sorted(base.placement):
            for seg in range(1, segment_count + 1):
                if seg == base.placement[process]:
                    continue
                trial = dict(base.placement)
                trial[process] = seg
                if set(trial.values()) != set(range(1, segment_count + 1)):
                    continue
                neighbours.append(
                    (objective(matrix, trial, segment_count,
                               self.balance_weight), trial)
                )
        neighbours.sort(key=lambda item: item[0])
        for _, trial in neighbours[:neighbourhood]:
            add(trial)

        def mapped_platform(placement: Dict[str, int]):
            return map_application(
                application,
                Allocation.from_placement(placement),
                segment_frequencies_mhz=segment_frequencies_mhz,
                ca_frequency_mhz=ca_frequency_mhz,
                package_size=package_size,
            ).platform

        ranked = []
        for placement in candidates.values():
            platform = mapped_platform(placement)
            estimate = stochastic_estimate(
                application, PlatformSpec.from_platform(platform)
            )
            ranked.append((estimate.execution_time_us, placement, platform))
        ranked.sort(key=lambda item: item[0])

        best_placement: Optional[Dict[str, int]] = None
        best_us = float("inf")
        best_estimated = 0.0
        emulated = 0
        for estimated_us, placement, platform in ranked[:confirm]:
            report = emulate(application, platform)
            emulated += 1
            if report.execution_time_us < best_us:
                best_us = report.execution_time_us
                best_placement = placement
                best_estimated = estimated_us
        assert best_placement is not None
        return EstimatedPlacementResult(
            placement=best_placement,
            segment_count=segment_count,
            execution_time_us=best_us,
            estimated_us=best_estimated,
            candidates_estimated=len(ranked),
            candidates_emulated=emulated,
            proxy_cost=objective(
                matrix, best_placement, segment_count, self.balance_weight
            ),
        )


@dataclass(frozen=True)
class EmulatedPlacementResult:
    """An allocation chosen by emulated execution time."""

    placement: Dict[str, int]
    segment_count: int
    execution_time_us: float
    candidates_evaluated: int
    proxy_cost: int

    def allocation(self) -> Allocation:
        return Allocation.from_placement(self.placement)


@dataclass(frozen=True)
class EstimatedPlacementResult:
    """An allocation chosen by estimator-pruned emulation."""

    placement: Dict[str, int]
    segment_count: int
    #: emulated time of the confirmed winner (ground truth)
    execution_time_us: float
    #: the winner's stochastic pre-estimate
    estimated_us: float
    candidates_estimated: int
    candidates_emulated: int
    proxy_cost: int

    def allocation(self) -> Allocation:
        return Allocation.from_placement(self.placement)
