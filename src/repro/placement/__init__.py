"""Resource allocation: the PlaceTool substitute.

*"Based on the communication matrix, the PlaceTool application finds the
optimal device allocation solution, given the platform specifics (the
number of segments)"* (section 3.5, citing [16]).  We reproduce it with a
hop-weighted inter-segment traffic cost model and four solvers:

* :mod:`repro.placement.exhaustive` — exact search for small instances;
* :mod:`repro.placement.greedy` — traffic-affinity construction;
* :mod:`repro.placement.kernighan_lin` — pairwise-move refinement;
* :mod:`repro.placement.annealing` — seeded simulated annealing.

:class:`repro.placement.placetool.PlaceTool` is the facade choosing a solver
by instance size.
"""

from repro.placement.cost import placement_cost, balance_penalty
from repro.placement.exhaustive import exhaustive_placement
from repro.placement.greedy import greedy_placement
from repro.placement.kernighan_lin import refine_placement
from repro.placement.annealing import annealed_placement
from repro.placement.placetool import (
    EmulatedPlacementResult,
    EstimatedPlacementResult,
    PlaceTool,
    PlacementResult,
)

__all__ = [
    "placement_cost",
    "balance_penalty",
    "exhaustive_placement",
    "greedy_placement",
    "refine_placement",
    "annealed_placement",
    "PlaceTool",
    "PlacementResult",
    "EmulatedPlacementResult",
    "EstimatedPlacementResult",
]
