"""Exact allocation by exhaustive enumeration (small instances only).

Enumerates every surjective assignment of processes to segments (every
segment must host at least one FU) and returns the cheapest under the full
objective.  The search space is ``segments^processes``; the solver refuses
instances beyond a configurable budget instead of silently taking hours.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.errors import PlacementError
from repro.placement.cost import objective
from repro.psdf.matrix import CommunicationMatrix

#: refuse instances whose assignment count exceeds this (pure-Python search:
#: ~60k assignments is a couple of seconds; beyond that the heuristics win)
DEFAULT_BUDGET = 60_000


def exhaustive_placement(
    matrix: CommunicationMatrix,
    segment_count: int,
    balance_weight: int = 1,
    budget: int = DEFAULT_BUDGET,
) -> Dict[str, int]:
    """The provably optimal placement under the objective.

    Raises :class:`~repro.errors.PlacementError` when the instance exceeds
    ``budget`` assignments — use :class:`~repro.placement.placetool.PlaceTool`
    to fall back to heuristics automatically.
    """
    names = matrix.names
    if segment_count < 1:
        raise PlacementError(f"segment count must be >= 1, got {segment_count}")
    if segment_count > len(names):
        raise PlacementError(
            f"{segment_count} segments cannot all be non-empty with only "
            f"{len(names)} processes"
        )
    size = segment_count ** len(names)
    if size > budget:
        raise PlacementError(
            f"exhaustive search over {size} assignments exceeds budget {budget}"
        )
    best: Optional[Dict[str, int]] = None
    best_cost: Optional[int] = None
    for assignment in itertools.product(range(1, segment_count + 1), repeat=len(names)):
        if len(set(assignment)) != segment_count:
            continue  # some segment would be empty (SEG-FU-1)
        placement = dict(zip(names, assignment))
        cost = objective(matrix, placement, segment_count, balance_weight)
        if best_cost is None or cost < best_cost:
            best, best_cost = placement, cost
    assert best is not None  # segment_count <= len(names) guarantees feasibility
    return best
