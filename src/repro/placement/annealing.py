"""Seeded simulated annealing over placements.

A classic Metropolis loop on the move/swap neighbourhood of
:mod:`repro.placement.kernighan_lin`, with a geometric cooling schedule.
Fully deterministic for a fixed seed (``numpy.random.default_rng``).
Useful on instances too large for exhaustive search where greedy+KL get
stuck in local minima.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.errors import PlacementError
from repro.placement.cost import objective
from repro.placement.greedy import greedy_placement
from repro.psdf.matrix import CommunicationMatrix


def annealed_placement(
    matrix: CommunicationMatrix,
    segment_count: int,
    seed: int = 0,
    initial: Optional[Mapping[str, int]] = None,
    balance_weight: int = 1,
    steps: int = 4000,
    start_temperature: float = 200.0,
    cooling: float = 0.995,
) -> Dict[str, int]:
    """Anneal from ``initial`` (default: the greedy placement)."""
    if steps < 1:
        raise PlacementError(f"steps must be >= 1, got {steps}")
    if not 0.0 < cooling < 1.0:
        raise PlacementError(f"cooling must be in (0, 1), got {cooling}")
    rng = np.random.default_rng(seed)
    current: Dict[str, int] = dict(
        initial if initial is not None else greedy_placement(matrix, segment_count)
    )
    names = sorted(current)
    cost = objective(matrix, current, segment_count, balance_weight)
    best, best_cost = dict(current), cost
    temperature = start_temperature
    for _ in range(steps):
        if rng.random() < 0.5:
            # move: one process to a random other segment
            name = names[int(rng.integers(len(names)))]
            home = current[name]
            if sum(1 for s in current.values() if s == home) <= 1:
                temperature *= cooling
                continue
            seg = int(rng.integers(1, segment_count + 1))
            if seg == home:
                temperature *= cooling
                continue
            current[name] = seg
            undo = [(name, home)]
        else:
            # swap two processes on different segments
            a = names[int(rng.integers(len(names)))]
            b = names[int(rng.integers(len(names)))]
            if a == b or current[a] == current[b]:
                temperature *= cooling
                continue
            current[a], current[b] = current[b], current[a]
            undo = [(a, current[b]), (b, current[a])]
        trial = objective(matrix, current, segment_count, balance_weight)
        delta = trial - cost
        if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-9)):
            cost = trial
            if cost < best_cost:
                best, best_cost = dict(current), cost
        else:
            for name, seg in undo:
                current[name] = seg
        temperature *= cooling
    return best
