"""Rendering lint reports: human text, JSON, and SARIF 2.1.0.

The JSON shape is :meth:`~repro.lint.core.LintReport.to_dict` — the same
finding schema :meth:`repro.model.validation.ValidationReport.to_dict`
emits.  SARIF output follows the minimal static-analysis profile most code
hosts ingest: one run, one driver, one ``rules`` catalogue entry per rule
that produced a finding, results referencing rules by id.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.lint.core import Finding, LintReport, RuleRegistry, Severity

FORMAT_TEXT = "text"
FORMAT_JSON = "json"
FORMAT_SARIF = "sarif"
FORMATS = (FORMAT_TEXT, FORMAT_JSON, FORMAT_SARIF)

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def format_text(report: LintReport) -> str:
    """The human-readable rendering: findings then a one-line summary."""
    lines: List[str] = [f.format() for f in report.sorted_findings()]
    summary = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s), "
        f"{len(report.infos)} info(s) — {report.checked_rules} rule(s) checked"
    )
    if report.ok and not report.findings:
        lines.append(f"clean: {summary}")
    else:
        lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return report.to_json()


def format_sarif(
    report: LintReport, registry: Optional[RuleRegistry] = None
) -> str:
    """SARIF 2.1.0 with rule metadata resolved from ``registry``."""
    rule_ids = report.rule_ids()
    rules_meta: List[Dict[str, object]] = []
    index_of: Dict[str, int] = {}
    for rule_id in rule_ids:
        entry: Dict[str, object] = {"id": rule_id}
        if registry is not None and rule_id in registry:
            rule = registry.get(rule_id)
            entry["name"] = rule.name
            entry["shortDescription"] = {"text": rule.description}
            entry["fullDescription"] = {"text": rule.rationale}
            if rule.fix_hint:
                entry["help"] = {"text": rule.fix_hint}
        index_of[rule_id] = len(rules_meta)
        rules_meta.append(entry)

    results = [_sarif_result(f, index_of) for f in report.sorted_findings()]
    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "segbus-lint",
                        "informationUri": "https://example.invalid/segbus",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2)


def _sarif_result(finding: Finding, index_of: Dict[str, int]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "ruleIndex": index_of[finding.rule_id],
        "level": _SARIF_LEVEL[finding.severity],
        "message": {"text": finding.message},
    }
    if finding.location.file:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.location.file}
                }
            }
        ]
    properties: Dict[str, object] = {"category": finding.category}
    if finding.location.element is not None:
        properties["element"] = finding.location.element
    if finding.location.segment is not None:
        properties["segment"] = finding.location.segment
    if finding.fix_hint:
        properties["fix_hint"] = finding.fix_hint
    result["properties"] = properties
    return result


def render(
    report: LintReport,
    format: str = FORMAT_TEXT,
    registry: Optional[RuleRegistry] = None,
) -> str:
    """Render ``report`` in the requested format."""
    if format == FORMAT_TEXT:
        return format_text(report)
    if format == FORMAT_JSON:
        return format_json(report)
    if format == FORMAT_SARIF:
        return format_sarif(report, registry=registry)
    raise ValueError(f"unknown lint output format {format!r} (use {FORMATS})")
