"""Loading lint inputs from XML scheme files.

``segbus lint`` takes any mix of PSDF, PSM and fault-plan schemes.  The
loader classifies each file by *content* (not by file name), keeps the raw
:class:`~repro.xmlio.schema_writer.SchemaDocument` for the ``SB4xx`` rules,
and then attempts the model parses — each one guarded, so a scheme too
broken for :mod:`repro.xmlio`'s parsers still reaches the document-level
rules and produces precise findings alongside an ``SB401`` record of the
failed parse.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.lint.context import (
    KIND_FAULT_PLAN,
    KIND_PSDF,
    KIND_PSM,
    KIND_UNKNOWN,
    LintContext,
    SchemeFile,
)
from repro.lint.core import Finding, RuleRegistry
from repro.xmlio.faults_xml import PLAN_TYPE, RECORD_TYPE_PREFIX, parse_fault_plan_xml
from repro.xmlio.psdf_parser import parse_psdf_xml
from repro.xmlio.psm_parser import parse_psm_xml
from repro.xmlio.schema_writer import SchemaDocument

#: PSDF process stereotypes (duplicated from psdf_parser to stay cheap)
_STEREOTYPES = frozenset({"InitialNode", "ProcessNode", "FinalNode"})


def classify_scheme(doc: SchemaDocument) -> str:
    """Classify a scheme document by its content.

    * a root type named ``FaultPlan`` (or holding ``FaultRecordN`` children)
      is a fault plan;
    * a root type with a ``CA`` child (or ``Segment*`` children) is a PSM;
    * a root type whose children carry PSDF stereotypes is a PSDF scheme.
    """
    if not doc.top_level:
        return KIND_UNKNOWN
    root_type = doc.top_level[0].type
    try:
        root = doc.complex_type(root_type)
    except Exception:
        return KIND_UNKNOWN
    child_types = [child.type for child in root.children]
    if root_type == PLAN_TYPE or any(
        t.startswith(RECORD_TYPE_PREFIX) for t in child_types
    ):
        return KIND_FAULT_PLAN
    if "CA" in child_types or any(t.startswith("Segment") for t in child_types):
        return KIND_PSM
    if any(t in _STEREOTYPES for t in child_types):
        return KIND_PSDF
    return KIND_UNKNOWN


def load_paths(
    paths: Sequence[str], registry: RuleRegistry
) -> Tuple[LintContext, List[Finding]]:
    """Read, classify and parse ``paths`` into a :class:`LintContext`.

    Returns the context plus the loader's own findings (``SB401`` for files
    that fail to read, parse as XML, or build their model).  When several
    files of one kind are given, the first parseable one supplies the model;
    every file still gets the document-level rules.
    """
    parse_rule = registry.get("SB401")
    findings: List[Finding] = []
    documents: List[SchemeFile] = []
    source_files = {}
    application = None
    platform = None
    fault_plan = None

    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            findings.append(
                parse_rule.finding(f"cannot read input: {exc}", file=str(path))
            )
            continue
        try:
            doc = SchemaDocument.from_xml(text)
        except Exception as exc:
            findings.append(
                parse_rule.finding(
                    f"not a scheme document: {exc}", file=str(path)
                )
            )
            continue
        kind = classify_scheme(doc)
        documents.append(SchemeFile(path=str(path), kind=kind, document=doc))
        if kind == KIND_UNKNOWN:
            findings.append(
                parse_rule.finding(
                    "scheme is neither a PSDF, PSM nor fault-plan document",
                    file=str(path),
                )
            )
            continue

        model_error: Optional[Exception] = None
        try:
            if kind == KIND_PSDF and application is None:
                application = parse_psdf_xml(text)
                source_files.setdefault(KIND_PSDF, str(path))
            elif kind == KIND_PSM and platform is None:
                parsed = parse_psm_xml(text)
                source_files.setdefault(KIND_PSM, str(path))
                platform = parsed.to_platform()
            elif kind == KIND_FAULT_PLAN and fault_plan is None:
                fault_plan = parse_fault_plan_xml(text)
                source_files.setdefault(KIND_FAULT_PLAN, str(path))
        except Exception as exc:
            model_error = exc
        if model_error is not None:
            findings.append(
                parse_rule.finding(
                    f"cannot build the {kind} model: {model_error}",
                    file=str(path),
                )
            )

    context = LintContext.from_models(
        application=application,
        platform=platform,
        fault_plan=fault_plan,
        documents=tuple(documents),
    )
    context.source_files.update(source_files)
    return context, findings
