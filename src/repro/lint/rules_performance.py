"""Static performance lint (``SB5xx``).

Backed by the stochastic contention analyzer
(:mod:`repro.analysis.stochastic`): from the PSDF graph + placement +
platform spec alone it predicts per-resource offered load, expected queue
depths and the expected TCT with contention — so saturation, contention
blow-ups and undersized BU FIFOs can be flagged *before* any emulation,
the same pre-implementation pruning the STbus crossbar methodology applies
to candidate topologies.

Every rule guards on a fully estimable context (application + platform
with a complete placement); a partial or structurally broken model is the
SB1xx/SB2xx families' business and simply runs no SB5xx checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.emulator.kernel import PlatformSpec

from repro.analysis.stochastic import (
    CONTENTION_CEILING,
    UTILIZATION_KNEE,
    StochasticEstimate,
    stochastic_estimate,
    suggest_placement_move,
)
from repro.lint.context import LintContext
from repro.lint.core import Finding, RuleRegistry, Severity

CATEGORY = "performance"

#: a suggested placement move must save at least this share of the
#: predicted TCT before SB505 bothers the designer with it
MOVE_GAIN_SHARE = 0.05

_CACHE_ATTR = "_sb5xx_estimation"


def _estimation(
    ctx: LintContext,
) -> Optional[Tuple["PlatformSpec", StochasticEstimate]]:
    """The context's platform spec + stochastic estimate, or ``None``.

    ``None`` whenever the context is not statically estimable — no
    platform, no application, incomplete placement, or a graph the PSDF
    constructor rejects (cycles, undeclared endpoints — all diagnosed by
    their own rules).  Cached on the context: five rules, one analysis.
    """
    if _CACHE_ATTR in ctx.__dict__:
        return ctx.__dict__[_CACHE_ATTR]
    result = None
    if ctx.platform is not None and ctx.has_application and ctx.flows:
        try:
            from repro.emulator.kernel import PlatformSpec
            from repro.psdf.graph import PSDFGraph

            graph = PSDFGraph(
                ctx.processes,
                ctx.flows,
                name=ctx.application_name or "application",
            )
            spec = PlatformSpec.from_platform(ctx.platform)
            result = (spec, stochastic_estimate(graph, spec))
        except Exception:
            result = None
    ctx.__dict__[_CACHE_ATTR] = result
    return result


def register(registry: RuleRegistry) -> None:
    @registry.rule(
        "SB501",
        "predicted-segment-saturation",
        severity=Severity.WARNING,
        category=CATEGORY,
        description=f"predicted segment bus load stays below ρ = {UTILIZATION_KNEE}",
        rationale=(
            "beyond the M/D/1 knee the expected grant-queue wait grows as "
            "1/(1−ρ): a statically oversubscribed segment bus dominates the "
            "TCT regardless of how fast its functional units compute"
        ),
        example="14 heavy flows all placed on segment 1 of a 3-segment platform",
        fix_hint="move producers off the hot segment or raise its frequency",
    )
    def _segment_saturation(ctx: LintContext) -> Iterable[Finding]:
        estimation = _estimation(ctx)
        if estimation is None:
            return
        _, estimate = estimation
        psdf = ctx.file_for("psdf")
        for index, model in estimate.segments.items():
            if model.utilization > UTILIZATION_KNEE:
                yield registry.get("SB501").finding(
                    f"segment {index} bus is predicted at ρ = "
                    f"{model.utilization:.2f} offered load "
                    f"(> {UTILIZATION_KNEE}): expected grant wait "
                    f"{model.mean_wait_fs / 1e9:.3f} us per package",
                    segment=index,
                    file=psdf,
                )

    @registry.rule(
        "SB502",
        "predicted-ca-saturation",
        severity=Severity.WARNING,
        category=CATEGORY,
        description=f"predicted CA path-holding load stays below ρ = {UTILIZATION_KNEE}",
        rationale=(
            "the CA holds the whole source→target path per inter-segment "
            "package (circuit switching): when the summed path-holding time "
            "approaches the makespan, every new inter-segment request "
            "queues behind a busy central arbiter"
        ),
        example="every flow of a 4-segment platform crossing segment borders",
        fix_hint="co-place chatty process pairs to convert inter- to intra-segment traffic",
    )
    def _ca_saturation(ctx: LintContext) -> Iterable[Finding]:
        estimation = _estimation(ctx)
        if estimation is None:
            return
        _, estimate = estimation
        if estimate.ca.utilization > UTILIZATION_KNEE:
            yield registry.get("SB502").finding(
                f"CA path-holding is predicted at ρ = "
                f"{estimate.ca.utilization:.2f} of the makespan "
                f"(> {UTILIZATION_KNEE}) over {estimate.ca.arrivals} "
                "inter-segment package grants",
                file=ctx.file_for("psdf"),
            )

    @registry.rule(
        "SB503",
        "predicted-contention-blowup",
        severity=Severity.WARNING,
        category=CATEGORY,
        description=(
            "predicted TCT stays below "
            f"{CONTENTION_CEILING}x the contention-free bound"
        ),
        rationale=(
            "the ANA-2 oracle rejects emulations beyond this ceiling as "
            "pathological; predicting the blow-up statically saves the "
            "emulation that would only confirm the platform is undersized"
        ),
        example="a single-segment platform serializing 40 concurrent flows",
        fix_hint="add segments or re-place processes before emulating",
    )
    def _contention_blowup(ctx: LintContext) -> Iterable[Finding]:
        estimation = _estimation(ctx)
        if estimation is None:
            return
        _, estimate = estimation
        if estimate.contention_ratio >= CONTENTION_CEILING:
            yield registry.get("SB503").finding(
                f"predicted TCT {estimate.execution_time_us:.1f} us is "
                f"{estimate.contention_ratio:.1f}x the contention-free "
                f"bound {estimate.analytic_us:.1f} us (ANA-2 ceiling: "
                f"{CONTENTION_CEILING}x)",
                file=ctx.file_for("psdf"),
            )

    @registry.rule(
        "SB504",
        "predicted-bu-queue-overflow",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="expected BU queue depth fits the configured FIFO",
        rationale=(
            "a BU whose expected number of queued packages exceeds its "
            "FIFO depth back-pressures the upstream segment on average, "
            "not just in bursts — the configured depth is statically "
            "undersized for the offered inter-segment traffic"
        ),
        example="depth-1 BU between two segments exchanging most of the traffic",
        fix_hint="deepen the BU FIFO in the PSM or reduce border-crossing traffic",
    )
    def _bu_queue_overflow(ctx: LintContext) -> Iterable[Finding]:
        estimation = _estimation(ctx)
        if estimation is None:
            return
        spec, estimate = estimation
        psm = ctx.file_for("psm")
        for pair, model in estimate.border_units.items():
            depth = spec.bu_depths.get(pair, 1)
            if model.mean_queue_depth > depth:
                yield registry.get("SB504").finding(
                    f"BU{pair[0]}{pair[1]} (FIFO depth {depth}) expects "
                    f"{model.mean_queue_depth:.1f} queued packages at "
                    f"ρ = {model.utilization:.2f} offered load",
                    element=f"BU{pair[0]}{pair[1]}",
                    segment=pair[0],
                    file=psm,
                )

    @registry.rule(
        "SB505",
        "hot-segment-placement",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="no single placement move relieves a saturating segment",
        rationale=(
            "when one segment saturates while a one-process move would cut "
            "the predicted TCT materially, the placement — not the "
            "platform — is the bottleneck; the estimator can name the move "
            "without emulating the neighbourhood"
        ),
        example="moving one producer off the hot segment cuts the estimate 20%",
        fix_hint="apply the suggested move (or run PlaceTool.solve_estimated)",
    )
    def _hot_segment_placement(ctx: LintContext) -> Iterable[Finding]:
        estimation = _estimation(ctx)
        if estimation is None:
            return
        spec, estimate = estimation
        hot = estimate.hottest_segment()
        if hot is None or estimate.segments[hot].utilization <= UTILIZATION_KNEE:
            return
        try:
            from repro.psdf.graph import PSDFGraph

            graph = PSDFGraph(
                ctx.processes,
                ctx.flows,
                name=ctx.application_name or "application",
            )
            move = suggest_placement_move(graph, spec, estimate=estimate)
        except Exception:
            return
        if move is None:
            return
        if move.predicted_saving_fs < MOVE_GAIN_SHARE * estimate.execution_time_fs:
            return
        saving_share = move.predicted_saving_fs / estimate.execution_time_fs
        yield registry.get("SB505").finding(
            f"segment {move.from_segment} is the predicted hotspot (ρ = "
            f"{estimate.segments[hot].utilization:.2f}); moving "
            f"{move.process} to segment {move.to_segment} is predicted to "
            f"save {move.predicted_saving_us:.1f} us "
            f"({saving_share:.0%} of the TCT)",
            element=move.process,
            segment=move.from_segment,
            file=ctx.file_for("psm"),
            fix_hint=(
                f"re-place {move.process} on segment {move.to_segment} "
                "(or run PlaceTool.solve_estimated)"
            ),
        )
