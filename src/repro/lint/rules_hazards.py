"""Pre-simulation hazard detector (``SB3xx``).

Walks the *mapped* application — flows plus placement plus the transfer
ordering that the arbiters will execute — and flags runtime hazards that
are already visible statically:

* **CA double-grant**: two transfers sharing a ``T`` slot, issued from
  *different* source segments, whose circuit paths overlap.  The CA can
  only connect disjoint paths concurrently; overlapping requests race for
  the same grant lines and one of them must stall for the whole burst;
* **BU contention races**: transfers sharing a ``T`` slot that cross the
  same border unit — head-on (opposite directions) races for the single
  FIFO, same-direction from different segments queue behind one another;
* **fault-plan integrity**: records targeting platform elements that do
  not exist, null plans, extreme rates, and permanent failures scheduled
  before the element ever works.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.model import KIND_PERMANENT, FaultRecord
from repro.lint.context import LintContext
from repro.lint.core import Finding, RuleRegistry, Severity
from repro.psdf.flow import PacketFlow

CATEGORY = "hazard"


def _mapped_transfers(
    ctx: LintContext,
) -> Optional[List[Tuple[PacketFlow, int, int]]]:
    """Flows with resolved (source segment, target segment), or None."""
    placement = ctx.placement()
    if placement is None or not ctx.flows:
        return None
    out: List[Tuple[PacketFlow, int, int]] = []
    for flow in ctx.flows:
        src = placement.get(flow.source)
        dst = placement.get(flow.target)
        if src is None or dst is None:
            continue  # unmapped endpoints are SB111's business
        out.append((flow, src, dst))
    return out


def _path(src: int, dst: int) -> Tuple[int, int]:
    return (min(src, dst), max(src, dst))


def register(registry: RuleRegistry) -> None:
    @registry.rule(
        "SB301",
        "ca-double-grant",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="no two same-T transfers from different segments share a path",
        rationale=(
            "the CA connects whole source→target paths (circuit switching, "
            "section 3.2); concurrent requests over overlapping paths from "
            "different SAs force a double grant decision — one transfer "
            "stalls for the full burst and, under faults, grant-loss "
            "retries can livelock"
        ),
        example="P2(seg1)->P5(seg2) and P9(seg3)->P6(seg2) both at T=4",
        fix_hint="separate the transfers' T values or re-place an endpoint",
    )
    def _double_grant(ctx: LintContext) -> Iterable[Finding]:
        transfers = _mapped_transfers(ctx)
        if transfers is None:
            return
        psdf = ctx.file_for("psdf")
        by_order: Dict[int, List[Tuple[PacketFlow, int, int]]] = {}
        for flow, src, dst in transfers:
            if src != dst:  # only inter-segment transfers involve the CA
                by_order.setdefault(flow.order, []).append((flow, src, dst))
        for order in sorted(by_order):
            group = by_order[order]
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    f1, s1, d1 = group[i]
                    f2, s2, d2 = group[j]
                    if s1 == s2:
                        continue  # one SA serializes its own masters
                    lo1, hi1 = _path(s1, d1)
                    lo2, hi2 = _path(s2, d2)
                    overlap_lo, overlap_hi = max(lo1, lo2), min(hi1, hi2)
                    if overlap_lo > overlap_hi:
                        continue
                    segments = list(range(overlap_lo, overlap_hi + 1))
                    yield registry.get("SB301").finding(
                        f"transfers {f1.source}->{f1.target} (segments "
                        f"{lo1}..{hi1}) and {f2.source}->{f2.target} "
                        f"(segments {lo2}..{hi2}) share T={order} and "
                        f"overlap on segment(s) {segments}: CA double-grant "
                        "hazard",
                        element=f"{f1.source}->{f1.target}",
                        segment=overlap_lo,
                        file=psdf,
                    )

    @registry.rule(
        "SB302",
        "bu-contention-race",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="no two same-T transfers cross one BU head-on",
        rationale=(
            "a BU holds one package per direction slot; two concurrent "
            "transfers crossing it in opposite directions race for the "
            "FIFO and serialize unpredictably — the estimate becomes "
            "schedule-order dependent"
        ),
        example="seg1->seg2 and seg2->seg1 transfers both at T=3",
        fix_hint="separate the T values or deepen the BU FIFO",
    )
    def _bu_race(ctx: LintContext) -> Iterable[Finding]:
        transfers = _mapped_transfers(ctx)
        if transfers is None:
            return
        psdf = ctx.file_for("psdf")
        bu_pairs = set(ctx.bu_pairs())
        #: (order, bu pair) → list of (flow, direction, source segment)
        usage: Dict[Tuple[int, Tuple[int, int]], List[Tuple[PacketFlow, int, int]]] = {}
        for flow, src, dst in transfers:
            if src == dst:
                continue
            step = 1 if dst > src else -1
            for left in range(min(src, dst), max(src, dst)):
                pair = (left, left + 1)
                if pair in bu_pairs or not bu_pairs:
                    usage.setdefault((flow.order, pair), []).append(
                        (flow, step, src)
                    )
        for (order, pair), users in sorted(
            usage.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            directions = {step for _, step, _ in users}
            if len(directions) > 1:
                names = ", ".join(
                    f"{f.source}->{f.target}" for f, _, _ in users
                )
                yield registry.get("SB302").finding(
                    f"transfers {names} cross BU{pair[0]}{pair[1]} in "
                    f"opposite directions at T={order}: head-on FIFO race",
                    element=f"BU{pair[0]}{pair[1]}",
                    segment=pair[0],
                    file=psdf,
                )
            elif len({src for _, _, src in users}) > 1:
                names = ", ".join(
                    f"{f.source}->{f.target}" for f, _, _ in users
                )
                yield registry.get("SB302").finding(
                    f"transfers {names} from different segments queue on "
                    f"BU{pair[0]}{pair[1]} at T={order} (contention, "
                    "serialized by the CA)",
                    severity=Severity.INFO,
                    element=f"BU{pair[0]}{pair[1]}",
                    segment=pair[0],
                    file=psdf,
                )

    @registry.rule(
        "SB303",
        "fault-unknown-site",
        severity=Severity.ERROR,
        category="faults",
        description="every fault record targets an existing platform element",
        rationale=(
            "a record aimed at a nonexistent FU/segment/BU never fires — "
            "the campaign silently measures the wrong resilience"
        ),
        example="fu:P99 in a plan for the 15-process MP3 decoder",
        fix_hint="fix the site to an existing element (or use '*')",
    )
    def _fault_sites(ctx: LintContext) -> Iterable[Finding]:
        if ctx.fault_plan is None or ctx.platform is None:
            return
        faults_file = ctx.file_for("faultplan")
        placement = ctx.placement() or {}
        segments = {seg.index for seg in ctx.platform.segments}
        bu_pairs = set(ctx.bu_pairs())
        for record in ctx.fault_plan.records:
            message = _unknown_site_message(record, placement, segments, bu_pairs)
            if message:
                yield registry.get("SB303").finding(
                    message, element=record.site, file=faults_file
                )

    @registry.rule(
        "SB304",
        "fault-null-plan",
        severity=Severity.INFO,
        category="faults",
        description="a supplied fault plan can actually inject something",
        rationale=(
            "all-zero rates and no permanent records make the campaign a "
            "no-op; usually a forgotten rate argument"
        ),
        example="FaultPlan.transient(seed=1) with every rate left at 0",
        fix_hint="set at least one rate > 0 or drop the plan",
    )
    def _null_plan(ctx: LintContext) -> Iterable[Finding]:
        if ctx.fault_plan is None:
            return
        if ctx.fault_plan.is_null:
            yield registry.get("SB304").finding(
                "fault plan has no effect: every transient rate is 0 and "
                "there are no permanent failures",
                file=ctx.file_for("faultplan"),
            )

    @registry.rule(
        "SB305",
        "fault-extreme-rate",
        severity=Severity.WARNING,
        category="faults",
        description="transient fault rates stay below 0.5",
        rationale=(
            "at rates ≥ 0.5 every retry is more likely to fail than "
            "succeed; with backoff the expected completion time diverges "
            "(livelock in practice)"
        ),
        example="package_corruption at rate 0.9",
        fix_hint="sweep rates below 0.5 or cap attempts with on_exhaustion",
    )
    def _extreme_rate(ctx: LintContext) -> Iterable[Finding]:
        if ctx.fault_plan is None:
            return
        faults_file = ctx.file_for("faultplan")
        for record in ctx.fault_plan.transient_records:
            if record.rate >= 0.5:
                yield registry.get("SB305").finding(
                    f"{record.kind} at {record.site!r}: rate {record.rate} "
                    "≥ 0.5 makes retry divergence likely",
                    element=record.site,
                    file=faults_file,
                )

    @registry.rule(
        "SB306",
        "fault-permanent-at-start",
        severity=Severity.WARNING,
        category="faults",
        description="permanent failures strike after the element did work",
        rationale=(
            "a permanent failure at tick 0 just deletes the element — "
            "graceful-degradation results degenerate to a smaller platform"
        ),
        example="permanent_failure of fu:P3 with at_tick=0",
        fix_hint="schedule the failure later or remove the element instead",
    )
    def _permanent_at_start(ctx: LintContext) -> Iterable[Finding]:
        if ctx.fault_plan is None:
            return
        faults_file = ctx.file_for("faultplan")
        for record in ctx.fault_plan.of_kind(KIND_PERMANENT):
            if record.at_tick == 0:
                yield registry.get("SB306").finding(
                    f"permanent failure of {record.site!r} at tick 0: the "
                    "element never does any work",
                    element=record.site,
                    file=faults_file,
                )


def _unknown_site_message(
    record: FaultRecord,
    placement: Dict[str, int],
    segments: set,
    bu_pairs: set,
) -> Optional[str]:
    site = record.site
    if site in ("*", "ca"):
        return None
    if site.startswith("fu:"):
        name = site[len("fu:"):]
        if name not in placement:
            known = ", ".join(sorted(placement)) or "none"
            return (
                f"fault record ({record.kind}) targets nonexistent FU "
                f"{name!r}; mapped processes: {known}"
            )
        return None
    if site.startswith("segment:"):
        index = int(site[len("segment:"):])
        if index not in segments:
            return (
                f"fault record ({record.kind}) targets nonexistent "
                f"segment {index}; platform has segments "
                f"{sorted(segments)}"
            )
        return None
    if site.startswith("bu:"):
        left_s, right_s = site[len("bu:"):].split(":")
        pair = (int(left_s), int(right_s))
        if pair not in bu_pairs:
            return (
                f"fault record ({record.kind}) targets nonexistent "
                f"BU{pair[0]}{pair[1]}; platform has "
                f"{sorted(bu_pairs)}"
            )
        return None
    return f"fault record ({record.kind}) has unrecognised site {site!r}"
