"""PSDF static verifier: application-graph rules (``SB2xx``).

All properties here are decidable from the flow table alone (plus the
platform for the bandwidth bounds) — no emulation:

* graph well-formedness: undeclared endpoints, duplicate flows, orphan
  and unreachable processes, stereotype/connectivity mismatches;
* **static deadlock**: strongly connected components of the flow graph.
  Under SDF "fire once all inputs arrived" semantics no process on a
  cycle can ever fire, so the emulator would inevitably raise a
  ``DeadlockError`` after wasting a full setup — lint proves it in
  milliseconds from the topology;
* transfer-ordering (``T``) sanity: inversions (a process transmitting
  at an ordinal strictly before an input it depends on) and gaps in the
  global ordering chain;
* token balance at package granularity (``D mod s``) and per-segment /
  per-BU bandwidth saturation bounds computed from ``(D, C)`` against
  the segment clock periods.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.lint.context import LintContext
from repro.lint.core import Finding, RuleRegistry, Severity
from repro.psdf.process import ProcessKind

CATEGORY = "psdf"


def register(registry: RuleRegistry) -> None:
    @registry.rule(
        "SB201",
        "undeclared-flow-endpoint",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every flow's source and target are declared processes",
        rationale="a dangling endpoint makes the schedule table unbuildable",
        example="flow P1->P9 in a model that never declares P9",
        fix_hint="declare the process or fix the flow endpoint name",
    )
    def _undeclared(ctx: LintContext) -> Iterable[Finding]:
        declared = set(ctx.process_names())
        if not declared and not ctx.flows:
            return
        psdf = ctx.file_for("psdf")
        for flow in ctx.flows:
            for endpoint in (flow.source, flow.target):
                if endpoint not in declared:
                    yield registry.get("SB201").finding(
                        f"flow {flow.source}->{flow.target} (T={flow.order}) "
                        f"references undeclared process {endpoint!r}",
                        element=endpoint,
                        file=psdf,
                    )

    @registry.rule(
        "SB202",
        "duplicate-flow",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="at most one flow per (source, target, T) triple",
        rationale=(
            "the paper aggregates data items of one source/destination pair "
            "into a single flow; duplicates double-count traffic"
        ),
        example="two P0->P1 flows both carrying T=1",
        fix_hint="merge the data items into one flow",
    )
    def _duplicates(ctx: LintContext) -> Iterable[Finding]:
        seen: Dict[Tuple[str, str, int], int] = {}
        psdf = ctx.file_for("psdf")
        for flow in ctx.flows:
            key = (flow.source, flow.target, flow.order)
            seen[key] = seen.get(key, 0) + 1
        for (source, target, order), count in sorted(seen.items()):
            if count > 1:
                yield registry.get("SB202").finding(
                    f"{count} flows {source}->{target} with T={order}; "
                    "aggregate the data items into one flow",
                    element=source,
                    file=psdf,
                )

    @registry.rule(
        "SB203",
        "orphan-process",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every process participates in at least one flow",
        rationale=(
            "a disconnected process never fires and never terminates the "
            "run-completion condition cleanly"
        ),
        example="declaring P6 while no flow touches P6",
        fix_hint="connect the process or drop it from the model",
    )
    def _orphans(ctx: LintContext) -> Iterable[Finding]:
        if not ctx.flows:
            return
        psdf = ctx.file_for("psdf")
        touched = {f.source for f in ctx.flows} | {f.target for f in ctx.flows}
        for proc in ctx.processes:
            if proc.name not in touched:
                yield registry.get("SB203").finding(
                    f"process {proc.name!r} is declared but participates in "
                    "no flow (orphan)",
                    element=proc.name,
                    file=psdf,
                )

    @registry.rule(
        "SB204",
        "unreachable-process",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every process is reachable from a fire-at-t0 process",
        rationale=(
            "a process fed only by processes that can never fire starves "
            "forever; the emulation cannot complete"
        ),
        example="P4 consumes from a cycle that has no external producer",
        fix_hint="feed the process from an initial process or remove it",
    )
    def _unreachable(ctx: LintContext) -> Iterable[Finding]:
        if not ctx.flows:
            return
        psdf = ctx.file_for("psdf")
        reachable = ctx.reachable_from_sources()
        in_cycle = {name for scc in ctx.strongly_connected_components() for name in scc}
        for proc in ctx.processes:
            # cycle members are reported (once, together) by SB207
            if proc.name not in reachable and proc.name not in in_cycle:
                yield registry.get("SB204").finding(
                    f"process {proc.name!r} is unreachable from every "
                    "fire-at-t0 process (it can never receive its inputs)",
                    element=proc.name,
                    file=psdf,
                )

    @registry.rule(
        "SB205",
        "initial-node-with-inputs",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="InitialNode processes have no incoming flows",
        rationale="the stereotype declares a system input (paper section 2.2)",
        example="P0 stereotyped InitialNode while P3->P0 exists",
        fix_hint="restereotype the process as ProcessNode",
    )
    def _initial_with_inputs(ctx: LintContext) -> Iterable[Finding]:
        psdf = ctx.file_for("psdf")
        for proc in ctx.processes:
            if proc.kind is ProcessKind.INITIAL and ctx.incoming(proc.name):
                yield registry.get("SB205").finding(
                    f"process {proc.name!r} is stereotyped InitialNode but "
                    f"has {len(ctx.incoming(proc.name))} incoming flow(s)",
                    element=proc.name,
                    file=psdf,
                )

    @registry.rule(
        "SB206",
        "final-node-with-outputs",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="FinalNode processes have no outgoing flows",
        rationale="the stereotype declares a system output (paper section 2.2)",
        example="P14 stereotyped FinalNode while P14->P0 exists",
        fix_hint="restereotype the process as ProcessNode",
    )
    def _final_with_outputs(ctx: LintContext) -> Iterable[Finding]:
        psdf = ctx.file_for("psdf")
        for proc in ctx.processes:
            if proc.kind is ProcessKind.FINAL and ctx.outgoing(proc.name):
                yield registry.get("SB206").finding(
                    f"process {proc.name!r} is stereotyped FinalNode but "
                    f"has {len(ctx.outgoing(proc.name))} outgoing flow(s)",
                    element=proc.name,
                    file=psdf,
                )

    @registry.rule(
        "SB207",
        "static-deadlock-cycle",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="the flow graph is acyclic (no static SDF deadlock)",
        rationale=(
            "with fire-once-all-inputs-arrived semantics every process of a "
            "dependency cycle waits on the others forever; the emulator "
            "would diagnose the deadlock only after running"
        ),
        example="P1->P2, P2->P3, P3->P1",
        fix_hint="break the cycle (split a process or drop a back edge)",
    )
    def _cycles(ctx: LintContext) -> Iterable[Finding]:
        psdf = ctx.file_for("psdf")
        for scc in ctx.strongly_connected_components():
            yield registry.get("SB207").finding(
                "statically deadlocked: processes "
                + ", ".join(scc)
                + " form a dependency cycle — none of them can ever fire",
                element=scc[0],
                file=psdf,
            )

    @registry.rule(
        "SB208",
        "transfer-order-inversion",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="no process transmits at a T strictly below an input's T",
        rationale=(
            "the arbiters sequence transfers by ascending T (section 3.3); "
            "an output scheduled before a needed input can never keep its "
            "slot — the schedule ROM and the dataflow contradict each other"
        ),
        example="P0->P1 with T=2 while P1->P2 carries T=1",
        fix_hint="renumber the T values along the pipeline order",
    )
    def _inversions(ctx: LintContext) -> Iterable[Finding]:
        psdf = ctx.file_for("psdf")
        for proc in ctx.processes:
            incoming = ctx.incoming(proc.name)
            if not incoming:
                continue
            for out in ctx.outgoing(proc.name):
                below = [g for g in incoming if out.order < g.order]
                if below:
                    worst = max(g.order for g in below)
                    yield registry.get("SB208").finding(
                        f"process {proc.name!r} transmits "
                        f"{out.source}->{out.target} at T={out.order} but "
                        f"still awaits input at T={worst} "
                        "(transfer-ordering cycle)",
                        element=proc.name,
                        file=psdf,
                    )

    @registry.rule(
        "SB209",
        "transfer-order-gap",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="the distinct T values form a contiguous chain from 1",
        rationale=(
            "gaps usually betray a deleted flow or a typo; the schedule "
            "still works but reviews against the paper's tables mislead"
        ),
        example="flows carrying T ∈ {1, 2, 5}",
        fix_hint="renumber T values contiguously starting at 1",
    )
    def _gaps(ctx: LintContext) -> Iterable[Finding]:
        if not ctx.flows:
            return
        psdf = ctx.file_for("psdf")
        orders = sorted({f.order for f in ctx.flows})
        expected = list(range(1, len(orders) + 1))
        if orders != expected:
            missing = sorted(set(range(1, orders[-1] + 1)) - set(orders))
            detail = f"missing T values {missing}" if missing else "does not start at 1"
            yield registry.get("SB209").finding(
                f"transfer ordering has gaps: T values {orders} ({detail})",
                element=ctx.application_name,
                file=psdf,
            )

    @registry.rule(
        "SB210",
        "implicit-source",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="fire-at-t0 processes are stereotyped InitialNode",
        rationale=(
            "a ProcessNode without inputs silently fires at t=0; if that is "
            "intended the InitialNode stereotype documents it, otherwise an "
            "input flow is missing"
        ),
        example="P5 has only outgoing flows yet is stereotyped ProcessNode",
        fix_hint="stereotype the process InitialNode or add its input flow",
    )
    def _implicit_sources(ctx: LintContext) -> Iterable[Finding]:
        if not ctx.flows:
            return
        psdf = ctx.file_for("psdf")
        for proc in ctx.processes:
            if (
                proc.kind is ProcessKind.PROCESS
                and ctx.outgoing(proc.name)
                and not ctx.incoming(proc.name)
            ):
                yield registry.get("SB210").finding(
                    f"process {proc.name!r} has no incoming flows but is "
                    "stereotyped ProcessNode (will fire at t=0)",
                    element=proc.name,
                    file=psdf,
                )

    @registry.rule(
        "SB211",
        "implicit-sink",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="output-less processes are stereotyped FinalNode",
        rationale=(
            "a ProcessNode without outputs is a silent data sink; if that is "
            "intended the FinalNode stereotype documents it, otherwise an "
            "output flow is missing"
        ),
        example="P7 has only incoming flows yet is stereotyped ProcessNode",
        fix_hint="stereotype the process FinalNode or add its output flow",
    )
    def _implicit_sinks(ctx: LintContext) -> Iterable[Finding]:
        if not ctx.flows:
            return
        psdf = ctx.file_for("psdf")
        for proc in ctx.processes:
            if (
                proc.kind is ProcessKind.PROCESS
                and ctx.incoming(proc.name)
                and not ctx.outgoing(proc.name)
            ):
                yield registry.get("SB211").finding(
                    f"process {proc.name!r} has no outgoing flows but is "
                    "stereotyped ProcessNode (silent sink)",
                    element=proc.name,
                    file=psdf,
                )

    @registry.rule(
        "SB212",
        "package-padding",
        severity=Severity.INFO,
        category=CATEGORY,
        description="flow volumes divide evenly into platform packages",
        rationale=(
            "D mod s ≠ 0 means the last package travels partially filled — "
            "correct but wasteful; the token balance at package granularity "
            "is off by the padding"
        ),
        example="D=100 items at package size 36 (last package carries 28)",
        fix_hint="align D with the package size or pick s dividing D",
    )
    def _padding(ctx: LintContext) -> Iterable[Finding]:
        size = ctx.package_size()
        if size is None or size < 1 or not ctx.has_application:
            return
        psdf = ctx.file_for("psdf")
        for flow in ctx.flows:
            remainder = flow.data_items % size
            if remainder:
                yield registry.get("SB212").finding(
                    f"flow {flow.source}->{flow.target}: D={flow.data_items} "
                    f"does not divide into s={size} packages (last package "
                    f"carries only {remainder} items)",
                    element=flow.source,
                    file=psdf,
                )

    @registry.rule(
        "SB220",
        "segment-bandwidth-saturation",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="no segment bus is bound by raw transfer occupancy",
        rationale=(
            "per segment, bus occupancy (packages × s ticks) exceeding the "
            "production time mapped there means the bus, not computation, "
            "bounds the segment — the configuration is communication-bound "
            "and contention will dominate the estimate"
        ),
        example="all heavy flows crossing one segment clocked far below CA",
        fix_hint="localize traffic (re-place endpoints) or raise s",
    )
    def _segment_saturation(ctx: LintContext) -> Iterable[Finding]:
        psdf = ctx.file_for("psdf")
        for index, busy_us, production_us in _segment_loads(ctx):
            if production_us > 0 and busy_us > production_us:
                yield registry.get("SB220").finding(
                    f"segment {index} bus occupancy lower bound "
                    f"{busy_us:.1f} us exceeds its mapped production time "
                    f"{production_us:.1f} us (communication-bound)",
                    segment=index,
                    file=psdf,
                )

    @registry.rule(
        "SB221",
        "bu-bandwidth-saturation",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="no border unit carries more load than both neighbours",
        rationale=(
            "a BU whose crossing traffic exceeds the intra-segment traffic "
            "of both neighbouring segments is the dominant load of the "
            "platform: packages will queue at its single FIFO and the "
            "waiting period WP explodes (paper section 4's bottleneck)"
        ),
        example="every flow of a two-segment platform crossing BU12",
        fix_hint="re-place one endpoint of the heaviest crossing flow",
    )
    def _bu_saturation(ctx: LintContext) -> Iterable[Finding]:
        placement = ctx.placement()
        size = ctx.package_size()
        if placement is None or size is None or not ctx.flows:
            return
        psdf = ctx.file_for("psdf")
        intra: Dict[int, int] = {}
        crossing: Dict[Tuple[int, int], int] = {pair: 0 for pair in ctx.bu_pairs()}
        for flow in ctx.flows:
            src = placement.get(flow.source)
            dst = placement.get(flow.target)
            if src is None or dst is None:
                continue
            packages = flow.packages(size)
            if src == dst:
                intra[src] = intra.get(src, 0) + packages * size
                continue
            lo, hi = min(src, dst), max(src, dst)
            for left in range(lo, hi):
                pair = (left, left + 1)
                if pair in crossing:
                    crossing[pair] += packages * size
        for (left, right), ticks in sorted(crossing.items()):
            if ticks == 0:
                continue
            if ticks > intra.get(left, 0) and ticks > intra.get(right, 0):
                yield registry.get("SB221").finding(
                    f"BU{left}{right} crossing occupancy ({ticks} bus ticks) "
                    f"exceeds the intra-segment traffic of both segment "
                    f"{left} ({intra.get(left, 0)}) and segment {right} "
                    f"({intra.get(right, 0)}): the bridge is the dominant "
                    "load",
                    element=f"BU{left}{right}",
                    segment=left,
                    file=psdf,
                )


def _segment_loads(ctx: LintContext) -> List[Tuple[int, float, float]]:
    """Per segment: (index, bus-occupancy us, mapped production us)."""
    placement = ctx.placement()
    size = ctx.package_size()
    if placement is None or size is None or ctx.platform is None or not ctx.flows:
        return []
    periods_us: Dict[int, float] = {}
    for seg in ctx.platform.segments:
        mhz = seg.frequency.mhz
        if mhz <= 0:
            return []  # SB110 already fired; the bound is meaningless
        periods_us[seg.index] = 1.0 / mhz
    busy_ticks: Dict[int, int] = {i: 0 for i in periods_us}
    production_ticks: Dict[int, int] = {i: 0 for i in periods_us}
    for flow in ctx.flows:
        src = placement.get(flow.source)
        dst = placement.get(flow.target)
        if src is None or dst is None or src not in periods_us or dst not in periods_us:
            continue
        packages = flow.packages(size)
        production_ticks[src] += packages * flow.ticks_per_package(size)
        lo, hi = min(src, dst), max(src, dst)
        for index in range(lo, hi + 1):
            busy_ticks[index] += packages * size
    return [
        (
            index,
            busy_ticks[index] * periods_us[index],
            production_ticks[index] * periods_us[index],
        )
        for index in sorted(periods_us)
    ]
