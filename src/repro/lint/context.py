"""What the lint rules see: one :class:`LintContext` per lint run.

A context aggregates whatever inputs are available — none are mandatory:

* the **application** as raw processes + flows.  Deliberately *not* a
  :class:`~repro.psdf.graph.PSDFGraph`: the graph constructor rejects
  cycles and disconnected processes outright, while lint must *diagnose*
  those states with stable rule ids instead of crashing on them;
* the **platform** as a :class:`~repro.model.elements.SegBusPlatform`
  (when one could be built);
* a **fault plan** (:class:`~repro.faults.model.FaultPlan`);
* the raw **scheme documents** the inputs came from, for XML-level rules
  and for anchoring findings to file names.

Rules guard on the pieces they need (``if ctx.platform is None: return``),
so a partial context simply runs fewer rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.model import FaultPlan
from repro.model.elements import SegBusPlatform
from repro.psdf.flow import PacketFlow
from repro.psdf.process import Process
from repro.xmlio.schema_writer import SchemaDocument

#: scheme-document classification labels used by the loader and rules
KIND_PSDF = "psdf"
KIND_PSM = "psm"
KIND_FAULT_PLAN = "faultplan"
KIND_UNKNOWN = "unknown"


@dataclass(frozen=True)
class SchemeFile:
    """One loaded scheme document plus its provenance."""

    path: str
    kind: str
    document: SchemaDocument


@dataclass
class LintContext:
    """Everything one lint run may inspect (all pieces optional)."""

    processes: Tuple[Process, ...] = ()
    flows: Tuple[PacketFlow, ...] = ()
    application_name: Optional[str] = None
    platform: Optional[SegBusPlatform] = None
    fault_plan: Optional[FaultPlan] = None
    documents: Tuple[SchemeFile, ...] = ()
    #: a :class:`~repro.psdf.modes.MultiModeApplication` when linting a
    #: multi-mode model (typed loosely: lint must not import psdf.modes
    #: just to hold a reference).  The mode-consistency rules (SB23x)
    #: guard on it; every other rule ignores it.
    multimode: Optional[object] = None
    #: file paths findings should anchor to, keyed by input kind
    source_files: Dict[str, str] = field(default_factory=dict)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_models(
        cls,
        application=None,
        platform: Optional[SegBusPlatform] = None,
        fault_plan: Optional[FaultPlan] = None,
        documents: Tuple[SchemeFile, ...] = (),
        multimode: Optional[object] = None,
    ) -> "LintContext":
        """Build from in-memory models.  ``application`` may be a
        :class:`~repro.psdf.graph.PSDFGraph`, a
        :class:`~repro.xmlio.psdf_parser.ParsedPSDF`, or any object with
        ``processes``/``flows`` attributes."""
        processes: Tuple[Process, ...] = ()
        flows: Tuple[PacketFlow, ...] = ()
        name: Optional[str] = None
        if application is not None:
            processes = tuple(application.processes)
            flows = tuple(application.flows)
            name = getattr(application, "name", None)
        return cls(
            processes=processes,
            flows=flows,
            application_name=name,
            platform=platform,
            fault_plan=fault_plan,
            documents=documents,
            multimode=multimode,
        )

    # -- application views -----------------------------------------------------

    @property
    def has_application(self) -> bool:
        return bool(self.processes)

    def process_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.processes)

    def outgoing(self, name: str) -> Tuple[PacketFlow, ...]:
        return tuple(f for f in self.flows if f.source == name)

    def incoming(self, name: str) -> Tuple[PacketFlow, ...]:
        return tuple(f for f in self.flows if f.target == name)

    def adjacency(self) -> Dict[str, List[str]]:
        """Successor map over declared processes (undeclared endpoints kept)."""
        out: Dict[str, List[str]] = {p.name: [] for p in self.processes}
        for flow in self.flows:
            out.setdefault(flow.source, []).append(flow.target)
            out.setdefault(flow.target, [])
        return out

    def strongly_connected_components(self) -> Tuple[Tuple[str, ...], ...]:
        """Tarjan SCCs of the flow graph, each sorted, larger-than-1 only.

        These are exactly the statically deadlocked process sets: with SDF
        "fire once all inputs arrived" semantics, no process of a cycle can
        ever fire.
        """
        graph = self.adjacency()
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[Tuple[str, ...]] = []
        counter = [0]

        # iterative Tarjan: (node, successor-iterator index) frames
        def strongconnect(root: str) -> None:
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work.pop()
                if child_i == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                successors = graph[node]
                for i in range(child_i, len(successors)):
                    succ = successors[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for name in graph:
            if name not in index:
                strongconnect(name)
        return tuple(sorted(sccs))

    def is_dag(self) -> bool:
        return not self.strongly_connected_components()

    def reachable_from_sources(self) -> Set[str]:
        """Processes reachable from the zero-indegree fire-at-t0 frontier."""
        graph = self.adjacency()
        indegree = {name: 0 for name in graph}
        for flow in self.flows:
            indegree[flow.target] = indegree.get(flow.target, 0) + 1
        frontier = [name for name, deg in indegree.items() if deg == 0]
        seen: Set[str] = set(frontier)
        while frontier:
            node = frontier.pop()
            for succ in graph.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    # -- platform views --------------------------------------------------------

    def placement(self) -> Optional[Dict[str, int]]:
        """Process → segment map, or ``None`` without a usable platform."""
        if self.platform is None:
            return None
        try:
            return self.platform.process_placement()
        except Exception:
            # duplicate mappings are reported by the platform rules
            return None

    def package_size(self) -> Optional[int]:
        if self.platform is None:
            return None
        return self.platform.package_size

    def bu_pairs(self) -> Tuple[Tuple[int, int], ...]:
        if self.platform is None:
            return ()
        return tuple(sorted((bu.left, bu.right) for bu in self.platform.border_units))

    def file_for(self, kind: str) -> Optional[str]:
        """The source file of the given input kind, when lint loaded files."""
        return self.source_files.get(kind)
