"""Static analysis for SegBus models: the ``segbus lint`` subsystem.

Generalises the DSL's OCL validation step into a rule engine with stable
ids (``SB101`` …), a PSDF static verifier, a pre-simulation hazard
detector, and XML scheme linting — all before any emulation runs.  See
``docs/LINTING.md`` for the rule catalogue.
"""

from repro.lint.context import (
    KIND_FAULT_PLAN,
    KIND_PSDF,
    KIND_PSM,
    KIND_UNKNOWN,
    LintContext,
    SchemeFile,
)
from repro.lint.core import (
    Finding,
    LintReport,
    Rule,
    RuleRegistry,
    Severity,
    SourceLocation,
    merge_reports,
)
from repro.lint.engine import (
    INTERNAL_RULE_ID,
    default_registry,
    lint_models,
    lint_multimode,
    lint_paths,
    registry_hash,
    run_rules,
)
from repro.lint.loader import classify_scheme, load_paths
from repro.lint.output import (
    FORMAT_JSON,
    FORMAT_SARIF,
    FORMAT_TEXT,
    FORMATS,
    format_json,
    format_sarif,
    format_text,
    render,
)

__all__ = [
    "Finding",
    "FORMATS",
    "FORMAT_JSON",
    "FORMAT_SARIF",
    "FORMAT_TEXT",
    "INTERNAL_RULE_ID",
    "KIND_FAULT_PLAN",
    "KIND_PSDF",
    "KIND_PSM",
    "KIND_UNKNOWN",
    "LintContext",
    "LintReport",
    "Rule",
    "RuleRegistry",
    "SchemeFile",
    "Severity",
    "SourceLocation",
    "classify_scheme",
    "default_registry",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_models",
    "lint_multimode",
    "lint_paths",
    "load_paths",
    "merge_reports",
    "registry_hash",
    "render",
    "run_rules",
]
