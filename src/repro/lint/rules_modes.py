"""Mode-consistency rules (``SB230``–``SB234``) for multi-mode applications.

A :class:`~repro.psdf.modes.MultiModeApplication` composes per-mode PSDF
graphs under a switch schedule; this family checks the *composition* —
undefined mode references, empty flow sets, unreachable modes, degenerate
phases and out-of-proportion transition costs.  The per-mode graphs
themselves are linted by the ordinary SB1xx/SB2xx/SB5xx families, one
pass per mode (:func:`repro.lint.engine.lint_multimode` orchestrates
both); every rule here guards on ``ctx.multimode`` and runs nowhere else.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.lint.context import LintContext
from repro.lint.core import Finding, RuleRegistry, Severity

CATEGORY = "modes"

#: fallback package size for the SB233 work proxy when no platform is in
#: the context (the paper's default)
_DEFAULT_PACKAGE_SIZE = 36


def _mode_work_ticks(graph, package_size: int) -> int:
    """A static work proxy: total production ticks of one mode iteration."""
    return sum(
        flow.packages(package_size) * flow.cost.ticks(package_size)
        for flow in graph.flows
    )


def _package_size(ctx: LintContext) -> int:
    if ctx.platform is not None:
        return ctx.platform.package_size
    return _DEFAULT_PACKAGE_SIZE


def _bu_count(ctx: LintContext) -> Optional[int]:
    if ctx.platform is not None:
        return max(ctx.platform.segment_count - 1, 0)
    return None


def register(registry: RuleRegistry) -> None:
    @registry.rule(
        "SB230",
        "undefined-mode-reference",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every schedule phase names a defined mode",
        rationale=(
            "a phase referencing an undefined mode has no flow set to "
            "execute; the run would abort at the switch point instead of "
            "at validation time"
        ),
        example="schedule phase 2 names 'jpeg' but only 'mp3' is defined",
        fix_hint="define the mode or fix the phase's mode name",
    )
    def _undefined_mode(ctx: LintContext) -> Iterable[Finding]:
        mm = ctx.multimode
        if mm is None:
            return
        defined = set(mm.modes)
        for index, phase in enumerate(mm.schedule.phases):
            if phase.mode not in defined:
                yield registry.get("SB230").finding(
                    f"phase {index} references undefined mode "
                    f"{phase.mode!r} (defined: "
                    f"{', '.join(sorted(defined)) or '(none)'})",
                    element=phase.mode,
                )

    @registry.rule(
        "SB231",
        "empty-mode-flow-set",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every scheduled mode carries at least one packet flow",
        rationale=(
            "a mode without flows transfers nothing: its iterations have "
            "zero duration, so dwell-based switch points can never resolve "
            "and the phase degenerates to a no-op that still charges "
            "transitions"
        ),
        example="mode 'idle' defined with an empty flow set yet scheduled",
        fix_hint="give the mode a flow set or drop it from the schedule",
    )
    def _empty_mode(ctx: LintContext) -> Iterable[Finding]:
        mm = ctx.multimode
        if mm is None:
            return
        scheduled = set(mm.schedule.scheduled_modes())
        for name in sorted(mm.modes):
            graph = mm.modes[name]
            if name in scheduled and not tuple(graph.flows):
                yield registry.get("SB231").finding(
                    f"scheduled mode {name!r} has an empty flow set",
                    element=name,
                )

    @registry.rule(
        "SB232",
        "unreachable-mode",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="every defined mode appears in the switch schedule",
        rationale=(
            "a defined-but-never-scheduled mode is dead configuration: its "
            "flow set is maintained and linted but can never execute — "
            "usually a stale mode or a schedule typo"
        ),
        example="modes {'mp3', 'jpeg'} defined, schedule only enters 'mp3'",
        fix_hint="schedule the mode or remove its definition",
    )
    def _unreachable_mode(ctx: LintContext) -> Iterable[Finding]:
        mm = ctx.multimode
        if mm is None:
            return
        for name in mm.unreachable_modes():
            yield registry.get("SB232").finding(
                f"mode {name!r} is defined but the schedule never enters it",
                element=name,
            )

    @registry.rule(
        "SB233",
        "transition-cost-out-of-proportion",
        severity=Severity.WARNING,
        category=CATEGORY,
        description=(
            "one mode switch costs less than the smallest scheduled "
            "mode's iteration work"
        ),
        rationale=(
            "when reconfiguration + BU flushing outweighs a whole "
            "iteration of useful work, the schedule thrashes: the platform "
            "spends more ticks switching than computing — either the "
            "transition spec is misconfigured or the phases are too short"
        ),
        example=(
            "reconfig_ticks=50000 against a mode whose iteration costs "
            "2000 production ticks"
        ),
        fix_hint=(
            "reduce the transition cost or lengthen the phases "
            "(more iterations per switch)"
        ),
    )
    def _transition_cost(ctx: LintContext) -> Iterable[Finding]:
        mm = ctx.multimode
        if mm is None:
            return
        scheduled = [
            name
            for name in mm.schedule.scheduled_modes()
            if name in mm.modes and tuple(mm.modes[name].flows)
        ]
        if not scheduled or mm.schedule.switch_count() == 0:
            return
        package_size = _package_size(ctx)
        bu_count = _bu_count(ctx)
        # without a platform, charge one flush as if every segment pair
        # had a BU on a 3-segment platform (the generator default)
        delay = mm.schedule.transition.delay_ticks(
            bu_count if bu_count is not None else 2
        )
        if delay == 0:
            return
        smallest = min(
            _mode_work_ticks(mm.modes[name], package_size)
            for name in scheduled
        )
        if delay > smallest:
            yield registry.get("SB233").finding(
                f"one mode switch costs {delay} CA tick(s), more than the "
                f"smallest scheduled mode's iteration work "
                f"({smallest} production tick(s))",
            )

    @registry.rule(
        "SB234",
        "degenerate-schedule-phase",
        severity=Severity.ERROR,
        category=CATEGORY,
        description=(
            "the schedule is non-empty and every phase resolves to at "
            "least one iteration"
        ),
        rationale=(
            "an empty schedule, a negative count, or a zero-iteration "
            "phase without a dwell can never execute; validate_for_run "
            "would reject the application at the first switch instead of "
            "statically"
        ),
        example="ModePhase('mp3', iterations=0) with no min_dwell_ticks",
        fix_hint=(
            "give the phase a positive iteration count or a positive "
            "min_dwell_ticks"
        ),
    )
    def _degenerate_phase(ctx: LintContext) -> Iterable[Finding]:
        mm = ctx.multimode
        if mm is None:
            return
        if not mm.schedule.phases:
            yield registry.get("SB234").finding(
                "the mode schedule has no phases"
            )
            return
        for index, phase in enumerate(mm.schedule.phases):
            if phase.is_degenerate:
                yield registry.get("SB234").finding(
                    f"phase {index} ({phase.mode!r}) is degenerate "
                    f"(iterations={phase.iterations}, "
                    f"min_dwell_ticks={phase.min_dwell_ticks})",
                    element=phase.mode,
                )
