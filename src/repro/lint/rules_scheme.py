"""Scheme-document rules (``SB4xx``): linting the XML artifacts themselves.

These rules look at the raw :class:`~repro.xmlio.schema_writer.SchemaDocument`
*before* any model parse, so a scheme too broken for
:func:`~repro.xmlio.psm_parser.parse_psm_xml` still yields precise findings
instead of one opaque parse error.  Referential integrity (undefined type
references, orphaned complex types, duplicate ids) is delegated to
:func:`repro.xmlio.schema_check.check_scheme` and its kind-tagged problem
entries; the PSM-dialect shape rules (segments without an arbiter or without
processes) are implemented here directly.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.lint.context import KIND_PSM, LintContext, SchemeFile
from repro.lint.core import Finding, RuleRegistry, Severity
from repro.xmlio.schema_check import (
    KIND_DUPLICATE_CHILD,
    KIND_DUPLICATE_TYPE,
    KIND_ORPHAN_TYPE,
    KIND_UNDEFINED_REFERENCE,
    check_scheme,
)
from repro.xmlio.schema_writer import ComplexType

CATEGORY = "scheme"

PARAM_TYPE = "Parameter"

#: schema_check problem kind → lint rule id
_PROBLEM_KIND_TO_RULE = {
    KIND_UNDEFINED_REFERENCE: "SB402",
    KIND_ORPHAN_TYPE: "SB403",
    KIND_DUPLICATE_TYPE: "SB404",
    KIND_DUPLICATE_CHILD: "SB404",
}


def _segment_index(type_name: str) -> Optional[int]:
    digits = type_name[len("Segment"):]
    return int(digits) if digits.isdigit() else None


def _psm_segment_types(scheme: SchemeFile) -> Iterable[ComplexType]:
    """The Segment complex types referenced from a PSM scheme's root."""
    doc = scheme.document
    if not doc.top_level:
        return
    try:
        root = doc.complex_type(doc.top_level[0].type)
    except Exception:
        return  # undefined root: SB402 already reports it
    for entry in root.children:
        if not entry.type.startswith("Segment"):
            continue
        try:
            yield doc.complex_type(entry.type)
        except Exception:
            continue  # undefined segment type: SB402 territory


def register(registry: RuleRegistry) -> None:
    @registry.rule(
        "SB401",
        "xml-parse-error",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every input file parses as a well-formed scheme document",
        rationale=(
            "nothing downstream — model parse, verifier, emulator — can run "
            "on a file that is not xs:schema XML"
        ),
        example="a truncated psm.xml, or a JSON file passed to segbus lint",
        fix_hint="regenerate the scheme with the M2T writers",
    )
    def _parse_error(ctx: LintContext) -> Iterable[Finding]:
        # Findings for this rule are produced by the loader, which is the
        # only place that still has the unparseable raw text in hand.
        return []

    @registry.rule(
        "SB402",
        "undefined-type-reference",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every referenced type is defined or terminal",
        rationale=(
            "a dangling type attribute crashes the emulator's setup halfway "
            "through parsing (section 3.5)"
        ),
        example='<xs:element name="p5" type="P5"/> with no P5 complexType',
        fix_hint="define the missing complexType or fix the reference",
    )
    def _undefined(ctx: LintContext) -> Iterable[Finding]:
        yield from _scheme_findings(registry, ctx, "SB402")

    @registry.rule(
        "SB403",
        "orphan-complex-type",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="every complex type is reachable from a top-level element",
        rationale=(
            "parsers ignore orphans, so an orphaned type is configuration "
            "that silently does nothing — usually a generator bug"
        ),
        example="an SA1 type left behind after its segment lost the arbiter",
        fix_hint="reference the type from the document root or delete it",
    )
    def _orphan(ctx: LintContext) -> Iterable[Finding]:
        yield from _scheme_findings(registry, ctx, "SB403")

    @registry.rule(
        "SB404",
        "duplicate-element-id",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="type names and per-type child names are unique",
        rationale=(
            "xs:all forbids duplicate ids; parsers keep only one of the "
            "duplicates, so half the configuration vanishes silently"
        ),
        example="two <xs:element name='p5' .../> children in one segment",
        fix_hint="rename or remove one of the duplicates",
    )
    def _duplicate(ctx: LintContext) -> Iterable[Finding]:
        yield from _scheme_findings(registry, ctx, "SB404")

    @registry.rule(
        "SB405",
        "psm-segment-without-arbiter",
        severity=Severity.ERROR,
        category=CATEGORY,
        description="every PSM segment type declares a Segment Arbiter child",
        rationale=(
            "a segment with no SA has no bus master arbitration — nothing "
            "on that segment can ever be granted the bus (section 2.1)"
        ),
        example='a Segment2 complexType with no <xs:element type="SA2"/>',
        fix_hint='add an <xs:element name="arbiter" type="SAn"/> child',
    )
    def _segment_without_arbiter(ctx: LintContext) -> Iterable[Finding]:
        rule = registry.get("SB405")
        for scheme in ctx.documents:
            if scheme.kind != KIND_PSM:
                continue
            for seg_type in _psm_segment_types(scheme):
                if any(
                    child.type.startswith("SA") for child in seg_type.children
                ):
                    continue
                yield rule.finding(
                    f"segment type {seg_type.name!r} declares no Segment "
                    "Arbiter (no child of an SA type)",
                    element=seg_type.name,
                    segment=_segment_index(seg_type.name),
                    file=scheme.path,
                )

    @registry.rule(
        "SB406",
        "psm-segment-without-process",
        severity=Severity.WARNING,
        category=CATEGORY,
        description="every PSM segment type hosts at least one process",
        rationale=(
            "an empty segment adds bus sections and arbitration latency "
            "without doing work; SEG-FU-1 catches this post-parse, this "
            "rule catches it even when the parse fails"
        ),
        example="a Segment3 type holding only its arbiter and frequency",
        fix_hint="map a process onto the segment or drop the segment",
    )
    def _segment_without_process(ctx: LintContext) -> Iterable[Finding]:
        rule = registry.get("SB406")
        for scheme in ctx.documents:
            if scheme.kind != KIND_PSM:
                continue
            for seg_type in _psm_segment_types(scheme):
                hosts_process = any(
                    child.type != PARAM_TYPE
                    and not child.type.startswith("SA")
                    and not child.type.startswith("BU")
                    for child in seg_type.children
                )
                if not hosts_process:
                    yield rule.finding(
                        f"segment type {seg_type.name!r} hosts no process "
                        "(only arbiter/BU/parameter children)",
                        element=seg_type.name,
                        segment=_segment_index(seg_type.name),
                        file=scheme.path,
                    )


def _scheme_findings(
    registry: RuleRegistry, ctx: LintContext, rule_id: str
) -> Iterable[Finding]:
    """Findings of ``rule_id`` from check_scheme over every document."""
    rule = registry.get(rule_id)
    for scheme in ctx.documents:
        for problem in check_scheme(scheme.document).entries:
            if _PROBLEM_KIND_TO_RULE.get(problem.kind) != rule_id:
                continue
            yield rule.finding(
                problem.message,
                element=problem.type_name,
                file=scheme.path,
            )
