"""Platform (PSM) structural rules: the OCL constraints as ``SB1xx``.

Migration layer: every entry of
:data:`repro.model.constraints.STRUCTURAL_CONSTRAINTS` is registered as one
lint rule, delegating to the constraint's own checker so the DSL semantics
stay defined in exactly one place.  The MAP-2/MAP-3 application↔platform
cross-checks of :mod:`repro.model.validation` follow as ``SB111``/``SB112``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.lint.context import LintContext
from repro.lint.core import Finding, Rule, RuleRegistry, Severity, SourceLocation
from repro.model.constraints import Constraint, STRUCTURAL_CONSTRAINTS

CATEGORY = "platform"

#: constraint identifier → (lint id, lint name, example trigger, fix hint)
CONSTRAINT_RULE_TABLE: Dict[str, Tuple[str, str, str, str]] = {
    "SBP-CA-1": (
        "SB101",
        "missing-central-arbiter",
        "a platform built without PlatformBuilder.central_arbiter()",
        "add exactly one CA element to the platform",
    ),
    "SBP-SEG-1": (
        "SB102",
        "platform-without-segments",
        "a platform whose segments list is empty",
        "add at least one segment",
    ),
    "SBP-SEG-2": (
        "SB103",
        "non-contiguous-segment-indices",
        "segments indexed 1 and 3 with no segment 2",
        "renumber segments contiguously starting at 1",
    ),
    "SEG-FU-1": (
        "SB104",
        "segment-without-fu",
        "a segment declaring an SA but no functional units",
        "map at least one process onto the segment or remove it",
    ),
    "SEG-SA-1": (
        "SB105",
        "segment-without-sa",
        "a segment whose arbiter was removed after construction",
        "attach exactly one Segment Arbiter to the segment",
    ),
    "SBP-BU-1": (
        "SB106",
        "border-unit-topology",
        "three segments with only BU12, or a stray BU23 on a 2-segment bus",
        "connect each pair of adjacent segments through exactly one BU",
    ),
    "FU-EP-1": (
        "SB107",
        "fu-without-endpoint",
        "an FU with neither Master nor Slave sub-element",
        "give the FU a Master (it sends) and/or a Slave (it receives)",
    ),
    "MAP-1": (
        "SB108",
        "process-mapped-twice",
        "process P3 placed on both segment 1 and segment 2",
        "keep exactly one FU per application process",
    ),
    "SBP-PKG-1": (
        "SB109",
        "non-positive-package-size",
        "packageSize_0 in the platform scheme",
        "set the package size to a positive number of data items",
    ),
    "SBP-CLK-1": (
        "SB110",
        "non-positive-clock",
        "a segment or CA with frequency 0 MHz",
        "give every clock domain a positive frequency",
    ),
}


def _constraint_check(constraint: Constraint, rule_holder: List[Rule]):
    def check(ctx: LintContext) -> Iterable[Finding]:
        if ctx.platform is None:
            return []
        rule = rule_holder[0]
        psm_file = ctx.file_for("psm")
        return [
            rule.finding(
                diagnostic.message,
                element=diagnostic.element,
                segment=diagnostic.segment,
                file=psm_file,
            )
            for diagnostic in constraint.evaluate_structured(ctx.platform)
        ]

    return check


def register(registry: RuleRegistry) -> None:
    for constraint in STRUCTURAL_CONSTRAINTS:
        rule_id, name, example, fix = CONSTRAINT_RULE_TABLE[constraint.identifier]
        holder: List[Rule] = []
        rule = Rule(
            id=rule_id,
            name=name,
            severity=Severity.ERROR,
            category=CATEGORY,
            description=constraint.rule,
            rationale=(
                f"OCL constraint {constraint.identifier} of the SegBus DSL "
                "(paper section 2.2): structurally broken platforms crash or "
                "deadlock the emulator instead of producing estimates."
            ),
            example=example,
            check=_constraint_check(constraint, holder),
            fix_hint=fix,
        )
        holder.append(rule)
        registry.register(rule)

    @registry.rule(
        "SB111",
        "unmapped-process",
        severity=Severity.ERROR,
        category="mapping",
        description="every application process is placed on some segment",
        rationale=(
            "the emulator needs a segment for every PSDF process; an "
            "unmapped process makes the run unroutable (MAP-2)"
        ),
        example="application declares P5 but no segment hosts an FU for it",
        fix_hint="place the process on a segment (PlatformBuilder.place)",
    )
    def _unmapped(ctx: LintContext) -> Iterable[Finding]:
        yield from _cross_findings(ctx, "MAP-2", "SB111")

    @registry.rule(
        "SB112",
        "stray-mapped-process",
        severity=Severity.ERROR,
        category="mapping",
        description="the platform maps no process absent from the application",
        rationale=(
            "a stray FU signals a stale platform model; its schedule entry "
            "would never fire and its arbiter slot is wasted (MAP-3)"
        ),
        example="platform hosts an FU for P9 but the application has no P9",
        fix_hint="remove the stray FU or add the process to the application",
    )
    def _stray(ctx: LintContext) -> Iterable[Finding]:
        yield from _cross_findings(ctx, "MAP-3", "SB112")


def _cross_findings(
    ctx: LintContext, legacy_id: str, rule_id: str
) -> Iterable[Finding]:
    if ctx.platform is None or not ctx.has_application:
        return
    from repro.model.validation import cross_check_records

    psm_file = ctx.file_for("psm")
    for record in cross_check_records(ctx.platform, ctx.process_names()):
        if record.rule_id != legacy_id:
            continue
        yield Finding(
            rule_id=rule_id,
            severity=Severity.ERROR,
            category="mapping",
            message=record.message,
            location=SourceLocation(
                file=psm_file, element=record.element, segment=record.segment
            ),
        )
