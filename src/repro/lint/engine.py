"""The lint engine: registry assembly and rule execution.

:func:`default_registry` assembles the full ``SB1xx``–``SB5xx`` catalogue
from the rule modules; :func:`run_rules` executes a registry over one
:class:`~repro.lint.context.LintContext`.  A rule that raises is reported
as an ``SB999`` internal-error finding instead of aborting the run — one
broken checker must not hide every other rule's findings.

Convenience fronts: :func:`lint_models` for in-memory objects (the
emulator's strict mode), :func:`lint_paths` for XML scheme files (the CLI).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

from repro.lint.context import LintContext, SchemeFile
from repro.lint.core import LintReport, Rule, RuleRegistry, Severity

#: rule modules contributing to the default registry, in id order
_RULE_MODULE_NAMES = (
    "repro.lint.rules_platform",
    "repro.lint.rules_psdf",
    "repro.lint.rules_hazards",
    "repro.lint.rules_scheme",
    "repro.lint.rules_modes",
    "repro.lint.rules_performance",
)

INTERNAL_RULE_ID = "SB999"


def default_registry() -> RuleRegistry:
    """A fresh registry holding the complete built-in rule catalogue."""
    import importlib

    registry = RuleRegistry()
    for module_name in _RULE_MODULE_NAMES:
        importlib.import_module(module_name).register(registry)
    registry.register(
        Rule(
            id=INTERNAL_RULE_ID,
            name="internal-error",
            severity=Severity.ERROR,
            category="engine",
            description="every rule checker runs to completion",
            rationale=(
                "a crashing checker would otherwise silently skip its rule; "
                "surfacing the crash keeps the lint run trustworthy"
            ),
            example="a rule tripping over an unexpected model shape",
            check=lambda ctx: [],
            fix_hint="report the traceback as a bug",
        )
    )
    return registry


def registry_hash(registry: Optional[RuleRegistry] = None) -> str:
    """SHA-256 fingerprint of a registry's finding-shaping surface.

    Hashes every rule's ``(id, name, severity, category, description)``
    in id order — the fields that determine which findings a lint run can
    produce and how they read.  The serving result cache keys lint and
    strict-emulate responses on this hash (docs/SERVING.md), so adding,
    removing, re-levelling or rewording a rule invalidates previously
    cached findings instead of replaying them stale.
    """
    registry = registry if registry is not None else default_registry()
    digest = hashlib.sha256()
    for rule in registry:
        digest.update(
            f"{rule.id}|{rule.name}|{rule.severity.name}|"
            f"{rule.category}|{rule.description}\n".encode("utf-8")
        )
    return digest.hexdigest()


def run_rules(
    context: LintContext,
    registry: Optional[RuleRegistry] = None,
    disable: Sequence[str] = (),
) -> LintReport:
    """Execute every registered rule over ``context``."""
    registry = registry if registry is not None else default_registry()
    disabled = set(disable)
    internal = registry.get(INTERNAL_RULE_ID)
    report = LintReport()
    for rule in registry:
        if rule.id in disabled or rule.id == INTERNAL_RULE_ID:
            continue
        report.checked_rules += 1
        try:
            report.extend(rule.check(context))
        except Exception as exc:
            report.add(
                internal.finding(
                    f"rule {rule.id} ({rule.name}) crashed: "
                    f"{type(exc).__name__}: {exc}"
                )
            )
    return report


def lint_models(
    application=None,
    platform=None,
    fault_plan=None,
    documents: Sequence[SchemeFile] = (),
    registry: Optional[RuleRegistry] = None,
    disable: Sequence[str] = (),
) -> LintReport:
    """Lint in-memory models (the emulator strict-mode entry point)."""
    context = LintContext.from_models(
        application=application,
        platform=platform,
        fault_plan=fault_plan,
        documents=tuple(documents),
    )
    return run_rules(context, registry=registry, disable=disable)


def lint_multimode(
    multimode,
    platform=None,
    registry: Optional[RuleRegistry] = None,
    disable: Sequence[str] = (),
) -> LintReport:
    """Lint a multi-mode application: composition rules + per-mode passes.

    One pass runs the mode-consistency family (``SB23x``) over the
    composition; then every defined mode's graph goes through the full
    single-mode catalogue against the shared ``platform``.  The per-mode
    passes disable ``SB112`` (stray mapped process): the platform maps the
    *union* of every mode's processes, so processes of the other modes are
    expected strays.  Findings merge with the usual key-based dedup.
    """
    registry = registry if registry is not None else default_registry()
    context = LintContext.from_models(platform=platform, multimode=multimode)
    combined = run_rules(context, registry=registry, disable=disable)
    for name in sorted(multimode.modes):
        sub = lint_models(
            application=multimode.modes[name],
            platform=platform,
            registry=registry,
            disable=tuple(disable) + ("SB112",),
        )
        combined.checked_rules += sub.checked_rules
        for finding in sub.findings:
            combined.add(finding)
    return combined


def lint_paths(
    paths: Sequence[str],
    registry: Optional[RuleRegistry] = None,
    disable: Sequence[str] = (),
) -> LintReport:
    """Lint XML scheme files (the ``segbus lint`` entry point)."""
    registry = registry if registry is not None else default_registry()
    context, loader_findings = _load(paths, registry)
    report = run_rules(context, registry=registry, disable=disable)
    disabled = set(disable)
    report.extend(
        f for f in loader_findings if f.rule_id not in disabled
    )
    report.targets = [str(p) for p in paths]
    return report


def _load(paths: Sequence[str], registry: RuleRegistry):
    from repro.lint.loader import load_paths

    return load_paths(paths, registry)
