"""The declarative rule engine behind ``segbus lint``.

The paper's DSL rejects ill-formed PSMs with OCL structural constraints
*before* any emulation (section 2.2).  This module generalises that idea
into a conventional lint architecture:

* a :class:`Rule` is one statically decidable property with a stable
  identifier (``SB101`` …), a default :class:`Severity`, a category and a
  human rationale;
* a :class:`Finding` is one concrete breach — rule id, severity, message,
  :class:`SourceLocation` and an optional fix-it hint;
* a :class:`RuleRegistry` collects rules (uniqueness of ids enforced) and
  is what the engine iterates;
* a :class:`LintReport` aggregates findings, deduplicates them, computes
  the process exit code (0 clean, 1 warnings, 2 errors) and serializes to
  the machine-readable shape shared with
  :meth:`repro.model.validation.ValidationReport.to_dict`.

This module is dependency-free within the library (it imports nothing from
:mod:`repro` beyond the stdlib) so every other layer may import it without
cycles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """Lint severity ladder; comparisons follow ERROR > WARNING > INFO."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding anchors: a file, a model element, a segment index.

    All parts are optional — a platform built in memory has no file, a
    platform-wide property has no single element.
    """

    file: Optional[str] = None
    element: Optional[str] = None
    segment: Optional[int] = None

    @property
    def is_empty(self) -> bool:
        return self.file is None and self.element is None and self.segment is None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        if self.file is not None:
            out["file"] = self.file
        if self.element is not None:
            out["element"] = self.element
        if self.segment is not None:
            out["segment"] = self.segment
        return out

    def __str__(self) -> str:
        parts: List[str] = []
        if self.file:
            parts.append(self.file)
        if self.segment is not None:
            parts.append(f"segment {self.segment}")
        if self.element:
            parts.append(self.element)
        return ":".join(parts)


@dataclass(frozen=True)
class Finding:
    """One concrete rule breach (or advisory note)."""

    rule_id: str
    severity: Severity
    category: str
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    fix_hint: Optional[str] = None

    def key(self) -> Tuple[str, str, str]:
        """Deduplication key: same rule, same message, same place."""
        return (self.rule_id, self.message, str(self.location))

    def with_file(self, file: Optional[str]) -> "Finding":
        """A copy anchored to ``file`` (keeps element/segment parts)."""
        if file is None or self.location.file is not None:
            return self
        return replace(self, location=replace(self.location, file=file))

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "category": self.category,
            "message": self.message,
        }
        if not self.location.is_empty:
            out["location"] = self.location.to_dict()
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        return out

    def format(self) -> str:
        where = str(self.location)
        prefix = f"{where}: " if where else ""
        hint = f" (hint: {self.fix_hint})" if self.fix_hint else ""
        return f"{prefix}{self.severity.value} {self.rule_id}: {self.message}{hint}"


#: a rule's checker: context in, findings out (the context type lives in
#: :mod:`repro.lint.context`; typed loosely here to keep core import-free)
RuleCheck = Callable[[object], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    name: str
    severity: Severity
    category: str
    description: str
    rationale: str
    example: str
    check: RuleCheck
    fix_hint: Optional[str] = None

    def finding(
        self,
        message: str,
        *,
        severity: Optional[Severity] = None,
        element: Optional[str] = None,
        segment: Optional[int] = None,
        file: Optional[str] = None,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding carrying this rule's identity and defaults."""
        return Finding(
            rule_id=self.id,
            severity=severity or self.severity,
            category=self.category,
            message=message,
            location=SourceLocation(file=file, element=element, segment=segment),
            fix_hint=fix_hint if fix_hint is not None else self.fix_hint,
        )


class RuleRegistry:
    """The rule catalogue: id-unique, iteration in id order."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate lint rule id {rule.id!r}")
        if any(r.name == rule.name for r in self._rules.values()):
            raise ValueError(f"duplicate lint rule name {rule.name!r}")
        self._rules[rule.id] = rule
        return rule

    def rule(
        self,
        id: str,
        name: str,
        *,
        severity: Severity,
        category: str,
        description: str,
        rationale: str,
        example: str,
        fix_hint: Optional[str] = None,
    ) -> Callable[[RuleCheck], Rule]:
        """Decorator form: ``@registry.rule("SB201", "orphan-process", ...)``."""

        def wrap(check: RuleCheck) -> Rule:
            return self.register(
                Rule(
                    id=id,
                    name=name,
                    severity=severity,
                    category=category,
                    description=description,
                    rationale=rationale,
                    example=example,
                    check=check,
                    fix_hint=fix_hint,
                )
            )

        return wrap

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"no lint rule with id {rule_id!r}") from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(sorted(self._rules.values(), key=lambda r: r.id))

    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self)

    def categories(self) -> Tuple[str, ...]:
        return tuple(sorted({r.category for r in self._rules.values()}))


@dataclass
class LintReport:
    """The aggregated outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    checked_rules: int = 0
    targets: List[str] = field(default_factory=list)

    def add(self, finding: Finding) -> bool:
        """Append ``finding`` unless an identical one is already recorded."""
        if any(existing.key() == finding.key() for existing in self.findings):
            return False
        self.findings.append(finding)
        return True

    def extend(self, findings: Iterable[Finding]) -> None:
        for finding in findings:
            self.add(finding)

    # -- queries ---------------------------------------------------------------

    def by_severity(self, severity: Severity) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity is severity)

    @property
    def errors(self) -> Tuple[Finding, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Finding, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> Tuple[Finding, ...]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when nothing of warning severity or above was found."""
        return not self.errors and not self.warnings

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean (or info only), 1 warnings, 2 errors."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def rule_ids(self) -> Tuple[str, ...]:
        return tuple(sorted({f.rule_id for f in self.findings}))

    def sorted_findings(self) -> Tuple[Finding, ...]:
        """Findings ordered most-severe first, then by rule id and location."""
        return tuple(
            sorted(
                self.findings,
                key=lambda f: (-f.severity.rank, f.rule_id, str(f.location), f.message),
            )
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "exit_code": self.exit_code,
            "checked_rules": self.checked_rules,
            "targets": list(self.targets),
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def merge_reports(reports: Sequence[LintReport]) -> LintReport:
    """Combine several reports into one (deduplicating across them)."""
    merged = LintReport()
    for report in reports:
        merged.checked_rules = max(merged.checked_rules, report.checked_rules)
        for target in report.targets:
            if target not in merged.targets:
                merged.targets.append(target)
        merged.extend(report.findings)
    return merged
