"""Package arithmetic: turning data items into bus packages.

Data in PSDF is *"organized in data items, which are later transformed into
packets according to package size during execution"* (section 3.1).  The
helpers here implement that transformation and are shared by the emulator,
the reference simulator and the analysis code, so package accounting can
never drift between subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import PSDFError


def packages_for_items(data_items: int, package_size: int) -> int:
    """Number of packages needed to carry ``data_items`` (``ceil(D/s)``).

    >>> packages_for_items(576, 36)
    16
    >>> packages_for_items(37, 36)
    2
    """
    if data_items < 0:
        raise PSDFError(f"data items must be non-negative, got {data_items}")
    if package_size <= 0:
        raise PSDFError(f"package size must be positive, got {package_size}")
    return -(-data_items // package_size)


@dataclass(frozen=True)
class Package:
    """One package of a flow.

    ``payload_items`` may be smaller than the platform package size for the
    final package of a flow whose D is not a multiple of s; on the bus the
    package still occupies ``package_size`` transfer slots (the platform
    moves fixed-size packages, section 3.1).
    """

    source: str
    target: str
    sequence: int
    payload_items: int

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise PSDFError(f"package sequence must be non-negative, got {self.sequence}")
        if self.payload_items <= 0:
            raise PSDFError(
                f"package payload must be positive, got {self.payload_items}"
            )


def split_into_packages(
    source: str, target: str, data_items: int, package_size: int
) -> List[Package]:
    """Split a flow's data items into its package sequence.

    >>> pkgs = split_into_packages("P1", "P3", 40, 36)
    >>> [(p.sequence, p.payload_items) for p in pkgs]
    [(0, 36), (1, 4)]
    """
    count = packages_for_items(data_items, package_size)
    packages: List[Package] = []
    remaining = data_items
    for seq in range(count):
        payload = min(package_size, remaining)
        packages.append(
            Package(source=source, target=target, sequence=seq, payload_items=payload)
        )
        remaining -= payload
    return packages
