"""The PSDF graph: processes plus packet flows, with well-formedness checks.

The graph is the unit handed to the M2T transformation (one ``complexType``
per process, one ``element`` per flow) and, together with a PSM, to the
emulator.  Validation enforces the PSDF definition of section 3.1:

* flow ``T`` values form a non-strict ascending chain once sorted — i.e. they
  are positive integers; equal values mark flows that may run concurrently;
* every flow's endpoints are declared processes;
* the graph is acyclic (SDF firing with "fire once all inputs arrived"
  semantics deadlocks on a cycle);
* declared ``InitialNode``/``FinalNode`` stereotypes match connectivity;
* a source emits at most one flow per (target, order) pair — the paper's
  side condition that flows of one source/destination pair are aggregated.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PSDFError
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.process import Process, ProcessKind


class PSDFGraph:
    """A validated Packet SDF application model.

    The constructor copies its inputs; a graph is immutable after
    construction, which lets the emulator and the placement tools share one
    instance freely.

    >>> g = PSDFGraph.from_edges([("P0", "P1", 576, 1, 250)])
    >>> g.flow("P0", "P1").data_items
    576
    """

    def __init__(
        self,
        processes: Iterable[Process],
        flows: Iterable[PacketFlow],
        name: str = "application",
    ) -> None:
        self.name = name
        self._processes: Dict[str, Process] = {}
        for proc in processes:
            if proc.name in self._processes:
                raise PSDFError(f"duplicate process name {proc.name!r}")
            self._processes[proc.name] = proc
        self._flows: List[PacketFlow] = sorted(
            flows, key=lambda f: (f.order, f.source, f.target)
        )
        self._outgoing: Dict[str, List[PacketFlow]] = {p: [] for p in self._processes}
        self._incoming: Dict[str, List[PacketFlow]] = {p: [] for p in self._processes}
        seen: set = set()
        for flow in self._flows:
            for endpoint in (flow.source, flow.target):
                if endpoint not in self._processes:
                    raise PSDFError(
                        f"flow {flow.source}->{flow.target} references undeclared "
                        f"process {endpoint!r}"
                    )
            key = (flow.source, flow.target, flow.order)
            if key in seen:
                raise PSDFError(
                    f"duplicate flow {flow.source}->{flow.target} with order "
                    f"{flow.order}; aggregate the data items into one flow"
                )
            seen.add(key)
            self._outgoing[flow.source].append(flow)
            self._incoming[flow.target].append(flow)
        self._check_acyclic()
        self._check_stereotypes()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[Tuple],
        name: str = "application",
        kinds: Optional[Mapping[str, ProcessKind]] = None,
    ) -> "PSDFGraph":
        """Build a graph from ``(source, target, D, T, C-or-FlowCost)`` tuples.

        Processes are inferred from edge endpoints; ``kinds`` overrides the
        inferred stereotype (sources become ``InitialNode`` and sinks
        ``FinalNode`` automatically).
        """
        names: Dict[str, None] = {}
        flows: List[PacketFlow] = []
        for edge in edges:
            if len(edge) != 5:
                raise PSDFError(
                    f"edge tuple must be (source, target, D, T, C), got {edge!r}"
                )
            source, target, items, order, cost = edge
            if isinstance(cost, int):
                cost = FlowCost.constant(cost)
            flows.append(
                PacketFlow(
                    source=source,
                    target=target,
                    data_items=items,
                    order=order,
                    cost=cost,
                )
            )
            names.setdefault(source)
            names.setdefault(target)
        sources = {f.source for f in flows}
        targets = {f.target for f in flows}
        processes = []
        for proc_name in names:
            if kinds and proc_name in kinds:
                kind = kinds[proc_name]
            elif proc_name not in targets:
                kind = ProcessKind.INITIAL
            elif proc_name not in sources:
                kind = ProcessKind.FINAL
            else:
                kind = ProcessKind.PROCESS
            processes.append(Process(proc_name, kind))
        return cls(processes, flows, name=name)

    # -- queries ---------------------------------------------------------------

    @property
    def processes(self) -> Tuple[Process, ...]:
        return tuple(self._processes.values())

    @property
    def process_names(self) -> Tuple[str, ...]:
        return tuple(self._processes)

    @property
    def flows(self) -> Tuple[PacketFlow, ...]:
        return tuple(self._flows)

    def __len__(self) -> int:
        return len(self._processes)

    def __contains__(self, name: str) -> bool:
        return name in self._processes

    def __iter__(self) -> Iterator[Process]:
        return iter(self._processes.values())

    def process(self, name: str) -> Process:
        try:
            return self._processes[name]
        except KeyError:
            raise PSDFError(f"unknown process {name!r}") from None

    def flow(self, source: str, target: str) -> PacketFlow:
        """The unique flow ``source -> target`` (raises if absent/ambiguous)."""
        matches = [f for f in self._outgoing.get(source, ()) if f.target == target]
        if not matches:
            raise PSDFError(f"no flow {source}->{target}")
        if len(matches) > 1:
            raise PSDFError(
                f"{len(matches)} flows {source}->{target}; select by order instead"
            )
        return matches[0]

    def outgoing(self, source: str) -> Tuple[PacketFlow, ...]:
        """Flows emitted by ``source``, in ascending T order."""
        self.process(source)
        return tuple(self._outgoing[source])

    def incoming(self, target: str) -> Tuple[PacketFlow, ...]:
        """Flows consumed by ``target``, in ascending T order."""
        self.process(target)
        return tuple(self._incoming[target])

    def initial_processes(self) -> Tuple[Process, ...]:
        """Processes with no incoming flows (fire at t = 0)."""
        return tuple(p for p in self if not self._incoming[p.name])

    def final_processes(self) -> Tuple[Process, ...]:
        """Processes with no outgoing flows (system outputs)."""
        return tuple(p for p in self if not self._outgoing[p.name])

    def total_data_items(self) -> int:
        """Sum of D over all flows — total traffic of the application."""
        return sum(f.data_items for f in self._flows)

    def total_packages(self, package_size: int) -> int:
        """Total number of package transactions at ``package_size``."""
        return sum(f.packages(package_size) for f in self._flows)

    def orders(self) -> Tuple[int, ...]:
        """The distinct T values present, ascending."""
        return tuple(sorted({f.order for f in self._flows}))

    def topological_order(self) -> Tuple[str, ...]:
        """Process names in a deterministic topological order."""
        indegree = {name: len(self._incoming[name]) for name in self._processes}
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        out: List[str] = []
        while ready:
            name = ready.pop(0)
            out.append(name)
            for flow in self._outgoing[name]:
                indegree[flow.target] -= 1
                if indegree[flow.target] == 0:
                    # insertion keeps `ready` sorted for determinism
                    lo = 0
                    while lo < len(ready) and ready[lo] < flow.target:
                        lo += 1
                    ready.insert(lo, flow.target)
        if len(out) != len(self._processes):  # pragma: no cover - guarded in ctor
            raise PSDFError("graph contains a cycle")
        return tuple(out)

    def depth(self) -> int:
        """Length (in edges) of the longest path — the pipeline depth."""
        longest: Dict[str, int] = {name: 0 for name in self._processes}
        for name in self.topological_order():
            for flow in self._outgoing[name]:
                longest[flow.target] = max(longest[flow.target], longest[name] + 1)
        return max(longest.values(), default=0)

    # -- validation --------------------------------------------------------------

    def _check_acyclic(self) -> None:
        indegree = {name: len(self._incoming[name]) for name in self._processes}
        ready = [name for name, deg in indegree.items() if deg == 0]
        visited = 0
        while ready:
            name = ready.pop()
            visited += 1
            for flow in self._outgoing[name]:
                indegree[flow.target] -= 1
                if indegree[flow.target] == 0:
                    ready.append(flow.target)
        if visited != len(self._processes):
            cyclic = sorted(name for name, deg in indegree.items() if deg > 0)
            raise PSDFError(
                "PSDF graph contains a cycle through processes: " + ", ".join(cyclic)
            )

    def _check_stereotypes(self) -> None:
        for proc in self:
            has_in = bool(self._incoming[proc.name])
            has_out = bool(self._outgoing[proc.name])
            if proc.kind is ProcessKind.INITIAL and has_in:
                raise PSDFError(
                    f"{proc.name} is stereotyped InitialNode but has incoming flows"
                )
            if proc.kind is ProcessKind.FINAL and has_out:
                raise PSDFError(
                    f"{proc.name} is stereotyped FinalNode but has outgoing flows"
                )
            if not has_in and not has_out and len(self._flows) > 0:
                raise PSDFError(f"process {proc.name} is disconnected")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PSDFGraph({self.name!r}, {len(self._processes)} processes, "
            f"{len(self._flows)} flows)"
        )
