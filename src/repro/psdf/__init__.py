"""Packet Synchronous Data Flow (PSDF) application models.

PSDF (paper section 3.1) is a customized Synchronous Data Flow dialect whose
operational semantics mirror the SegBus platform: *processes* transform input
data packets into output ones and *packet flows* carry data between them.
A packet flow is the tuple ``(P_t, D, T, C)``:

``P_t``
    the target process of the transactions,
``D``
    the number of data items emitted by the source towards that target
    (transformed into ``ceil(D / s)`` packages for package size ``s``),
``T``
    a relative ordering number among the flows of the system (flows sharing
    a ``T`` value may execute concurrently),
``C``
    the clock ticks the producing process consumes before sending one
    package.

This package provides the flow/process/graph data model, validation of the
PSDF well-formedness rules, the communication matrix of Fig. 8, package-size
arithmetic and schedule extraction used by the emulator's arbiters.
"""

from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.process import Process, ProcessKind
from repro.psdf.graph import PSDFGraph
from repro.psdf.matrix import CommunicationMatrix, build_communication_matrix
from repro.psdf.packetize import packages_for_items, split_into_packages, Package
from repro.psdf.schedule import Schedule, ScheduledTransfer, extract_schedule
from repro.psdf.metrics import (
    WorkloadSummary,
    communication_to_computation,
    max_parallelism,
    parallelism_profile,
    summary,
    traffic_concentration,
)
from repro.psdf.generators import (
    chain_psdf,
    fork_join_psdf,
    random_dag_psdf,
    stereo_pipeline_psdf,
)
from repro.psdf.modes import (
    ModePhase,
    ModeSchedule,
    MultiModeApplication,
    TransitionSpec,
    resolve_iterations,
)

__all__ = [
    "FlowCost",
    "PacketFlow",
    "Process",
    "ProcessKind",
    "PSDFGraph",
    "CommunicationMatrix",
    "build_communication_matrix",
    "packages_for_items",
    "split_into_packages",
    "Package",
    "Schedule",
    "ScheduledTransfer",
    "extract_schedule",
    "chain_psdf",
    "fork_join_psdf",
    "random_dag_psdf",
    "stereo_pipeline_psdf",
    "ModePhase",
    "ModeSchedule",
    "MultiModeApplication",
    "TransitionSpec",
    "resolve_iterations",
    "WorkloadSummary",
    "communication_to_computation",
    "max_parallelism",
    "parallelism_profile",
    "summary",
    "traffic_concentration",
]
