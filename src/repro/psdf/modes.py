"""Multi-mode PSDF applications with transition-delay accounting.

A single PSDF graph describes one steady-state *mode* of an application.
Real streaming systems switch between flow sets at runtime — an MP3
decoding phase followed by a JPEG one, a low-power profile alternating
with a burst profile.  Jung/Oh/Ha's multi-mode dataflow work (PAPERS.md)
gives the semantic template this module reproduces on SegBus:

* a :class:`MultiModeApplication` holds N named per-mode
  :class:`~repro.psdf.graph.PSDFGraph` flow sets plus a
  :class:`ModeSchedule` — the ordered phases the platform executes;
* each :class:`ModePhase` runs its mode for a number of completed graph
  iterations, or dwells for a minimum number of CA ticks (the switch
  point is then resolved against the contention-free analytic iteration
  time — a *static* schedule decision, so every engine and estimator
  counts iterations identically, see :func:`resolve_iterations`);
* a :class:`TransitionSpec` charges the mode-switch cost: in-flight
  packages drain (every engine finishes the iteration — the kernels
  refuse to end with queued packages, so drainage is structural, not
  hopeful), the BU FIFOs flush (``flush_ticks_per_bu`` per border unit)
  and the platform reconfigures (``reconfig_ticks``), all in CA ticks.

Mode semantics deliberately compose *complete iterations*: the SegBus
schedule ROM is per-mode, so a switch can only happen on an iteration
boundary after the bus has drained — exactly the points where the
kernel's end-of-run invariants (empty BU queues, all processes done)
already hold.  That makes the per-phase behaviour of the stepped, fast
and batch engines byte-identical by construction, which the three-way
ENG-1 oracle then enforces on the composed trace digests.

This module is pure data + arithmetic: the execution composition lives
in :mod:`repro.emulator.multimode`, the estimate composition in
:mod:`repro.analysis.analytic` / :mod:`repro.analysis.stochastic`, and
the static checks in :mod:`repro.lint.rules_modes` (``SB230``–``SB234``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ModeError
from repro.psdf.graph import PSDFGraph


@dataclass(frozen=True)
class TransitionSpec:
    """The cost of one mode switch, in CA clock ticks.

    ``reconfig_ticks`` charges the platform reconfiguration (schedule ROM
    swap, arbiter reset); ``flush_ticks_per_bu`` charges flushing one
    border-unit FIFO — the total flush is linear in the number of BUs the
    platform actually has.  A zero spec makes multi-mode composition
    degenerate to back-to-back single-mode runs (pinned by the property
    suite).
    """

    reconfig_ticks: int = 0
    flush_ticks_per_bu: int = 0

    def __post_init__(self) -> None:
        if self.reconfig_ticks < 0:
            raise ModeError(
                f"reconfig_ticks must be non-negative, got {self.reconfig_ticks}"
            )
        if self.flush_ticks_per_bu < 0:
            raise ModeError(
                "flush_ticks_per_bu must be non-negative, got "
                f"{self.flush_ticks_per_bu}"
            )

    @property
    def is_zero(self) -> bool:
        return self.reconfig_ticks == 0 and self.flush_ticks_per_bu == 0

    def delay_ticks(self, bu_count: int) -> int:
        """CA ticks one switch costs on a platform with ``bu_count`` BUs."""
        if bu_count < 0:
            raise ModeError(f"bu_count must be non-negative, got {bu_count}")
        return self.reconfig_ticks + self.flush_ticks_per_bu * bu_count


@dataclass(frozen=True)
class ModePhase:
    """One schedule entry: run ``mode`` until its switch point.

    The switch point is either ``iterations`` completed graph iterations,
    or — when ``min_dwell_ticks`` is set — whichever is later of
    ``iterations`` and the iteration count covering that many CA ticks
    (:func:`resolve_iterations`).  Values are stored permissively so lint
    (``SB234``) can diagnose degenerate phases with a stable rule id;
    :meth:`MultiModeApplication.validate_for_run` raises on them instead.
    """

    mode: str
    iterations: int = 1
    min_dwell_ticks: Optional[int] = None

    @property
    def is_degenerate(self) -> bool:
        """True when the phase can never resolve to at least one iteration."""
        if self.iterations < 0:
            return True
        if self.min_dwell_ticks is not None and self.min_dwell_ticks < 0:
            return True
        return self.iterations == 0 and self.min_dwell_ticks is None


def resolve_iterations(
    phase: ModePhase, iteration_fs: int, ca_period_fs: int
) -> int:
    """The effective iteration count of ``phase``.

    ``iteration_fs`` is the duration of one complete mode iteration and
    ``ca_period_fs`` the CA clock period.  Tick-based switch points
    (``min_dwell_ticks``) resolve against the *analytic* iteration time
    everywhere — emulator and estimators alike — so the resolution is a
    deterministic, engine-independent schedule decision rather than a
    runtime race.
    """
    if phase.is_degenerate:
        raise ModeError(
            f"phase for mode {phase.mode!r} is degenerate "
            f"(iterations={phase.iterations}, "
            f"min_dwell_ticks={phase.min_dwell_ticks})"
        )
    if phase.min_dwell_ticks is None:
        return phase.iterations
    if iteration_fs <= 0:
        raise ModeError(
            f"mode {phase.mode!r}: non-positive iteration time "
            f"{iteration_fs} fs cannot resolve a dwell-based switch point"
        )
    dwell_fs = phase.min_dwell_ticks * ca_period_fs
    covering = -(-dwell_fs // iteration_fs)  # ceil
    return max(phase.iterations, int(covering), 1)


@dataclass(frozen=True)
class ModeSchedule:
    """The ordered mode-switch schedule plus the per-switch cost."""

    phases: Tuple[ModePhase, ...]
    transition: TransitionSpec = field(default_factory=TransitionSpec)

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))

    @classmethod
    def seeded(
        cls,
        seed: int,
        mode_names: Sequence[str],
        phase_count: Optional[int] = None,
        min_iterations: int = 1,
        max_iterations: int = 3,
        transition: Optional[TransitionSpec] = None,
        dwell_probability: float = 0.0,
        max_dwell_ticks: int = 1024,
    ) -> "ModeSchedule":
        """A reproducible random schedule covering every mode.

        The first ``len(mode_names)`` phases are a seeded shuffle of the
        mode list (so no mode is unreachable, keeping ``SB232`` quiet);
        extra phases up to ``phase_count`` are drawn uniformly.  With
        ``dwell_probability`` > 0 some phases switch on a tick dwell
        instead of a fixed iteration count.  Uses the stdlib PRNG — the
        PSDF layer stays numpy-free.
        """
        names = list(mode_names)
        if not names:
            raise ModeError("a seeded schedule needs at least one mode name")
        rnd = random.Random(seed)
        order = names[:]
        rnd.shuffle(order)
        total = phase_count if phase_count is not None else len(order)
        while len(order) < total:
            order.append(rnd.choice(names))
        phases = []
        for mode in order:
            iterations = rnd.randint(min_iterations, max_iterations)
            dwell = None
            if max_dwell_ticks > 0 and rnd.random() < dwell_probability:
                dwell = rnd.randint(1, max_dwell_ticks)
            phases.append(
                ModePhase(mode=mode, iterations=iterations, min_dwell_ticks=dwell)
            )
        return cls(
            phases=tuple(phases),
            transition=transition if transition is not None else TransitionSpec(),
        )

    def scheduled_modes(self) -> Tuple[str, ...]:
        """Distinct modes in order of first appearance."""
        seen: Dict[str, None] = {}
        for phase in self.phases:
            seen.setdefault(phase.mode, None)
        return tuple(seen)

    def switch_count(self) -> int:
        """Transitions charged: consecutive phases whose mode differs."""
        return sum(
            1
            for previous, current in zip(self.phases, self.phases[1:])
            if previous.mode != current.mode
        )


@dataclass(frozen=True, eq=False)
class MultiModeApplication:
    """N per-mode PSDF flow sets plus the schedule switching between them.

    Like :class:`~repro.psdf.graph.PSDFGraph`, instances hash by identity
    (``eq=False``) so the estimators' per-graph caches apply per mode.
    Construction is permissive — lint (``SB230``–``SB234``) diagnoses
    ill-formed instances with stable rule ids; :meth:`validate_for_run`
    raises :class:`~repro.errors.ModeError` before any execution.
    """

    name: str
    modes: Mapping[str, PSDFGraph]
    schedule: ModeSchedule

    def __post_init__(self) -> None:
        object.__setattr__(self, "modes", dict(self.modes))

    @property
    def mode_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.modes))

    def mode(self, name: str) -> PSDFGraph:
        try:
            return self.modes[name]
        except KeyError:
            raise ModeError(
                f"{self.name}: no mode named {name!r}; defined: "
                f"{', '.join(self.mode_names) or '(none)'}"
            ) from None

    def scheduled_modes(self) -> Tuple[str, ...]:
        return self.schedule.scheduled_modes()

    def unreachable_modes(self) -> Tuple[str, ...]:
        """Defined modes the schedule never enters, sorted."""
        scheduled = set(self.schedule.scheduled_modes())
        return tuple(sorted(set(self.modes) - scheduled))

    def process_names(self) -> Tuple[str, ...]:
        """The union of every mode's process names, sorted."""
        names = set()
        for graph in self.modes.values():
            names.update(graph.process_names)
        return tuple(sorted(names))

    def validate_for_run(self) -> None:
        """Raise :class:`ModeError` unless the application can execute."""
        if not self.modes:
            raise ModeError(f"{self.name}: no modes defined")
        if not self.schedule.phases:
            raise ModeError(f"{self.name}: the mode schedule is empty")
        for index, phase in enumerate(self.schedule.phases):
            if phase.mode not in self.modes:
                raise ModeError(
                    f"{self.name}: phase {index} references undefined mode "
                    f"{phase.mode!r}; defined: {', '.join(self.mode_names)}"
                )
            if phase.is_degenerate:
                raise ModeError(
                    f"{self.name}: phase {index} ({phase.mode!r}) is "
                    f"degenerate (iterations={phase.iterations}, "
                    f"min_dwell_ticks={phase.min_dwell_ticks})"
                )
        for mode_name in self.scheduled_modes():
            if not self.modes[mode_name].flows:
                raise ModeError(
                    f"{self.name}: scheduled mode {mode_name!r} has an "
                    "empty flow set"
                )

    def union_graph(self) -> PSDFGraph:
        """One graph holding every mode's processes and flows.

        Only meaningful when the modes' flow sets are disjoint enough to
        coexist (e.g. disjoint process sets, as in the MP3↔JPEG two-phase
        application) — it is the graph a shared platform is mapped from,
        never a graph that executes.
        """
        processes: Dict[str, object] = {}
        flows = []
        for mode_name in sorted(self.modes):
            graph = self.modes[mode_name]
            for process in graph.processes:
                processes.setdefault(process.name, process)
            flows.extend(graph.flows)
        return PSDFGraph(
            tuple(processes.values()), tuple(flows), name=f"{self.name}_union"
        )
