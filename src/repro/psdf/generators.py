"""Synthetic PSDF workload generators.

The paper's future work calls for *"more application models to be tested on
the emulator platform"*.  These generators produce families of well-formed
PSDF graphs used by the property-based tests, the design-space-exploration
example and the ablation benchmarks:

* :func:`chain_psdf` — a linear pipeline (the degenerate stereo channel);
* :func:`fork_join_psdf` — one producer fanning out to parallel workers that
  join at a sink (models data-parallel stages);
* :func:`stereo_pipeline_psdf` — two symmetric channels sharing head and
  tail processes (the MP3 decoder's skeleton);
* :func:`random_dag_psdf` — seeded random layered DAGs for fuzzing.

All generators take a ``numpy.random.Generator`` or a seed; the same seed
always yields the same graph.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import PSDFError
from repro.psdf.graph import PSDFGraph

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def chain_psdf(
    stages: int,
    items_per_stage: int = 576,
    ticks_per_package: int = 250,
    name: str = "chain",
) -> PSDFGraph:
    """A linear pipeline ``P0 -> P1 -> ... -> P{stages-1}``.

    >>> g = chain_psdf(4)
    >>> [f.order for f in g.flows]
    [1, 2, 3]
    """
    if stages < 2:
        raise PSDFError(f"a chain needs at least 2 stages, got {stages}")
    edges = [
        (f"P{i}", f"P{i + 1}", items_per_stage, i + 1, ticks_per_package)
        for i in range(stages - 1)
    ]
    return PSDFGraph.from_edges(edges, name=name)


def fork_join_psdf(
    workers: int,
    items_per_worker: int = 360,
    ticks_per_package: int = 200,
    name: str = "fork_join",
) -> PSDFGraph:
    """``SRC`` fans out to ``workers`` parallel processes that join at ``SINK``.

    All fan-out flows share T=1 and all joins share T=2, exercising the
    "same ordering number implies possible concurrency" rule.
    """
    if workers < 1:
        raise PSDFError(f"need at least 1 worker, got {workers}")
    edges: List[Tuple] = []
    for w in range(workers):
        edges.append(("SRC", f"W{w}", items_per_worker, 1, ticks_per_package))
        edges.append((f"W{w}", "SINK", items_per_worker, 2, ticks_per_package))
    return PSDFGraph.from_edges(edges, name=name)


def stereo_pipeline_psdf(
    stages_per_channel: int = 3,
    items: int = 576,
    ticks_per_package: int = 250,
    name: str = "stereo",
) -> PSDFGraph:
    """Two symmetric channels with a shared head and tail — MP3-like skeleton.

    ``HEAD`` feeds ``L0..Ln`` and ``R0..Rn``; both chains merge at ``TAIL``.
    """
    if stages_per_channel < 1:
        raise PSDFError(
            f"need at least one stage per channel, got {stages_per_channel}"
        )
    edges: List[Tuple] = []
    order = 1
    edges.append(("HEAD", "L0", items, order, ticks_per_package))
    edges.append(("HEAD", "R0", items, order, ticks_per_package))
    for i in range(stages_per_channel - 1):
        order += 1
        edges.append((f"L{i}", f"L{i + 1}", items, order, ticks_per_package))
        edges.append((f"R{i}", f"R{i + 1}", items, order, ticks_per_package))
    order += 1
    last = stages_per_channel - 1
    edges.append((f"L{last}", "TAIL", items, order, ticks_per_package))
    edges.append((f"R{last}", "TAIL", items, order, ticks_per_package))
    return PSDFGraph.from_edges(edges, name=name)


def random_dag_psdf(
    processes: int,
    seed: RngLike = 0,
    max_items: int = 720,
    max_ticks: int = 400,
    edge_probability: float = 0.35,
    name: Optional[str] = None,
) -> PSDFGraph:
    """A seeded random layered DAG with valid PSDF structure.

    Processes are arranged in a random topological order; each later process
    receives at least one incoming flow (so the graph is connected) plus
    extra random edges with ``edge_probability``.  Flow T values follow the
    topological position of the source, guaranteeing a feasible schedule.
    Item counts are multiples of 36 so the canonical package size divides
    them exactly (non-divisible cases are exercised by dedicated tests).
    """
    if processes < 2:
        raise PSDFError(f"need at least 2 processes, got {processes}")
    if not 0.0 <= edge_probability <= 1.0:
        raise PSDFError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = _rng(seed)
    names = [f"P{i}" for i in range(processes)]
    edges: List[Tuple] = []

    def random_items() -> int:
        return int(rng.integers(1, max(2, max_items // 36 + 1))) * 36

    def random_ticks() -> int:
        return int(rng.integers(20, max(21, max_ticks)))

    for j in range(1, processes):
        # guarantee connectivity: one mandatory predecessor
        i = int(rng.integers(0, j))
        edges.append((names[i], names[j], random_items(), i + 1, random_ticks()))
        for k in range(j):
            if k != i and rng.random() < edge_probability:
                edges.append(
                    (names[k], names[j], random_items(), k + 1, random_ticks())
                )
    graph_name = name or f"random_dag_{processes}"
    return PSDFGraph.from_edges(edges, name=graph_name)
