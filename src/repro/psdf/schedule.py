"""Schedule extraction from a PSDF graph.

*"The schedule of the application is extracted from the PSDF and implemented
within the arbiters, providing the correct sequencing among processing and
transfers"* (paper section 3.3).  The schedule is the ordered list of
transfers a process executes once it fires, plus the firing precondition:
a process fires when **all** of its input flows have been fully delivered
(SDF firing semantics at flow granularity — this reproduces the paper's
timeline where P8 starts only after P0 finished delivering its 576 items).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.errors import ScheduleError
from repro.psdf.flow import PacketFlow
from repro.psdf.graph import PSDFGraph
from repro.psdf.packetize import packages_for_items


@dataclass(frozen=True)
class ScheduledTransfer:
    """One flow as seen by the arbiters: packages, ordering and cost.

    ``ticks_per_package`` is the paper's ``C`` evaluated at the platform's
    package size, so the emulator never needs the cost model again.
    """

    source: str
    target: str
    order: int
    data_items: int
    packages: int
    ticks_per_package: int


@dataclass(frozen=True)
class Schedule:
    """The application schedule at a fixed package size.

    ``transfers_of`` maps each process to its outgoing transfers in T order;
    ``inputs_of`` maps each process to the number of packages it must receive
    before firing (0 for initial processes).
    """

    package_size: int
    transfers_of: Mapping[str, Tuple[ScheduledTransfer, ...]]
    inputs_of: Mapping[str, int]

    def all_transfers(self) -> Tuple[ScheduledTransfer, ...]:
        """Every transfer of the system, ascending by (T, source, target)."""
        flat: List[ScheduledTransfer] = []
        for transfers in self.transfers_of.values():
            flat.extend(transfers)
        return tuple(sorted(flat, key=lambda t: (t.order, t.source, t.target)))

    def total_packages(self) -> int:
        return sum(t.packages for t in self.all_transfers())

    def concurrent_groups(self) -> Tuple[Tuple[ScheduledTransfer, ...], ...]:
        """Transfers grouped by equal T value (may execute concurrently).

        *"The non-strictness of the relation between T values models the
        possibility of several flows to coexist"* (section 3.1).
        """
        groups: Dict[int, List[ScheduledTransfer]] = {}
        for transfer in self.all_transfers():
            groups.setdefault(transfer.order, []).append(transfer)
        return tuple(tuple(groups[t]) for t in sorted(groups))


def extract_schedule(graph: PSDFGraph, package_size: int) -> Schedule:
    """Build the arbiter schedule for ``graph`` at ``package_size``.

    Raises :class:`~repro.errors.ScheduleError` if any process's outgoing
    flows do not have strictly resolvable ordering (two flows from the same
    source with the same T are allowed — they run back-to-back in target-name
    order for determinism).
    """
    if package_size <= 0:
        raise ScheduleError(f"package size must be positive, got {package_size}")
    transfers_of: Dict[str, Tuple[ScheduledTransfer, ...]] = {}
    inputs_of: Dict[str, int] = {}
    for proc in graph:
        outgoing = []
        for flow in graph.outgoing(proc.name):
            outgoing.append(_scheduled(flow, package_size))
        transfers_of[proc.name] = tuple(
            sorted(outgoing, key=lambda t: (t.order, t.target))
        )
        inputs_of[proc.name] = sum(
            packages_for_items(f.data_items, package_size)
            for f in graph.incoming(proc.name)
        )
    return Schedule(
        package_size=package_size,
        transfers_of=transfers_of,
        inputs_of=inputs_of,
    )


def _scheduled(flow: PacketFlow, package_size: int) -> ScheduledTransfer:
    return ScheduledTransfer(
        source=flow.source,
        target=flow.target,
        order=flow.order,
        data_items=flow.data_items,
        packages=flow.packages(package_size),
        ticks_per_package=flow.ticks_per_package(package_size),
    )
