"""Workload characterization metrics over PSDF graphs.

Placement quality and emulation cost both depend on the *shape* of the
application; these metrics quantify it:

* :func:`parallelism_profile` — how many processes can be active per
  topological level (the width of the pipeline);
* :func:`traffic_concentration` — Gini coefficient of per-flow traffic
  (0 = uniform, →1 = one dominant flow; high concentration means placement
  choices matter a lot);
* :func:`communication_to_computation` — total transfer slots vs total
  compute ticks at a package size (≫1 means bus-bound, ≪1 compute-bound);
* :func:`summary` — everything in one record, used by the DSE example and
  the scalability bench to label workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.psdf.graph import PSDFGraph
from repro.psdf.schedule import extract_schedule


def parallelism_profile(graph: PSDFGraph) -> Tuple[int, ...]:
    """Process count per topological level (level = longest path from a source)."""
    level: Dict[str, int] = {name: 0 for name in graph.process_names}
    for name in graph.topological_order():
        for flow in graph.outgoing(name):
            level[flow.target] = max(level[flow.target], level[name] + 1)
    width: Dict[int, int] = {}
    for value in level.values():
        width[value] = width.get(value, 0) + 1
    return tuple(width[i] for i in range(max(width) + 1)) if width else ()


def max_parallelism(graph: PSDFGraph) -> int:
    """The widest topological level — an upper bound on useful segments."""
    profile = parallelism_profile(graph)
    return max(profile) if profile else 0


def traffic_concentration(graph: PSDFGraph) -> float:
    """Gini coefficient of flow traffic volumes (0 uniform, ->1 concentrated)."""
    volumes = np.sort(np.array([f.data_items for f in graph.flows], dtype=float))
    if volumes.size == 0 or volumes.sum() == 0:
        return 0.0
    n = volumes.size
    index = np.arange(1, n + 1)
    return float((2 * (index * volumes).sum() / (n * volumes.sum())) - (n + 1) / n)


def communication_to_computation(graph: PSDFGraph, package_size: int) -> float:
    """Bus slots over compute ticks (the bus-boundness of the workload)."""
    schedule = extract_schedule(graph, package_size)
    transfer_slots = schedule.total_packages() * package_size
    compute_ticks = sum(
        t.packages * t.ticks_per_package
        for transfers in schedule.transfers_of.values()
        for t in transfers
    )
    return transfer_slots / compute_ticks if compute_ticks else float("inf")


@dataclass(frozen=True)
class WorkloadSummary:
    """One workload's shape in a record."""

    name: str
    processes: int
    flows: int
    depth: int
    max_parallelism: int
    total_items: int
    traffic_gini: float
    comm_to_comp: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.processes} procs, {self.flows} flows, "
            f"depth {self.depth}, width {self.max_parallelism}, "
            f"gini {self.traffic_gini:.2f}, comm/comp {self.comm_to_comp:.2f}"
        )


def summary(graph: PSDFGraph, package_size: int = 36) -> WorkloadSummary:
    """All metrics for one graph."""
    return WorkloadSummary(
        name=graph.name,
        processes=len(graph),
        flows=len(graph.flows),
        depth=graph.depth(),
        max_parallelism=max_parallelism(graph),
        total_items=graph.total_data_items(),
        traffic_gini=traffic_concentration(graph),
        comm_to_comp=communication_to_computation(graph, package_size),
    )
