"""Packet flows: the edges of a PSDF graph.

A flow is the paper's tuple ``(P_t, D, T, C)`` plus (our extension, see
DESIGN.md section 3) a two-part production-cost model.  The paper quotes a
single per-package tick count ``C`` at the package size used during modeling;
because the number of packages changes with the package size ``s`` while the
amount of *work* tracks the number of data items, we decompose::

    C(s) = c_fixed + c_item * s

``c_fixed`` captures per-package overhead of the producing process
(bookkeeping, handshake preparation) and ``c_item`` the per-data-item
computation.  A flow built with a bare ``C`` pins ``c_item = 0`` so the
paper's literal semantics remain available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FlowError


@dataclass(frozen=True)
class FlowCost:
    """Production cost of one package: ``ticks(s) = c_fixed + c_item * s``.

    >>> FlowCost(c_fixed=34, c_item=6).ticks(36)
    250
    """

    c_fixed: int
    c_item: int = 0

    def __post_init__(self) -> None:
        if self.c_fixed < 0 or self.c_item < 0:
            raise FlowError(
                f"flow cost components must be non-negative, got "
                f"c_fixed={self.c_fixed}, c_item={self.c_item}"
            )
        if self.c_fixed == 0 and self.c_item == 0:
            raise FlowError("flow cost must be positive for at least one component")

    def ticks(self, package_size: int) -> int:
        """Clock ticks consumed by the producer before sending one package."""
        if package_size <= 0:
            raise FlowError(f"package size must be positive, got {package_size}")
        return self.c_fixed + self.c_item * package_size

    @classmethod
    def constant(cls, ticks: int) -> "FlowCost":
        """A cost that does not vary with the package size (paper's literal C)."""
        return cls(c_fixed=ticks, c_item=0)

    @classmethod
    def calibrated(cls, ticks_at: int, package_size: int, fixed_fraction: float = 0.15) -> "FlowCost":
        """Split a known per-package tick count into fixed + per-item parts.

        ``ticks_at`` is the paper-style ``C`` observed at ``package_size``;
        ``fixed_fraction`` of it is attributed to per-package overhead.
        The reconstruction is exact at ``package_size``:

        >>> FlowCost.calibrated(250, 36).ticks(36)
        250
        """
        if ticks_at <= 0:
            raise FlowError(f"ticks_at must be positive, got {ticks_at}")
        if not 0.0 <= fixed_fraction <= 1.0:
            raise FlowError(f"fixed_fraction must be in [0, 1], got {fixed_fraction}")
        c_item = int(round(ticks_at * (1.0 - fixed_fraction) / package_size))
        c_fixed = ticks_at - c_item * package_size
        if c_fixed < 0:  # rounding pushed per-item share above the total
            c_item = ticks_at // package_size
            c_fixed = ticks_at - c_item * package_size
        if c_fixed == 0 and c_item == 0:
            c_fixed = ticks_at
        return cls(c_fixed=c_fixed, c_item=c_item)


@dataclass(frozen=True)
class PacketFlow:
    """One packet flow ``(P_t, D, T, C)`` from a source process.

    Attributes mirror the paper's definition (section 3.1); ``source`` names
    the emitting process so a flow is self-contained once detached from its
    graph.
    """

    source: str
    target: str
    data_items: int
    order: int
    cost: FlowCost = field(default_factory=lambda: FlowCost.constant(1))

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise FlowError("flow source and target must be non-empty process names")
        if self.source == self.target:
            raise FlowError(f"self-loop flow on process {self.source!r} is not allowed")
        if self.data_items <= 0:
            raise FlowError(
                f"flow {self.source}->{self.target}: D must be positive, got {self.data_items}"
            )
        if self.order <= 0:
            raise FlowError(
                f"flow {self.source}->{self.target}: T must be positive, got {self.order}"
            )

    def packages(self, package_size: int) -> int:
        """Number of packages for this flow at ``package_size`` (``ceil(D/s)``)."""
        if package_size <= 0:
            raise FlowError(f"package size must be positive, got {package_size}")
        return -(-self.data_items // package_size)

    def ticks_per_package(self, package_size: int) -> int:
        """The paper's ``C`` value at ``package_size``."""
        return self.cost.ticks(package_size)

    def element_name(self, package_size: int) -> str:
        """The M2T element name, e.g. ``P1_576_1_250`` (section 3.5).

        Encodes target, data items, ordering and the per-package tick count
        at the given package size, separated by underscores.
        """
        return (
            f"{self.target}_{self.data_items}_{self.order}_"
            f"{self.ticks_per_package(package_size)}"
        )

    @classmethod
    def from_element_name(cls, source: str, name: str) -> "PacketFlow":
        """Parse an M2T element name back into a flow (inverse of
        :meth:`element_name`; the parsed ``C`` becomes a constant cost).

        >>> f = PacketFlow.from_element_name("P0", "P1_576_1_250")
        >>> (f.target, f.data_items, f.order, f.cost.c_fixed)
        ('P1', 576, 1, 250)
        """
        parts = name.rsplit("_", 3)
        if len(parts) != 4:
            raise FlowError(
                f"malformed flow element name {name!r}: expected "
                "'<target>_<items>_<order>_<ticks>'"
            )
        target, items_s, order_s, ticks_s = parts
        try:
            items, order, ticks = int(items_s), int(order_s), int(ticks_s)
        except ValueError as exc:
            raise FlowError(f"malformed flow element name {name!r}: {exc}") from exc
        return cls(
            source=source,
            target=target,
            data_items=items,
            order=order,
            cost=FlowCost.constant(ticks),
        )
