"""The communication matrix (paper Fig. 8).

The matrix is *"the specification of device-to-device transactions between
application components; each entity describes how many data items need to be
transferred from one device to any other device"* (section 3.5).  The
emulator builds it from the PSDF model; the PlaceTool allocation optimizer
consumes it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import PSDFError
from repro.psdf.graph import PSDFGraph


class CommunicationMatrix:
    """Square matrix of data items exchanged between processes.

    Rows are sources, columns are targets, in the order of ``names``.
    Backed by an integer numpy array; immutable by convention (the array is
    flagged non-writeable).
    """

    def __init__(self, names: Sequence[str], items: np.ndarray) -> None:
        names = list(names)
        items = np.asarray(items, dtype=np.int64)
        if items.shape != (len(names), len(names)):
            raise PSDFError(
                f"matrix shape {items.shape} does not match {len(names)} names"
            )
        if (items < 0).any():
            raise PSDFError("communication matrix entries must be non-negative")
        if np.diagonal(items).any():
            raise PSDFError("communication matrix diagonal must be zero (no self-traffic)")
        self.names: Tuple[str, ...] = tuple(names)
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        if len(self._index) != len(self.names):
            raise PSDFError("duplicate process names in communication matrix")
        self._items = items
        self._items.setflags(write=False)

    # -- access ---------------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The underlying (read-only) numpy array."""
        return self._items

    def __len__(self) -> int:
        return len(self.names)

    def __getitem__(self, key: Tuple[str, str]) -> int:
        source, target = key
        return int(self._items[self._index[source], self._index[target]])

    def items_between(self, source: str, target: str) -> int:
        """Data items transferred ``source -> target`` (0 if none)."""
        return self[source, target]

    def packages_between(self, source: str, target: str, package_size: int) -> int:
        """Package count for the pair at ``package_size`` (``ceil(D/s)``)."""
        if package_size <= 0:
            raise PSDFError(f"package size must be positive, got {package_size}")
        items = self[source, target]
        return -(-items // package_size) if items else 0

    def total_items(self) -> int:
        return int(self._items.sum())

    def row(self, source: str) -> Dict[str, int]:
        """Non-zero outgoing traffic of ``source`` as a name->items dict."""
        i = self._index[source]
        return {
            self.names[j]: int(v)
            for j, v in enumerate(self._items[i])
            if v
        }

    def column(self, target: str) -> Dict[str, int]:
        """Non-zero incoming traffic of ``target`` as a name->items dict."""
        j = self._index[target]
        return {
            self.names[i]: int(v)
            for i, v in enumerate(self._items[:, j])
            if v
        }

    def pairs(self) -> Iterable[Tuple[str, str, int]]:
        """Yield every non-zero (source, target, items) entry."""
        rows, cols = np.nonzero(self._items)
        for i, j in zip(rows.tolist(), cols.tolist()):
            yield self.names[i], self.names[j], int(self._items[i, j])

    def cut_items(self, partition: Mapping[str, int]) -> int:
        """Data items crossing between different parts of ``partition``.

        ``partition`` maps each process name to a segment index; this is the
        objective the PlaceTool minimizes (weighted by hop distance in
        :mod:`repro.placement.cost`).
        """
        total = 0
        for source, target, items in self.pairs():
            if partition[source] != partition[target]:
                total += items
        return total

    # -- presentation -----------------------------------------------------------

    def to_table(self) -> str:
        """Render the matrix as the paper's Fig. 8 style text table."""
        width = max(3, max(len(n) for n in self.names), len(str(self._items.max())))
        header = " " * (width + 1) + " ".join(n.rjust(width) for n in self.names)
        lines = [header]
        for i, name in enumerate(self.names):
            cells = " ".join(str(int(v)).rjust(width) for v in self._items[i])
            lines.append(f"{name.rjust(width)} {cells}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationMatrix):
            return NotImplemented
        return self.names == other.names and np.array_equal(self._items, other._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommunicationMatrix({len(self.names)} processes, {self.total_items()} items)"


def build_communication_matrix(graph: PSDFGraph) -> CommunicationMatrix:
    """Extract the communication matrix from a PSDF graph (paper section 3.5).

    Multiple flows between the same pair (distinct T values) are summed —
    the matrix abstracts ordering away and keeps only traffic volume.
    """
    names: List[str] = list(graph.process_names)
    index = {n: i for i, n in enumerate(names)}
    items = np.zeros((len(names), len(names)), dtype=np.int64)
    for flow in graph.flows:
        items[index[flow.source], index[flow.target]] += flow.data_items
    return CommunicationMatrix(names, items)
