"""PSDF processes: the nodes of the application graph.

The DSL adds three stereotypes for PSDF modeling (paper section 2.2):
``InitialNode``, ``ProcessNode`` and ``FinalNode``.  ``ProcessKind`` mirrors
those stereotypes; the graph validator checks that the declared kind matches
the node's connectivity (initial nodes have no producers, final nodes have no
consumers).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import PSDFError

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9]*$")


class ProcessKind(enum.Enum):
    """UML-profile stereotype of a PSDF node (section 2.2)."""

    INITIAL = "InitialNode"
    PROCESS = "ProcessNode"
    FINAL = "FinalNode"


@dataclass(frozen=True)
class Process:
    """A PSDF process.

    ``name`` is the identifier used in the communication matrix, the XML
    schemes and the PSM mapping (``P0``, ``P1``, ...).  ``description``
    carries the functional role (e.g. *frame decoding* for the MP3 decoder's
    P0) and has no semantic effect.
    """

    name: str
    kind: ProcessKind = ProcessKind.PROCESS
    description: Optional[str] = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise PSDFError(
                f"invalid process name {self.name!r}: must start with a letter "
                "and contain only letters and digits (names are embedded in "
                "underscore-separated XML element names)"
            )

    @property
    def stereotype(self) -> str:
        """The UML stereotype string applied in the DSL profile."""
        return self.kind.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
