"""The emulator facade: the paper's ``SegBusEmulatorView``.

Accepts the two XML schemes (or, for convenience, model objects that are
routed *through* the XML writers and parsers — the design flow of Fig. 3
always passes via the schemes, so nothing the schemes cannot carry can
influence the emulation), builds the communication matrix, instantiates the
platform-element runtimes and runs the emulation.

>>> from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
>>> emulator = SegBusEmulator.from_models(mp3_decoder_psdf(), paper_platform())
>>> report = emulator.run()
>>> report.segment_count
3
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import resolve_engine, simulation_class
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.report import EmulationReport, build_report
from repro.errors import EmulationError, LintError
from repro.model.elements import SegBusPlatform
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.graph import PSDFGraph
from repro.psdf.matrix import CommunicationMatrix, build_communication_matrix
from repro.xmlio.psdf_parser import parse_psdf_xml
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_parser import parse_psm_xml
from repro.xmlio.psm_writer import psm_to_xml


class SegBusEmulator:
    """One emulation session: parse schemes, set up, run, report."""

    def __init__(
        self,
        psdf_xml: str,
        psm_xml: str,
        config: Optional[EmulationConfig] = None,
        fault_plan=None,
        retry_policy=None,
        watchdog=None,
    ) -> None:
        self._parsed_psdf = parse_psdf_xml(psdf_xml)
        self._parsed_psm = parse_psm_xml(psm_xml)
        self.config = config or EmulationConfig()
        #: optional resilience knobs (see repro.faults / docs/ROBUSTNESS.md)
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.watchdog = watchdog
        self.application: PSDFGraph = self._parsed_psdf.to_graph()
        self.spec = PlatformSpec.from_parsed_psm(self._parsed_psm)
        self.communication_matrix: CommunicationMatrix = build_communication_matrix(
            self.application
        )
        # per-engine caches: both engines are observationally identical,
        # but callers comparing them need each engine's own simulation
        self._simulations: dict = {}
        self._reports: dict = {}
        self._linted = False

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_files(
        cls,
        psdf_path: Union[str, Path],
        psm_path: Union[str, Path],
        config: Optional[EmulationConfig] = None,
        fault_plan=None,
        retry_policy=None,
        watchdog=None,
    ) -> "SegBusEmulator":
        """Load the generated schemes from disk (the tool's normal input)."""
        return cls(
            Path(psdf_path).read_text(encoding="utf-8"),
            Path(psm_path).read_text(encoding="utf-8"),
            config=config,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            watchdog=watchdog,
        )

    @classmethod
    def from_models(
        cls,
        application: PSDFGraph,
        platform: SegBusPlatform,
        config: Optional[EmulationConfig] = None,
        preserve_costs: bool = True,
        fault_plan=None,
        retry_policy=None,
        watchdog=None,
    ) -> "SegBusEmulator":
        """Build from model objects, still routing through the XML schemes.

        The schemes store the per-package tick count ``C`` at the platform's
        package size, flattening the two-part cost model.  With
        ``preserve_costs=True`` (default) the original
        :class:`~repro.psdf.flow.FlowCost` objects are re-attached after the
        round trip so package-size sweeps re-evaluate ``C(s)`` faithfully;
        pass ``False`` to emulate exactly what the schemes carry.
        """
        emulator = cls(
            psdf_to_xml(application, platform.package_size),
            psm_to_xml(platform),
            config=config,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            watchdog=watchdog,
        )
        if preserve_costs:
            emulator._reattach_costs(application)
        return emulator

    def _reattach_costs(self, original: PSDFGraph) -> None:
        by_key = {
            (f.source, f.target, f.order): f.cost for f in original.flows
        }
        flows = []
        for flow in self.application.flows:
            cost = by_key.get((flow.source, flow.target, flow.order))
            if cost is None:  # pragma: no cover - roundtrip guarantees presence
                raise EmulationError(
                    f"flow {flow.source}->{flow.target} missing from original model"
                )
            flows.append(
                PacketFlow(
                    source=flow.source,
                    target=flow.target,
                    data_items=flow.data_items,
                    order=flow.order,
                    cost=cost,
                )
            )
        self.application = PSDFGraph(
            self.application.processes, flows, name=self.application.name
        )
        self.communication_matrix = build_communication_matrix(self.application)

    # -- static analysis ---------------------------------------------------------

    def lint(self):
        """Run the ``segbus lint`` rule catalogue over this session's inputs.

        Returns the :class:`repro.lint.LintReport` covering the application,
        the platform (when the parsed PSM can be rebuilt into one) and the
        fault plan.  Never raises — :meth:`run` with ``strict=True`` is the
        enforcing entry point.
        """
        from repro.lint import lint_models

        try:
            platform = self._parsed_psm.to_platform()
        except Exception:
            platform = None  # lint still covers the application + fault plan
        return lint_models(
            application=self._parsed_psdf,
            platform=platform,
            fault_plan=self.fault_plan,
        )

    # -- execution ---------------------------------------------------------------

    def run(
        self, strict: bool = False, engine: Optional[str] = None
    ) -> EmulationReport:
        """Run the emulation (cached: repeated calls return the same report).

        With ``strict=True`` the static analyzer runs first and the call
        raises :class:`~repro.errors.LintError` on any error-severity
        finding instead of starting a simulation of a broken input.

        ``engine`` selects the simulation kernel (``"stepped"`` or
        ``"fast"``; default honours ``SEGBUS_ENGINE``).  Both engines are
        tick-for-tick equivalent, so the report is the same either way;
        results are cached per engine.
        """
        name = resolve_engine(engine)
        if strict and not self._linted:
            lint_report = self.lint()
            if lint_report.errors:
                raise LintError(
                    [f.format() for f in lint_report.errors], report=lint_report
                )
            self._linted = True
        if name not in self._reports:
            self._simulations[name] = simulation_class(name)(
                self.application,
                self.spec,
                self.config,
                fault_plan=self.fault_plan,
                retry_policy=self.retry_policy,
                watchdog=self.watchdog,
            ).run()
            self._reports[name] = build_report(self._simulations[name])
        return self._reports[name]

    @property
    def simulation(self) -> Simulation:
        """The underlying finished simulation (runs it if needed)."""
        name = resolve_engine(None)
        self.run(engine=name)
        return self._simulations[name]


def emulate(
    application: PSDFGraph,
    platform: SegBusPlatform,
    config: Optional[EmulationConfig] = None,
    fault_plan=None,
    retry_policy=None,
    watchdog=None,
    strict: bool = False,
    engine: Optional[str] = None,
) -> EmulationReport:
    """One-shot convenience: model objects in, report out.

    ``strict=True`` lints the inputs first and raises
    :class:`~repro.errors.LintError` on any error-severity finding.
    ``engine`` picks the simulation kernel (see
    :func:`repro.emulator.fastkernel.resolve_engine`).
    """
    return SegBusEmulator.from_models(
        application,
        platform,
        config=config,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        watchdog=watchdog,
    ).run(strict=strict, engine=engine)
