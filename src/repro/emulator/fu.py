"""Runtime state of Functional Units: masters, slaves and transfer jobs.

FUs *"are modeled as counters, performing for an established duration; the
ranges of the counters stand as processing time"* (section 3.3).  A
:class:`MasterRT` walks the process's scheduled transfers package by
package: compute ``C`` ticks, request the bus, transfer, repeat.  Slave-side
behaviour is pure bookkeeping on the shared :class:`ProcessCounters` (a
delivery may fire the receiving process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.emulator.counters import ProcessCounters
from repro.psdf.schedule import ScheduledTransfer


@dataclass(frozen=True)
class TransferJob:
    """One package ready for the bus: the SA/CA arbitration unit."""

    master: str
    source_segment: int
    target_segment: int
    transfer: ScheduledTransfer
    package_seq: int

    @property
    def is_inter_segment(self) -> bool:
        return self.source_segment != self.target_segment

    @property
    def label(self) -> str:
        return (
            f"{self.transfer.source}->{self.transfer.target}"
            f"#{self.package_seq + 1}/{self.transfer.packages}"
        )


@dataclass
class MasterRT:
    """Mutable per-process master state.

    ``transfer_index``/``package_index`` form the program counter over the
    schedule; ``outstanding_deliveries`` counts packages still in flight
    through BUs (the master resumes computing once its segment's part of an
    inter-segment transfer is done, but its Process Status Flag only rises
    when every package reached its destination).
    """

    process: str
    segment_index: int
    transfers: Tuple[ScheduledTransfer, ...]
    counters: ProcessCounters

    transfer_index: int = 0
    package_index: int = 0
    outstanding_deliveries: int = 0
    computing: bool = False
    waiting_grant: bool = False
    #: set by an injected permanent failure: the FU issues no further work
    failed: bool = False

    @property
    def current_transfer(self) -> Optional[ScheduledTransfer]:
        if self.transfer_index >= len(self.transfers):
            return None
        return self.transfers[self.transfer_index]

    @property
    def all_issued(self) -> bool:
        """True when every package of every transfer has left the master."""
        return self.transfer_index >= len(self.transfers)

    def advance(self) -> None:
        """Move the program counter past the package just sent."""
        transfer = self.current_transfer
        assert transfer is not None
        self.package_index += 1
        if self.package_index >= transfer.packages:
            self.package_index = 0
            self.transfer_index += 1

    @property
    def is_done(self) -> bool:
        return self.all_issued and self.outstanding_deliveries == 0
