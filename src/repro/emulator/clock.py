"""Clock domains for the emulator.

Every segment and the CA has its own clock (paper section 4 sets 91, 98,
89 and 111 MHz).  A :class:`ClockDomain` wraps a :class:`~repro.units.Frequency`
with the edge arithmetic the kernel needs; all simulation time is integer
femtoseconds, edges sit at integer multiples of the period.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.units import Frequency


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with exact femtosecond period."""

    name: str
    frequency: Frequency

    @cached_property
    def period_fs(self) -> int:
        return self.frequency.period_fs

    def edge_at_or_after(self, t_fs: int) -> int:
        """First clock edge at or after ``t_fs``."""
        period = self.period_fs
        return -(-t_fs // period) * period

    def edge_after(self, t_fs: int) -> int:
        """First clock edge strictly after ``t_fs``.

        Used for *enablement*: an event enabling a component at time ``t``
        is sampled at the next edge, so a process enabled at t = 0 starts
        at tick 1 (the paper's ``P0, Start Time = 10989 ps`` at 91 MHz).
        """
        period = self.period_fs
        return (t_fs // period + 1) * period

    def ticks(self, duration_fs: int) -> int:
        """Whole ticks covering ``duration_fs`` (ceiling)."""
        period = self.period_fs
        return -(-duration_fs // period)

    def ticks_to_fs(self, ticks: int) -> int:
        return ticks * self.period_fs

    def ticks_between(self, start_fs: int, end_fs: int) -> int:
        """Number of clock edges in the half-open interval ``(start, end]``."""
        if end_fs < start_fs:
            raise ValueError(f"interval end {end_fs} before start {start_fs}")
        period = self.period_fs
        return end_fs // period - start_fs // period

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}@{self.frequency}"
