"""The fast event-driven engine: observably identical to the stepped kernel.

:class:`~repro.emulator.kernel.Simulation` is the *normative* engine — its
handlers read like the DESIGN.md protocol rules and recompute every clock
quantity from first principles on each event.  That clarity costs real
time: >90 % of a run's wall clock goes to interpreter overhead (property
chains re-deriving ``period_fs`` from the frequency, per-event closure
allocation, dataclass heap entries with generated ``__lt__``), not to the
protocol itself.

:class:`FastSimulation` is the same discrete-event machine with the
constant factors engineered out:

* every clock-domain quantity (period, grant latency, bus occupancy,
  turnaround, BU waiting window) is pre-multiplied into plain integer
  femtoseconds at construction, one lookup per use;
* transfer jobs — route, direction, BU chain and owning master runtime
  included — are precreated per package instead of being allocated and
  re-derived on every compute completion;
* heap entries are plain lists ordered by ``(time, priority, sequence)``,
  pushed inline at the hot call sites, and recurring actions (SA checks,
  CA checks, per-master completions) are bound once and reused, so the
  hot loop allocates almost nothing;
* tracing and fault hooks are branch-hoisted: a run without a tracer or
  fault plan never pays for either.

**Equivalence contract.**  The fast engine schedules the *same logical
events in the same order* as the stepped engine, so the executed-event
count, every monitoring counter, the trace/timeline/report digests and
``max(t_SA, t_CA)`` are bit-identical — not approximately, exactly.  The
contract is enforced three ways (see docs/PERFORMANCE.md): the ENG-1
differential oracle in ``segbus selftest``, the Hypothesis property suite
(``tests/property/test_engine_equivalence.py``), and the golden-trace
store, which both engines must reproduce byte for byte.

Pick an engine via ``Emulator.run(engine="fast"|"stepped")``, the
``--engine`` CLI flag, or the ``SEGBUS_ENGINE`` environment variable.
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple, Type

from repro.emulator.events import PRIO_CA, PRIO_SA, PRIO_STATE
from repro.emulator.kernel import Simulation
from repro.errors import EmulationError, SegBusError, StallError

#: the known engine names, in registry order ("batch" resolves lazily —
#: the lockstep mega-batch kernel lives in repro.emulator.batchkernel)
ENGINE_NAMES: Tuple[str, ...] = ("stepped", "fast", "batch")

#: environment variable consulted when no engine is given explicitly
ENGINE_ENV_VAR = "SEGBUS_ENGINE"

#: the repository default when neither an argument nor the env var says
DEFAULT_ENGINE = "stepped"


class FastEventQueue:
    """Drop-in :class:`~repro.emulator.events.EventQueue` with list entries.

    A heap entry is a plain list ``[time_fs, priority, sequence, cancelled,
    action]``: list comparison orders by time, then priority, then the
    unique sequence number — identical to the stepped queue's dataclass
    ordering, and the two trailing slots are never compared because
    sequences never tie.  ``now_fs`` and ``executed`` are plain attributes
    (the run loop writes them directly); the API — ``schedule``/``cancel``/
    ``pop``/``len`` — matches the stepped queue so inherited cold-path
    handlers work unchanged.  Hot handlers bypass ``schedule`` and push
    entries inline, sharing the same ``seq`` counter so tie-breaking stays
    bit-compatible with the stepped engine's schedule order.
    """

    __slots__ = ("heap", "seq", "now_fs", "executed")

    def __init__(self) -> None:
        self.heap: List[list] = []
        self.seq = 0
        self.now_fs = 0
        self.executed = 0

    def __len__(self) -> int:
        return sum(1 for e in self.heap if not e[3])

    def schedule(self, time_fs: int, action, priority: int = PRIO_STATE) -> list:
        if time_fs < self.now_fs:
            raise EmulationError(
                f"cannot schedule event in the past: {time_fs} < now "
                f"{self.now_fs}"
            )
        self.seq = seq = self.seq + 1
        entry = [time_fs, priority, seq, False, action]
        heappush(self.heap, entry)
        return entry

    def cancel(self, entry: list) -> None:
        entry[3] = True

    def pop(self):
        heap = self.heap
        while heap:
            entry = heappop(heap)
            if entry[3]:
                continue
            self.now_fs = entry[0]
            self.executed += 1
            return entry[0], entry[4]
        return None


class _FastJob:
    """A TransferJob with precomputed routing.

    Duck-type compatible with :class:`repro.emulator.fu.TransferJob` for
    every consumer inside the kernel (retry bookkeeping, CA bookkeeping,
    purges, traces).  One instance exists per package and is reused across
    retry attempts, exactly like the stepped engine reuses its job object
    through the fail/requeue cycle.  ``path`` is ``None`` for
    intra-segment packages.
    """

    __slots__ = (
        "master",
        "source_segment",
        "target_segment",
        "transfer",
        "package_seq",
        "path",
        "direction",
        "chain",
        "mrt",
    )

    def __init__(
        self,
        master: str,
        source_segment: int,
        target_segment: int,
        transfer,
        package_seq: int,
        path,
        direction: int,
        chain,
        mrt,
    ) -> None:
        self.master = master
        self.source_segment = source_segment
        self.target_segment = target_segment
        self.transfer = transfer
        self.package_seq = package_seq
        self.path = path
        self.direction = direction
        self.chain = chain
        #: the owning MasterRT — saves a name lookup on every completion
        self.mrt = mrt

    @property
    def label(self) -> str:
        # lazy: only traces, faults and diagnostics read it
        t = self.transfer
        return f"{t.source}->{t.target}#{self.package_seq + 1}/{t.packages}"

    @property
    def is_inter_segment(self) -> bool:
        return self.source_segment != self.target_segment


class FastSimulation(Simulation):
    """The fast engine: same protocol, same events, a fraction of the wall.

    Construction mirrors :class:`~repro.emulator.kernel.Simulation`; only
    the event machinery and the hot handlers are replaced.  Cold paths
    (retry/backoff bookkeeping, timeouts, permanent failures, degradation,
    diagnostics, derived results) are inherited verbatim.  Per-element
    constants hang off the runtime objects as ``f_*`` attributes.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.queue = FastEventQueue()
        config = self.config
        spec = self.spec
        package = spec.package_size
        wait_minus_1 = max(
            0, config.bu_sampling_ticks + config.bu_sync_ticks - 1
        )

        # -- per-segment femtosecond constants, attached to the runtime ------
        self._seg_by_index: List = [None] * (spec.segment_count + 1)
        for index, segment in self.segments.items():
            p = segment.clock.period_fs
            self._seg_by_index[index] = segment
            segment.f_period = p
            segment.f_grant_lat = config.grant_latency_ticks * p
            segment.f_turnaround = config.bus_turnaround_ticks * p
            segment.f_occupy_intra = (package + config.slave_ack_ticks) * p
            segment.f_fill = package * p
            segment.f_hop_dest = (package + config.slave_ack_ticks) * p
            segment.f_hop_transit = package * p
            segment.f_bu_wait = wait_minus_1 * p
            segment.f_round_robin = (
                spec.sa_policies.get(index) != "fixed-priority"
            )
            segment.f_sa_action = partial(self._on_sa_check, segment)
            segment.f_intra_action = partial(self._on_intra_pop, segment)
            segment.f_intra_job = None
            segment.f_sa_entry = None
        self._ca_period = self.ca.clock.period_fs
        self._ca_decision_fs = config.ca_decision_ticks * self._ca_period
        self._circuit = config.inter_segment_protocol == "circuit"
        self._has_timeout = self.retry_policy.timeout_ticks is not None
        #: retry-state dicts only see writes under faults or timeouts —
        #: fault-free runs skip the per-package key bookkeeping entirely
        self._resilient = self.faults is not None or self._has_timeout

        # -- per-process firing metadata -------------------------------------
        self._fire_meta = {
            name: (
                self.segments[spec.placement[name]].f_period,
                partial(self._on_fire, name),
            )
            for name in self.application.process_names
        }
        self._ca_check_action = self._on_ca_check

        # -- per-master metadata: compute times, precreated jobs -------------
        routes: Dict[Tuple[int, int], tuple] = {}
        handshake = config.master_handshake_ticks
        for master in self.masters.values():
            src = master.segment_index
            p = self.segments[src].f_period
            master.f_period = p
            master.f_segment = self.segments[src]
            master.f_action = partial(self._on_compute_done, master)
            compute_fs: List[int] = []
            jobs: List[Tuple[_FastJob, ...]] = []
            for transfer in master.transfers:
                compute_fs.append(
                    (transfer.ticks_per_package + handshake) * p
                )
                tgt = spec.placement[transfer.target]
                if src != tgt:
                    route = routes.get((src, tgt))
                    if route is None:
                        path = self.topology.path(src, tgt)
                        chain = tuple(
                            self.bus_units[(min(a, b), min(a, b) + 1)]
                            for a, b in zip(path, path[1:])
                        )
                        route = (path, 1 if tgt > src else -1, chain)
                        routes[(src, tgt)] = route
                else:
                    route = (None, 0, None)
                jobs.append(
                    tuple(
                        _FastJob(
                            master.process,
                            src,
                            tgt,
                            transfer,
                            seq,
                            route[0],
                            route[1],
                            route[2],
                            master,
                        )
                        for seq in range(transfer.packages)
                    )
                )
            master.f_compute = tuple(compute_fs)
            master.f_jobs = tuple(jobs)
            master.f_packages = tuple(t.packages for t in master.transfers)
            master.f_ntransfers = len(master.transfers)

    # ------------------------------------------------------------------ loop

    def _run_loop(self) -> None:
        """Drain the queue with the heap inlined into the loop body."""
        queue = self.queue
        heap = queue.heap
        budget = self.config.max_events
        horizon_fs = self._ca_period * self.config.max_ticks
        watchdog = self.watchdog
        executed = 0
        pop = heappop
        # ``queue.executed`` is written back on every exit path (the
        # finally) instead of per event — nothing reads it mid-run
        try:
            while heap:
                entry = pop(heap)
                if entry[3]:
                    continue
                t_fs = entry[0]
                queue.now_fs = t_fs
                executed += 1
                if t_fs > horizon_fs:
                    raise StallError(
                        f"tick budget exhausted: simulated time passed "
                        f"{self.config.max_ticks} CA ticks — model livelock?",
                        pending=self.pending_work(),
                        last_progress_tick=self.ca.clock.ticks(
                            self.last_progress_fs
                        ),
                        stalled_elements=self.stalled_elements(),
                    )
                entry[4]()
                if executed >= budget:
                    raise StallError(
                        f"event budget exhausted after {budget} events at "
                        f"t={queue.now_fs} fs — model livelock?",
                        pending=self.pending_work(),
                        last_progress_tick=self.ca.clock.ticks(
                            self.last_progress_fs
                        ),
                        stalled_elements=self.stalled_elements(),
                    )
                if watchdog is not None:
                    queue.executed = executed
                    watchdog.observe(self)
        finally:
            queue.executed = executed

    # ------------------------------------------------------------------ firing

    def _schedule_fire(self, process: str, enable_fs: int) -> None:
        p, action = self._fire_meta[process]
        queue = self.queue
        queue.seq = seq = queue.seq + 1
        heappush(
            queue.heap,
            [(enable_fs // p + 1) * p, PRIO_STATE, seq, False, action],
        )

    def _on_fire(self, process: str) -> None:
        now = self.queue.now_fs
        if process in self.failed_elements:
            return
        counters = self.process_counters[process]
        counters.start_fs = now
        tracer = self.tracer
        if tracer is not None:
            tracer.record(now, "fire", process)
        self.progress_count += 1
        self.last_progress_fs = now
        master = self.masters.get(process)
        if master is None:
            counters.done = True
            counters.end_fs = now
            if tracer is not None:
                tracer.record(now, "process_done", process)
            if now > self.global_end_fs:
                self.global_end_fs = now
            return
        self._start_compute(master, now)

    # ------------------------------------------------------------------ compute

    def _start_compute(self, master, at_fs: int) -> None:
        if master.failed:
            return
        p = master.f_period
        compute_fs = master.f_compute[master.transfer_index]
        master.computing = True
        if self.faults is not None:
            stall = self.faults.stall_ticks(master.process)
            if stall:
                master.counters.stall_ticks_injected += stall
                if self.tracer is not None:
                    self.tracer.record(
                        self.queue.now_fs,
                        "fu_stall",
                        master.process,
                        f"+{stall} ticks",
                    )
                compute_fs += stall * p
        queue = self.queue
        queue.seq = seq = queue.seq + 1
        heappush(
            queue.heap,
            [
                -(-at_fs // p) * p + compute_fs,
                PRIO_STATE,
                seq,
                False,
                master.f_action,
            ],
        )

    def _on_compute_done(self, master) -> None:
        now = self.queue.now_fs
        if master.failed:
            master.computing = False
            return
        master.computing = False
        master.waiting_grant = True
        job = master.f_jobs[master.transfer_index][master.package_index]
        if self.tracer is not None:
            self.tracer.record(now, "request", master.process, job.label)
        segment = master.f_segment
        if job.path is not None:
            segment.counters.inter_requests += 1
            self.ca.counters.inter_requests += 1
            self.ca.queue.append(job)
            if self._has_timeout:
                self._ca_wait_since[self._job_key(job)] = now
                self._arm_timeout_sweep(now)
            self._schedule_ca_check(now)
        else:
            segment.pending_intra.append(job)
            if (
                segment.locked
                or segment.bus_busy_until_fs > now
                or segment.next_grant_fs > now
            ):
                segment.counters.intra_requests += 1
            self._schedule_sa_check(segment, now)

    # ------------------------------------------------------------------ SA side

    def _schedule_sa_check(self, segment, t_fs: int) -> None:
        if segment.bus_busy_until_fs > t_fs:
            t_fs = segment.bus_busy_until_fs
        if segment.next_grant_fs > t_fs:
            t_fs = segment.next_grant_fs
        p = segment.f_period
        at = -(-t_fs // p) * p
        entry = segment.f_sa_entry
        if entry is not None and not entry[3]:
            if entry[0] <= at:
                return
            entry[3] = True
        queue = self.queue
        queue.seq = seq = queue.seq + 1
        entry = [at, PRIO_SA, seq, False, segment.f_sa_action]
        heappush(queue.heap, entry)
        segment.f_sa_entry = entry

    def _on_sa_check(self, segment) -> None:
        segment.f_sa_entry = None
        queue = self.queue
        now = queue.now_fs
        if segment.locked:
            return
        if segment.bus_busy_until_fs > now or segment.next_grant_fs > now:
            self._schedule_sa_check(segment, now)
            return
        if segment.pending_bu and self._try_serve_hop(segment, now):
            return
        pending = segment.pending_intra
        if not pending:
            return
        counters = segment.counters
        counters.intra_requests += len(pending)
        if segment.f_round_robin:
            # single-requester rounds (the common case) skip the ring scan:
            # both branches of the stepped algorithm return pending[0] then
            if segment.last_granted_master is None or len(pending) == 1:
                job = pending.pop(0)
            else:
                job = self._pick_round_robin(segment)
        else:
            job = self._pick_fixed_priority(segment)
        if self.faults is not None and self.faults.lose_segment_grant(
            segment.index
        ):
            counters.grant_losses += 1
            pending.append(job)
            if self.tracer is not None:
                self.tracer.record(
                    now, "grant_loss", f"SA{segment.index}", job.label
                )
            self._schedule_sa_check(segment, now + segment.f_period)
            return
        counters.grants += 1
        segment.last_granted_master = job.master
        if self.tracer is not None:
            self.tracer.record(now, "grant", f"SA{segment.index}", job.label)
        start = now + segment.f_grant_lat
        end = start + segment.f_occupy_intra
        segment.bus_busy_until_fs = end
        counters.busy_intervals.append((start, end))
        counters.busy_fs += end - start
        if end > counters.quiesce_fs:
            counters.quiesce_fs = end
        segment.f_intra_job = job
        queue.seq = seq = queue.seq + 1
        heappush(
            queue.heap, [end, PRIO_STATE, seq, False, segment.f_intra_action]
        )

    def _on_intra_pop(self, segment) -> None:
        """The prebound completion of the segment's in-flight intra grant.

        A segment's bus serves one intra transfer at a time — the grant
        marks the bus busy until this very event, and same-time SA checks
        pop after it (PRIO_STATE < PRIO_SA) — so a single job slot per
        segment replaces the stepped engine's per-grant closure.
        """
        job = segment.f_intra_job
        segment.f_intra_job = None
        now = self.queue.now_fs
        master = job.mrt
        segment.next_grant_fs = now + segment.f_turnaround
        if self.faults is not None and self.faults.corrupt_package(
            segment.index
        ):
            segment.counters.nacks += 1
            if self.tracer is not None:
                self.tracer.record(
                    now, "nack", f"Segment{segment.index}", job.label
                )
            self._fail_intra(job, segment, now)
            if segment.pending_intra or segment.pending_bu:
                self._schedule_sa_check(segment, now)
            self._schedule_ca_check(now)
            if now > self.global_end_fs:
                self.global_end_fs = now
            return
        master.waiting_grant = False
        master.counters.packages_sent += 1
        if self._resilient:
            self._clear_retry_state(job)
        if self.tracer is not None:
            self.tracer.record(
                now, "transfer_done", f"Segment{segment.index}", job.label
            )
        self._deliver(job.transfer.target, now)
        self._advance_master(master, now, True)
        self.progress_count += 1
        self.last_progress_fs = now
        if segment.pending_intra or segment.pending_bu:
            self._schedule_sa_check(segment, now)
        self._schedule_ca_check(now)
        if now > self.global_end_fs:
            self.global_end_fs = now

    def _on_intra_done(self, job, segment) -> None:
        # kept for signature parity with the stepped kernel
        segment.f_intra_job = job
        self._on_intra_pop(segment)

    # ------------------------------------------------------------------ CA side

    def _schedule_ca_check(self, t_fs: int) -> None:
        p = self._ca_period
        at = -(-t_fs // p) * p
        entry = self._ca_entry
        if entry is not None and not entry[3]:
            if entry[0] <= at:
                return
            entry[3] = True
        queue = self.queue
        queue.seq = seq = queue.seq + 1
        entry = [at, PRIO_CA, seq, False, self._ca_check_action]
        heappush(queue.heap, entry)
        self._ca_entry = entry

    def _on_ca_check(self) -> None:
        self._ca_entry = None
        now = self.queue.now_fs
        jobs = self.ca.queue
        if self._has_timeout and jobs:
            self._expire_ca_timeouts(now)
            jobs = self.ca.queue
        if not jobs:
            return
        remaining: List[_FastJob] = []
        grant_lost = False
        faults = self.faults
        segments = self._seg_by_index
        circuit = self._circuit
        for job in jobs:
            path = job.path
            if circuit:
                free = True
                for index in path:
                    s = segments[index]
                    if (
                        s.locked
                        or s.bus_busy_until_fs > now
                        or s.next_grant_fs > now
                    ):
                        free = False
                        break
            else:
                s = segments[path[0]]
                bu = job.chain[0]
                free = (
                    not s.locked
                    and s.bus_busy_until_fs <= now
                    and s.next_grant_fs <= now
                    and len(bu.queues[job.direction]) < bu.depth
                )
            if free:
                if faults is not None and faults.lose_ca_grant():
                    self.ca.counters.grant_losses += 1
                    if self.tracer is not None:
                        self.tracer.record(now, "grant_loss", "CA", job.label)
                    remaining.append(job)
                    grant_lost = True
                    continue
                self._grant_circuit(job, path, now)
            else:
                remaining.append(job)
        self.ca.queue = remaining
        if grant_lost:
            self._schedule_ca_check(now + self._ca_period)
        if remaining:
            # a blocker may be purely time-based (busy bus or turnaround
            # window): schedule a retry at the earliest such expiry so the
            # queue can never stall (lock/FIFO blockers are event-based)
            retry_candidates = []
            for job in remaining:
                watched = job.path if circuit else job.path[:1]
                expiries = []
                lock_blocked = False
                for index in watched:
                    s = segments[index]
                    if s.locked:
                        lock_blocked = True
                        break
                    blocker = s.bus_busy_until_fs
                    if s.next_grant_fs > blocker:
                        blocker = s.next_grant_fs
                    if blocker > now:
                        expiries.append(blocker)
                if not lock_blocked and expiries:
                    retry_candidates.append(max(expiries))
            if retry_candidates:
                self._schedule_ca_check(min(retry_candidates))

    def _bu_between(self, a: int, b: int):
        return self.bus_units[(a, b) if a < b else (b, a)]

    def _grant_circuit(self, job, path, now_fs: int) -> None:
        segments = self._seg_by_index
        if self._circuit:
            for index in path:
                segments[index].locked = True
        else:
            segments[path[0]].locked = True
        self.ca.begin_circuit(job, now_fs)
        if self.tracer is not None:
            self.tracer.record(now_fs, "circuit_grant", "CA", job.label)
        source = segments[path[0]]
        p = source.f_period
        decided = now_fs + self._ca_decision_fs
        fill_start = -(-decided // p) * p + source.f_grant_lat
        fill_end = fill_start + source.f_fill
        source.bus_busy_until_fs = fill_end
        counters = source.counters
        counters.busy_intervals.append((fill_start, fill_end))
        counters.busy_fs += fill_end - fill_start
        if fill_end > counters.quiesce_fs:
            counters.quiesce_fs = fill_end
        job.chain[0].counters.busy_intervals.append((fill_start, fill_end))
        self.queue.schedule(
            fill_end, partial(self._on_fill_done, job, path), PRIO_STATE
        )

    def _on_fill_done(self, job, path) -> None:
        now = self.queue.now_fs
        source = self._seg_by_index[path[0]]
        direction = job.direction
        if direction > 0:
            source.counters.packets_to_right += 1
        else:
            source.counters.packets_to_left += 1
        bu = job.chain[0]
        counters = bu.counters
        counters.input_packages += 1
        if path[0] == bu.left:
            counters.received_from_left += 1
        else:
            counters.received_from_right += 1
        counters.tct += self.spec.package_size
        bu.push(now, direction)
        if self.tracer is not None:
            self.tracer.record(now, "fill_done", bu.name, job.label)
        master = job.mrt
        master.outstanding_deliveries += 1
        if self.faults is not None and self.faults.drop_in_bu(
            bu.left, bu.right
        ):
            bu.pop(direction)
            counters.dropped_packages += 1
            master.outstanding_deliveries -= 1
            if self.tracer is not None:
                self.tracer.record(now, "bu_drop", bu.name, job.label)
            self.ca.end_circuit(job, now)
            self._release_segment(source, now)
            if self._circuit:
                for index in path[1:]:
                    downstream = self._seg_by_index[index]
                    if downstream.locked:
                        self._release_segment(downstream, now)
            self._fail_inter(job, now)
            if now > self.global_end_fs:
                self.global_end_fs = now
            return
        self.progress_count += 1
        self.last_progress_fs = now
        self._release_segment(source, now)
        if self._circuit:
            self.queue.schedule(
                now, partial(self._on_hop, job, path, 1), PRIO_STATE
            )
        else:
            self._enqueue_hop(job, path, 1, now)
        if now > self.global_end_fs:
            self.global_end_fs = now

    def _on_hop(self, job, path, index: int) -> None:
        now = self.queue.now_fs
        segment = self._seg_by_index[path[index]]
        p = segment.f_period
        u_start = (now // p + 1) * p + segment.f_bu_wait
        self._start_hop_occupation(
            job, path, index, load_end_fs=now, u_start_fs=u_start
        )

    def _start_hop_occupation(
        self, job, path, index: int, load_end_fs: int, u_start_fs: int
    ) -> None:
        segment = self._seg_by_index[path[index]]
        p = segment.f_period
        bu_prev = job.chain[index - 1]
        wp = u_start_fs // p - load_end_fs // p
        bu_prev.counters.tct += wp
        bu_prev.counters.waiting_ticks += wp
        if index == len(path) - 1:
            u_end = u_start_fs + segment.f_hop_dest
        else:
            u_end = u_start_fs + segment.f_hop_transit
        segment.bus_busy_until_fs = u_end
        counters = segment.counters
        counters.busy_intervals.append((u_start_fs, u_end))
        counters.busy_fs += u_end - u_start_fs
        if u_end > counters.quiesce_fs:
            counters.quiesce_fs = u_end
        bu_prev.counters.busy_intervals.append((u_start_fs, u_end))
        self.queue.schedule(
            u_end, partial(self._on_hop_done, job, path, index), PRIO_STATE
        )

    # -- store-and-forward hop arbitration -----------------------------------

    def _enqueue_hop(self, job, path, index: int, now_fs: int) -> None:
        segment = self._seg_by_index[path[index]]
        segment.pending_bu.append((job, path, index))
        self._schedule_sa_check(segment, now_fs)

    def _try_serve_hop(self, segment, now_fs: int) -> bool:
        for slot, (job, path, index) in enumerate(segment.pending_bu):
            direction = job.direction
            if index != len(path) - 1:
                bu_next = job.chain[index]
                if len(bu_next.queues[direction]) >= bu_next.depth:
                    continue
            segment.pending_bu.pop(slot)
            p = segment.f_period
            load_end = job.chain[index - 1].queues[direction][0]
            earliest = (load_end // p + 1) * p + segment.f_bu_wait
            u_start = now_fs + segment.f_grant_lat
            if earliest > u_start:
                u_start = earliest
            self._start_hop_occupation(
                job, path, index, load_end_fs=load_end, u_start_fs=u_start
            )
            return True
        return False

    def _on_hop_done(self, job, path, index: int) -> None:
        now = self.queue.now_fs
        seg_index = path[index]
        segment = self._seg_by_index[seg_index]
        direction = job.direction
        bu_prev = job.chain[index - 1]
        bu_prev.pop(direction)
        prev_counters = bu_prev.counters
        prev_counters.output_packages += 1
        if seg_index == bu_prev.left:
            prev_counters.transferred_to_left += 1
        else:
            prev_counters.transferred_to_right += 1
        prev_counters.tct += self.spec.package_size
        if self.tracer is not None:
            self.tracer.record(now, "hop_done", bu_prev.name, job.label)
        if index == len(path) - 1:
            master = job.mrt
            if self.faults is not None and self.faults.corrupt_package(
                seg_index
            ):
                self.ca.counters.nacks += 1
                if self.tracer is not None:
                    self.tracer.record(
                        now, "nack", f"Segment{seg_index}", job.label
                    )
                master.outstanding_deliveries -= 1
                self._release_segment(segment, now)
                self.ca.end_circuit(job, now)
                self._fail_inter(job, now)
            else:
                self._deliver(job.transfer.target, now)
                master.waiting_grant = False
                master.counters.packages_sent += 1
                master.outstanding_deliveries -= 1
                if self._resilient:
                    self._clear_retry_state(job)
                self._release_segment(segment, now)
                self.ca.end_circuit(job, now)
                self._advance_master(master, now, True)
                self.progress_count += 1
                self.last_progress_fs = now
        else:
            bu_next = job.chain[index]
            next_counters = bu_next.counters
            next_counters.input_packages += 1
            if seg_index == bu_next.left:
                next_counters.received_from_left += 1
            else:
                next_counters.received_from_right += 1
            next_counters.tct += self.spec.package_size
            bu_next.push(now, direction)
            self.progress_count += 1
            self.last_progress_fs = now
            self._release_segment(segment, now)
            if self._circuit:
                self.queue.schedule(
                    now,
                    partial(self._on_hop, job, path, index + 1),
                    PRIO_STATE,
                )
            else:
                self._enqueue_hop(job, path, index + 1, now)
        if not self._circuit:
            upstream = bu_prev.left if direction > 0 else bu_prev.right
            self._schedule_sa_check(self._seg_by_index[upstream], now)
            self._schedule_ca_check(now)
        if now > self.global_end_fs:
            self.global_end_fs = now

    def _release_segment(self, segment, now_fs: int) -> None:
        segment.locked = False
        next_grant = now_fs + segment.f_turnaround
        if next_grant > segment.next_grant_fs:
            segment.next_grant_fs = next_grant
        if segment.pending_intra or segment.pending_bu:
            self._schedule_sa_check(segment, now_fs)
        self._schedule_ca_check(now_fs)

    # ------------------------------------------------------------------ delivery

    def _deliver(self, target: str, now_fs: int) -> None:
        counters = self.process_counters[target]
        counters.packages_received += 1
        if self.tracer is not None:
            self.tracer.record(now_fs, "deliver", target)
        counters.last_input_fs = now_fs
        if (
            counters.start_fs is None
            and counters.packages_received >= counters.expected_inputs
        ):
            self._schedule_fire(target, now_fs)

    def _advance_master(self, master, now_fs: int, delivered: bool) -> None:
        master.package_index += 1
        if master.package_index >= master.f_packages[master.transfer_index]:
            master.package_index = 0
            master.transfer_index += 1
        if master.transfer_index < master.f_ntransfers:
            self._start_compute(master, now_fs)
        elif (
            delivered
            and master.outstanding_deliveries == 0
            and not master.counters.done
        ):
            master.counters.done = True
            master.counters.end_fs = now_fs
            if self.tracer is not None:
                self.tracer.record(now_fs, "process_done", master.process)


# ---------------------------------------------------------------------------
# engine registry
# ---------------------------------------------------------------------------

_ENGINES: Dict[str, Type[Simulation]] = {
    "stepped": Simulation,
    "fast": FastSimulation,
}


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize an engine name: explicit argument, else ``SEGBUS_ENGINE``,
    else the repository default (``stepped``).

    Raises :class:`~repro.errors.SegBusError` on unknown names, naming the
    known engines — both for CLI typos and for a bad environment value.
    """
    if engine is None or engine == "":
        engine = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    if engine not in ENGINE_NAMES:
        raise SegBusError(
            f"unknown emulation engine {engine!r}; known engines: "
            + ", ".join(ENGINE_NAMES)
        )
    return engine


def simulation_class(engine: Optional[str] = None) -> Type[Simulation]:
    """The Simulation class implementing ``engine`` (after resolution).

    The batch kernel registers itself on first use — importing it here
    (not at module load) keeps ``fastkernel -> batchkernel`` from being a
    circular import.
    """
    name = resolve_engine(engine)
    if name not in _ENGINES:
        import repro.emulator.batchkernel  # noqa: F401 - registers "batch"
    return _ENGINES[name]


def make_simulation(
    application,
    spec,
    config=None,
    engine: Optional[str] = None,
    **kwargs,
) -> Simulation:
    """Construct an unrun Simulation on the chosen engine."""
    return simulation_class(engine)(application, spec, config, **kwargs)
