"""The lockstep mega-batch engine: many instances, one vectorized call.

Monte Carlo workloads — reliability sweeps, ``segbus selftest``, design
space exploration — run *populations* of independent emulations that
share almost everything: the application graph, the platform spec, the
config and the retry policy, differing only in their fault plans (seed
and rate).  Running each instance as its own process-pool job re-pays
the same construction cost per run and leaves nothing for the engines to
share.  :func:`run_batch` instead simulates the whole population in one
call, in lockstep, over struct-of-arrays numpy state:

* **SoA scheduling state** — :class:`LockstepBatch` keeps per-instance
  ``frontier_fs`` (next event time), ``alive`` and ``executed`` arrays
  and always advances the *laggard* instance by one bounded event chunk,
  so the population moves through simulated time together and a single
  runaway instance cannot starve its siblings.
* **Shared construction** — instances are grouped by a compatibility
  digest (application, spec, config, retry policy); exact-duplicate
  instances (same fault plan too) are deduplicated onto one simulation.
* **The zero-hit fast path** — within a group, one *reference* run with
  a counting injector records how many fault-draw opportunities each
  ``(kind, site)`` sees in a fault-free execution.  An instance whose
  transient streams, replayed ahead of time (vectorized xorshift64*
  over a numpy state array), never hit within those opportunity counts
  provably executes the exact same event sequence as the reference — so
  it reuses the reference simulation and report outright instead of
  re-simulating.  At the low fault rates reliability studies care about
  most of the population rides this path, which is where the order-of-
  magnitude aggregate throughput over the stepped engine comes from
  (see docs/PERFORMANCE.md).

**Equivalence contract.**  Per-instance observables are byte-identical
to the stepped kernel: :class:`BatchSimulation` is the fast kernel
drained through the same chunked scheduler multi-instance batches use
(identical loop semantics, budgets and stall diagnostics), and the
zero-hit clone is only taken when the predraw *proves* the instance
cannot diverge from the reference.  The contract is enforced by the
three-engine ENG-1 oracle, the Hypothesis differential suite and the
golden-trace store, like the fast engine before it.

An instance that deadlocks or exhausts a budget mid-batch surfaces as
that instance's error without poisoning its siblings; infrastructure
errors (anything that is not a :class:`~repro.errors.SegBusError`)
still propagate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy accelerates the SoA state + predraw; pure Python works too
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import FastSimulation
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.report import EmulationReport, build_report
from repro.errors import SegBusError, StallError
from repro.faults.model import (
    KIND_BU_DROP,
    KIND_CORRUPTION,
    KIND_FU_STALL,
    KIND_GRANT_LOSS,
    FaultPlan,
)
from repro.faults.policy import RetryPolicy
from repro.faults.prng import DeterministicStream, stream_state
from repro.psdf.graph import PSDFGraph

try:  # heapq symbols match the fast kernel's inlined loop
    from heapq import heappop
except ImportError:  # pragma: no cover - stdlib
    raise

#: events per lockstep chunk: small enough that the laggard scheduler
#: interleaves instances through simulated time, large enough that the
#: per-chunk bookkeeping vanishes against the ~1 us/event loop cost
DEFAULT_CHUNK_EVENTS = 512


# ---------------------------------------------------------------------------
# vectorized predraw: replay xorshift64* streams ahead of the simulation
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1
_INV_2_64 = 1.0 / float(1 << 64)
_XS_MULT = 0x2545F4914F6CDD1D


def _python_any_hit(states: Sequence[int], rates: Sequence[float],
                    draws: Sequence[int]) -> List[bool]:
    """Reference predraw: sequential xorshift64* exactly like the streams."""
    hits = []
    for state, rate, count in zip(states, rates, draws):
        x = state
        hit = False
        for _ in range(count):
            x ^= x >> 12
            x = (x ^ (x << 25)) & _MASK64
            x ^= x >> 27
            if ((x * _XS_MULT) & _MASK64) * _INV_2_64 < rate:
                hit = True
                break
        hits.append(hit)
    return hits


def _vector_any_hit(states: Sequence[int], rates: Sequence[float],
                    draws: Sequence[int]) -> List[bool]:
    """Vectorized predraw over one numpy state array (all streams at once).

    Bit-identical to :meth:`DeterministicStream.chance`: same shifts, the
    same wrapping multiply, the same u64 -> [0, 1) mapping, the same
    strict ``<`` comparison — verified at import time by
    :func:`_vector_predraw_ok` and by the unit suite.
    """
    x = _np.array(states, dtype=_np.uint64)
    rate_arr = _np.asarray(rates, dtype=_np.float64)
    draw_arr = _np.asarray(draws, dtype=_np.int64)
    hit = _np.zeros(len(x), dtype=bool)
    if len(x) == 0:
        return []
    kmax = int(draw_arr.max())
    s12, s25, s27 = _np.uint64(12), _np.uint64(25), _np.uint64(27)
    mult = _np.uint64(_XS_MULT)
    with _np.errstate(over="ignore"):
        for k in range(kmax):
            x ^= x >> s12
            x ^= x << s25
            x ^= x >> s27
            sample = (x * mult).astype(_np.float64) * _INV_2_64
            hit |= (draw_arr > k) & (sample < rate_arr)
            # stop once every stream has either hit or run out of draws
            if not ((~hit) & (draw_arr > k + 1)).any():
                break
    return [bool(h) for h in hit]


def _vector_predraw_ok() -> bool:
    """One-time self-check: the vectorized replay must match the streams."""
    if _np is None:
        return False
    state = stream_state(987654321, "segment:1", KIND_CORRUPTION, "0")
    stream = DeterministicStream(987654321, "segment:1", KIND_CORRUPTION, "0")
    sequential = [stream.next_float() for _ in range(128)]
    x = _np.array([state], dtype=_np.uint64)
    s12, s25, s27 = _np.uint64(12), _np.uint64(25), _np.uint64(27)
    mult = _np.uint64(_XS_MULT)
    with _np.errstate(over="ignore"):
        for expected in sequential:
            x ^= x >> s12
            x ^= x << s25
            x ^= x >> s27
            value = float((x * mult).astype(_np.float64)[0]) * _INV_2_64
            if value != expected:
                return False  # pragma: no cover - platform cast mismatch
    return True


_VECTOR_PREDRAW = _vector_predraw_ok()


def predraw_any_hit(states: Sequence[int], rates: Sequence[float],
                    draws: Sequence[int]) -> List[bool]:
    """Per stream: does any of the first ``draws[i]`` Bernoulli samples hit?

    Uses the vectorized numpy replay when its import-time self-check
    passed, the sequential reference otherwise — both produce exactly
    the decisions :class:`~repro.faults.injector.FaultInjector` would.
    """
    if _VECTOR_PREDRAW:
        return _vector_any_hit(states, rates, draws)
    return _python_any_hit(states, rates, draws)


# ---------------------------------------------------------------------------
# opportunity counting: how often would a fault plan be consulted?
# ---------------------------------------------------------------------------


class _CountingInjector:
    """Injector stand-in that tallies draw opportunities and never injects.

    The kernel consults the injector once per opportunity; this records
    ``(kind, site) -> count`` for the fault-free execution so the
    zero-hit predraw knows how many samples each record's stream would
    consume.  ``counters.total`` stays 0, so the reference report is
    bit-identical to a fault-free run (see ``build_report``).
    """

    class _ZeroCounters:
        total = 0

    def __init__(self) -> None:
        self.opportunities: Dict[Tuple[str, str], int] = {}
        self.counters = self._ZeroCounters()

    def _count(self, kind: str, site: str) -> None:
        key = (kind, site)
        self.opportunities[key] = self.opportunities.get(key, 0) + 1

    def corrupt_package(self, segment_index: int) -> bool:
        self._count(KIND_CORRUPTION, f"segment:{segment_index}")
        return False

    def lose_segment_grant(self, segment_index: int) -> bool:
        self._count(KIND_GRANT_LOSS, f"segment:{segment_index}")
        return False

    def lose_ca_grant(self) -> bool:
        self._count(KIND_GRANT_LOSS, "ca")
        return False

    def stall_ticks(self, process: str) -> int:
        self._count(KIND_FU_STALL, f"fu:{process}")
        return 0

    def drop_in_bu(self, left: int, right: int) -> bool:
        self._count(KIND_BU_DROP, f"bu:{left}:{right}")
        return False

    def permanent_failures(self) -> Tuple[()]:
        return ()

    def summary(self) -> Dict[str, object]:  # pragma: no cover - not reported
        return {"total": 0, "by_kind": {}, "by_site": {}}


class _CountingPlan:
    """A fault-plan stand-in whose injector is the counting injector."""

    def injector(self) -> _CountingInjector:
        return _CountingInjector()


def record_draws(plan: FaultPlan,
                 opportunities: Dict[Tuple[str, str], int]) -> List[Tuple[int, object, int]]:
    """Per transient record: ``(record index, record, draw count)`` against
    the reference execution's opportunity tally."""
    out = []
    for index, record in enumerate(plan.records):
        if not record.is_transient:
            continue
        count = sum(
            n for (kind, site), n in opportunities.items()
            if kind == record.kind and record.matches(site)
        )
        out.append((index, record, count))
    return out


# ---------------------------------------------------------------------------
# the batch engine: the fast kernel drained through a chunked scheduler
# ---------------------------------------------------------------------------


class BatchSimulation(FastSimulation):
    """The fast kernel with an incremental drain API for lockstep batches.

    A standalone ``run()`` routes through the same prepare/drain/finish
    steps a multi-instance batch uses, so every engine-matrix test (the
    ENG-1 oracle, the goldens, the property suite) exercises the chunked
    scheduler — not a private fourth code path.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._drain_executed = 0
        self._drain_prepared = False

    # -- incremental API ---------------------------------------------------

    def _batch_prepare(self) -> None:
        """Replicate ``run()``'s pre-loop: initial fires + permanent faults."""
        if self._drain_prepared:
            return
        self._drain_prepared = True
        for name in self.application.process_names:
            if self.schedule.inputs_of[name] == 0:
                self._schedule_fire(name, 0)
        self._schedule_permanent_failures()

    def _batch_drain(self, limit: int) -> int:
        """Execute up to ``limit`` events with the one-shot loop's semantics.

        Returns the femtosecond time of the next live event, or ``-1``
        when the queue is drained.  Budgets, stall diagnostics, watchdog
        cadence and the ``queue.executed`` write-back behave exactly like
        :meth:`FastSimulation._run_loop` — the chunk boundary is
        observationally invisible.
        """
        queue = self.queue
        heap = queue.heap
        budget = self.config.max_events
        horizon_fs = self._ca_period * self.config.max_ticks
        watchdog = self.watchdog
        executed = self._drain_executed
        stop = executed + max(1, limit)
        pop = heappop
        try:
            while heap:
                entry = pop(heap)
                if entry[3]:
                    continue
                t_fs = entry[0]
                queue.now_fs = t_fs
                executed += 1
                if t_fs > horizon_fs:
                    raise StallError(
                        f"tick budget exhausted: simulated time passed "
                        f"{self.config.max_ticks} CA ticks — model livelock?",
                        pending=self.pending_work(),
                        last_progress_tick=self.ca.clock.ticks(
                            self.last_progress_fs
                        ),
                        stalled_elements=self.stalled_elements(),
                    )
                entry[4]()
                if executed >= budget:
                    raise StallError(
                        f"event budget exhausted after {budget} events at "
                        f"t={queue.now_fs} fs — model livelock?",
                        pending=self.pending_work(),
                        last_progress_tick=self.ca.clock.ticks(
                            self.last_progress_fs
                        ),
                        stalled_elements=self.stalled_elements(),
                    )
                if watchdog is not None:
                    queue.executed = executed
                    watchdog.observe(self)
                if executed >= stop:
                    break
        finally:
            queue.executed = executed
            self._drain_executed = executed
        while heap and heap[0][3]:
            pop(heap)
        return heap[0][0] if heap else -1

    def _batch_finish(self) -> None:
        """Replicate ``run()``'s post-loop: validation and counter finalize."""
        self._finished = True
        if self.failed_elements or self._abandoned:
            self._finalize_degraded()
        else:
            self._validate_final_state()
        self._finalize_counters()

    # -- standalone run ----------------------------------------------------

    def run(self) -> "BatchSimulation":
        if self._finished:
            return self
        self._batch_prepare()
        while self._batch_drain(DEFAULT_CHUNK_EVENTS) >= 0:
            pass
        self._batch_finish()
        return self


class LockstepBatch:
    """Advance a population of simulations through time together.

    Struct-of-arrays state (numpy when available): per-instance event
    frontier, liveness and executed-event counters.  Each step picks the
    laggard — the live instance with the earliest next event — and
    drains it one chunk, so the population's simulated-time frontiers
    stay within a chunk of each other and memory for finished instances
    is released as early as possible.  A :class:`~repro.errors.SegBusError`
    (deadlock, stall, retry exhaustion) is captured as that instance's
    error; any other exception propagates.
    """

    def __init__(self, sims: Sequence[BatchSimulation],
                 chunk_events: int = DEFAULT_CHUNK_EVENTS) -> None:
        self.sims = list(sims)
        self.chunk_events = max(1, chunk_events)
        n = len(self.sims)
        if _np is not None:
            self.frontier_fs = _np.zeros(n, dtype=_np.int64)
            self.alive = _np.ones(n, dtype=bool)
            self.executed = _np.zeros(n, dtype=_np.int64)
        else:  # pragma: no cover - numpy is available in the image
            self.frontier_fs = [0] * n
            self.alive = [True] * n
            self.executed = [0] * n
        self.errors: List[Optional[SegBusError]] = [None] * n

    def _laggard(self) -> int:
        if _np is not None:
            frontiers = _np.where(
                self.alive, self.frontier_fs, _np.iinfo(_np.int64).max
            )
            return int(frontiers.argmin())
        best, best_fs = -1, None  # pragma: no cover - numpy fallback
        for i, live in enumerate(self.alive):
            if live and (best_fs is None or self.frontier_fs[i] < best_fs):
                best, best_fs = i, self.frontier_fs[i]
        return best

    def drain(self) -> List[Optional[SegBusError]]:
        """Run every instance to completion; per-instance errors, in order."""
        for sim in self.sims:
            sim._batch_prepare()
        alive_count = len(self.sims)
        while alive_count:
            index = self._laggard()
            sim = self.sims[index]
            try:
                next_fs = sim._batch_drain(self.chunk_events)
                if next_fs < 0:
                    sim._batch_finish()
            except SegBusError as exc:
                self.errors[index] = exc
                self.alive[index] = False
                self.executed[index] = sim.queue.executed
                alive_count -= 1
                continue
            self.executed[index] = sim.queue.executed
            if next_fs < 0:
                self.alive[index] = False
                alive_count -= 1
            else:
                self.frontier_fs[index] = next_fs
        return self.errors


# ---------------------------------------------------------------------------
# the public batch API: group, dedup, classify, lockstep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchMember:
    """One instance of a mega-batch: everything one emulation needs."""

    label: str
    application: PSDFGraph
    spec: PlatformSpec
    config: Optional[EmulationConfig] = None
    fault_plan: Optional[FaultPlan] = None
    retry_policy: Optional[RetryPolicy] = None


@dataclass
class BatchMemberOutcome:
    """One instance's result: a finished simulation + report, or an error.

    ``cloned`` marks zero-hit instances that share the group reference's
    simulation and report (provably byte-identical, see the module
    docstring); ``deduped`` marks exact duplicates of an earlier
    instance.  ``group`` indexes the compatibility group.
    """

    label: str
    sim: Optional[Simulation] = None
    report: Optional[EmulationReport] = None
    error: Optional[SegBusError] = None
    cloned: bool = False
    deduped: bool = False
    group: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class BatchRunStats:
    """How the batch was executed (tests and docs pin these)."""

    members: int
    groups: int
    simulated: int
    cloned: int
    deduped: int


@dataclass
class BatchRun:
    """Everything :func:`run_batch` produced, in member order."""

    outcomes: Tuple[BatchMemberOutcome, ...]
    stats: BatchRunStats

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)


def _member_group_key(member: BatchMember, cache: Dict[tuple, str]) -> str:
    # canonical_digest lives in the analysis layer but only depends on
    # stdlib + the canonical-form helpers; importing it here keeps one
    # digest convention across checkpoints and batch grouping.  Sweeps
    # share the model objects across hundreds of members, so the digest
    # is memoized by object identity (the member list keeps them alive).
    from repro.analysis.executor import canonical_digest

    ids = (
        id(member.application),
        id(member.spec),
        id(member.config),
        id(member.retry_policy),
    )
    key = cache.get(ids)
    if key is None:
        key = canonical_digest(
            member.application,
            member.spec,
            member.config or EmulationConfig(),
            member.retry_policy or RetryPolicy(),
        )
        cache[ids] = key
    return key


def _member_plan_key(member: BatchMember) -> str:
    from repro.analysis.executor import canonical_digest

    if member.fault_plan is None:
        return ""
    return canonical_digest(member.fault_plan)


def _classify_zero_hit(
    plans: Sequence[FaultPlan],
    opportunities: Dict[Tuple[str, str], int],
) -> List[bool]:
    """Per plan: can it provably not inject anything the reference didn't?

    All plans' streams are replayed in *one* vectorized predraw call —
    per-plan calls would pay numpy's per-op overhead on tiny arrays.
    """
    states: List[int] = []
    rates: List[float] = []
    draws: List[int] = []
    owner: List[int] = []
    for p, plan in enumerate(plans):
        for index, record, count in record_draws(plan, opportunities):
            states.append(
                stream_state(plan.seed, record.site, record.kind, str(index))
            )
            rates.append(record.rate)
            draws.append(count)
            owner.append(p)
    hits = predraw_any_hit(states, rates, draws)
    verdict = [True] * len(plans)
    for k, hit in enumerate(hits):
        if hit:
            verdict[owner[k]] = False
    return verdict


def _simulate_members(members: List[BatchMember], indices: List[int],
                      group: int, chunk_events: int,
                      outcomes: List[Optional[BatchMemberOutcome]]) -> int:
    """Lockstep-run the given member indices; returns how many ran."""
    sims = [
        BatchSimulation(
            members[i].application,
            members[i].spec,
            members[i].config,
            fault_plan=members[i].fault_plan,
            retry_policy=members[i].retry_policy,
        )
        for i in indices
    ]
    errors = LockstepBatch(sims, chunk_events).drain()
    for i, sim, error in zip(indices, sims, errors):
        if error is not None:
            outcomes[i] = BatchMemberOutcome(
                label=members[i].label, error=error, group=group
            )
        else:
            outcomes[i] = BatchMemberOutcome(
                label=members[i].label,
                sim=sim,
                report=build_report(sim),
                group=group,
            )
    return len(indices)


def run_batch(members: Sequence[BatchMember],
              chunk_events: int = DEFAULT_CHUNK_EVENTS) -> BatchRun:
    """Simulate a population of instances in one vectorized call.

    Instances are grouped by compatibility (application, spec, config,
    retry policy); heterogeneous batches simply fall back to one lockstep
    run per group.  Within a group, exact duplicates are deduplicated,
    zero-hit instances clone the group reference (see the module
    docstring for why that is exact), and everything else runs in
    lockstep.  Outcomes come back in member order; instance-level
    failures (:class:`~repro.errors.SegBusError`) are captured per
    instance and never poison siblings.
    """
    members = list(members)
    outcomes: List[Optional[BatchMemberOutcome]] = [None] * len(members)
    groups: Dict[str, List[int]] = {}
    key_cache: Dict[tuple, str] = {}
    for i, member in enumerate(members):
        groups.setdefault(_member_group_key(member, key_cache), []).append(i)

    simulated = cloned = deduped = 0
    for group, indices in enumerate(groups.values()):
        # -- dedup exact duplicates onto the first occurrence --------------
        first_by_plan: Dict[str, int] = {}
        distinct: List[int] = []
        dup_of: Dict[int, int] = {}
        for i in indices:
            key = _member_plan_key(members[i])
            if key in first_by_plan:
                dup_of[i] = first_by_plan[key]
                deduped += 1
            else:
                first_by_plan[key] = i
                distinct.append(i)

        # -- zero-hit fast path: one reference run for the whole group -----
        reference: Optional[BatchSimulation] = None
        reference_report: Optional[EmulationReport] = None
        opportunities: Optional[Dict[Tuple[str, str], int]] = None
        if len(distinct) > 1:
            exemplar = members[distinct[0]]
            try:
                reference = BatchSimulation(
                    exemplar.application,
                    exemplar.spec,
                    exemplar.config,
                    fault_plan=_CountingPlan(),
                    retry_policy=exemplar.retry_policy,
                ).run()
            except SegBusError:
                reference = None  # group misbehaves fault-free: run all fully
            else:
                if not reference.degraded:
                    opportunities = reference.faults.opportunities
                    reference_report = build_report(reference)
                    simulated += 1

        to_run: List[int] = []
        candidates: List[int] = []
        clone_now: List[int] = []
        for i in distinct:
            plan = members[i].fault_plan
            if opportunities is None:
                to_run.append(i)
            elif plan is None:
                clone_now.append(i)
            elif plan.permanent_records:
                to_run.append(i)
            else:
                candidates.append(i)
        if candidates:
            verdicts = _classify_zero_hit(
                [members[i].fault_plan for i in candidates], opportunities
            )
            for i, is_zero_hit in zip(candidates, verdicts):
                (clone_now if is_zero_hit else to_run).append(i)
        for i in clone_now:
            outcomes[i] = BatchMemberOutcome(
                label=members[i].label,
                sim=reference,
                report=reference_report,
                cloned=True,
                group=group,
            )
            cloned += 1
        if to_run:
            simulated += _simulate_members(
                members, to_run, group, chunk_events, outcomes
            )

        for i, source in dup_of.items():
            original = outcomes[source]
            outcomes[i] = BatchMemberOutcome(
                label=members[i].label,
                sim=original.sim,
                report=original.report,
                error=original.error,
                cloned=original.cloned,
                deduped=True,
                group=group,
            )

    return BatchRun(
        outcomes=tuple(outcomes),
        stats=BatchRunStats(
            members=len(members),
            groups=len(groups),
            simulated=simulated,
            cloned=cloned,
            deduped=deduped,
        ),
    )


# register the engine: fastkernel resolves "batch" to this class lazily
from repro.emulator import fastkernel as _fastkernel  # noqa: E402

_fastkernel._ENGINES["batch"] = BatchSimulation
