"""The discrete-event kernel's event queue.

A tiny deterministic priority queue: events are ordered by
``(time_fs, priority, sequence)`` — sequence is the insertion counter, so
ties resolve in scheduling order and two runs of the same model are
bit-identical.  Priorities let the kernel order same-instant phases: state
changes (deliveries, releases) commit before the Central Arbiter
re-examines its queue, which happens before local Segment Arbiter
arbitration (the CA "has the central role", section 2.1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import EmulationError

#: Event priorities (lower runs first at equal timestamps).
PRIO_STATE = 0      # deliveries, bus releases, compute completions
PRIO_CA = 5         # central-arbiter queue examination
PRIO_SA = 6         # segment-arbiter local arbitration
PRIO_MONITOR = 9    # end-of-emulation bookkeeping

Action = Callable[[], None]


@dataclass(order=True)
class _Entry:
    time_fs: int
    priority: int
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """Deterministic min-heap of timed actions."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._counter = itertools.count()
        self._now_fs = 0
        self._executed = 0

    @property
    def now_fs(self) -> int:
        """Current simulation time (last popped event's timestamp)."""
        return self._now_fs

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time_fs: int, action: Action, priority: int = PRIO_STATE) -> _Entry:
        """Enqueue ``action`` at ``time_fs``; returns a cancellable handle."""
        if time_fs < self._now_fs:
            raise EmulationError(
                f"cannot schedule event in the past: {time_fs} < now {self._now_fs}"
            )
        entry = _Entry(time_fs, priority, next(self._counter), action)
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, entry: _Entry) -> None:
        """Mark a scheduled event as cancelled (lazily removed)."""
        entry.cancelled = True

    def pop(self) -> Optional[Tuple[int, Action]]:
        """Remove and return the next live event, or None when drained."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now_fs = entry.time_fs
            self._executed += 1
            return entry.time_fs, entry.action
        return None

    def run(self, max_events: int = 50_000_000) -> int:
        """Execute events until the queue drains; returns the event count.

        ``max_events`` guards against runaway models (raises
        :class:`~repro.errors.EmulationError` when exceeded).
        """
        start = self._executed
        while True:
            if self._executed - start >= max_events:
                raise EmulationError(
                    f"event budget exhausted after {max_events} events at "
                    f"t={self._now_fs} fs — model livelock?"
                )
            item = self.pop()
            if item is None:
                return self._executed - start
            _, action = item
            action()
