"""The discrete-event simulation kernel of the SegBus emulator.

One :class:`Simulation` executes a PSDF application on a platform
configuration and accumulates the monitoring counters of section 3.5.  The
behavioural rules (normative version in DESIGN.md):

**Firing.** A process fires once every input flow is fully delivered
(initial processes at t = 0); activity starts at the first clock edge of its
segment *strictly after* the enabling instant, so a source process starts at
tick 1 — the paper's ``P0, Start Time = 10989 ps`` at 91 MHz.

**Intra-segment transfer.** Master computes ``C`` ticks per package, raises
a request; the SA arbitrates round-robin whenever its bus is free and
unlocked.  Each arbitration round observes every pending request (that is
the SA's request counter — contention inflates it above the raw package
count, as in the paper's 124 observations for 95 local packages).  A grant
occupies the bus for ``s`` ticks (plus configured grant/ack latencies).

**Inter-segment transfer.** The SA forwards the request to the CA (counted
once per package at both arbiters).  The CA connects the full source→target
path when every segment on it is free, then: the source master fills the
first BU (``s`` ticks, source clock), segments release in cascade while the
package hops BU-to-BU (``s`` ticks per segment, local clock); the final hop
delivers to the target device.  A BU's waiting period between load and
unload is ``bu_sampling_ticks`` (+``bu_sync_ticks``) in the downstream
clock — W̄P = 1 tick by default, matching the paper's measurement.

**Counters.** SA TCT = clock cycles from t = 0 until the segment's last bus
activity; CA TCT = cycles until the global end plus a small epilogue.  The
execution time is ``max_x(TCT_x * period_x)`` over all SAs and the CA
(section 4, "Calculation of the execution time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.emulator.bu import BURT
from repro.emulator.ca import CART
from repro.emulator.clock import ClockDomain
from repro.emulator.config import EmulationConfig
from repro.emulator.counters import (
    BUCounters,
    CACounters,
    ProcessCounters,
    SegmentCounters,
)
from repro.emulator.events import EventQueue, PRIO_CA, PRIO_SA, PRIO_STATE
from repro.emulator.fu import MasterRT, TransferJob
from repro.emulator.segment import SegmentRT
from repro.errors import (
    DeadlockError,
    ElementFailureError,
    EmulationError,
    FaultConfigError,
    MappingError,
    StallError,
)
from repro.faults.model import KIND_PERMANENT
from repro.faults.policy import RetryPolicy
from repro.model.topology import LinearTopology
from repro.psdf.graph import PSDFGraph
from repro.psdf.schedule import Schedule, extract_schedule
from repro.units import Frequency


@dataclass(frozen=True)
class PlatformSpec:
    """The platform parameters the kernel needs (a slimmed-down PSM).

    Usually produced from a parsed PSM scheme
    (:meth:`from_parsed_psm`) or a platform model (:meth:`from_platform`).
    """

    package_size: int
    segment_frequencies_mhz: Mapping[int, float]
    ca_frequency_mhz: float
    placement: Mapping[str, int]
    bu_depths: Mapping[Tuple[int, int], int] = field(default_factory=dict)
    #: per-segment arbitration policy ("round-robin" default, or
    #: "fixed-priority": masters served in ascending name order)
    sa_policies: Mapping[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.package_size < 1:
            raise EmulationError(f"package size must be >= 1, got {self.package_size}")
        indices = sorted(self.segment_frequencies_mhz)
        if indices != list(range(1, len(indices) + 1)):
            raise EmulationError(
                f"segment indices must be contiguous from 1, got {indices}"
            )
        for process, seg in self.placement.items():
            if seg not in self.segment_frequencies_mhz:
                raise MappingError(
                    f"process {process!r} placed on unknown segment {seg}"
                )

    @property
    def segment_count(self) -> int:
        return len(self.segment_frequencies_mhz)

    @classmethod
    def from_parsed_psm(cls, parsed) -> "PlatformSpec":
        """Build from :class:`repro.xmlio.psm_parser.ParsedPSM`."""
        return cls(
            package_size=parsed.package_size,
            segment_frequencies_mhz=dict(parsed.segment_frequencies_mhz),
            ca_frequency_mhz=parsed.ca_frequency_mhz,
            placement=dict(parsed.placement),
            bu_depths=dict(parsed.bu_depths),
            sa_policies=dict(parsed.sa_policies),
        )

    @classmethod
    def from_platform(cls, platform) -> "PlatformSpec":
        """Build from :class:`repro.model.elements.SegBusPlatform`."""
        if platform.central_arbiter is None:
            raise EmulationError("platform has no central arbiter")
        return cls(
            package_size=platform.package_size,
            segment_frequencies_mhz={
                seg.index: seg.frequency.mhz for seg in platform.segments
            },
            ca_frequency_mhz=platform.central_arbiter.frequency.mhz,
            placement=platform.process_placement(),
            bu_depths={
                (bu.left, bu.right): bu.depth for bu in platform.border_units
            },
            sa_policies={
                seg.index: seg.arbiter.policy for seg in platform.segments
            },
        )


class Simulation:
    """One emulation run: construct, :meth:`run`, then read the counters."""

    def __init__(
        self,
        application: PSDFGraph,
        spec: PlatformSpec,
        config: Optional[EmulationConfig] = None,
        tracer=None,
        fault_plan=None,
        retry_policy: Optional[RetryPolicy] = None,
        watchdog=None,
    ) -> None:
        self.application = application
        self.spec = spec
        self.config = config or EmulationConfig()
        #: optional repro.emulator.trace.Tracer receiving semantic events
        self.tracer = tracer
        #: optional repro.faults.FaultPlan turned into a per-run injector
        self.faults = fault_plan.injector() if fault_plan is not None else None
        self.retry_policy = retry_policy or RetryPolicy()
        #: optional repro.faults.Watchdog observing the run loop
        self.watchdog = watchdog
        missing = sorted(set(application.process_names) - set(spec.placement))
        if missing:
            raise MappingError(
                "processes without placement: " + ", ".join(missing)
            )
        self.schedule: Schedule = extract_schedule(application, spec.package_size)
        self.topology = LinearTopology(spec.segment_count)
        self.queue = EventQueue()

        self.segments: Dict[int, SegmentRT] = {}
        for index in sorted(spec.segment_frequencies_mhz):
            clock = ClockDomain(
                f"Segment{index}",
                Frequency.from_mhz(spec.segment_frequencies_mhz[index]),
            )
            self.segments[index] = SegmentRT(
                index=index, clock=clock, counters=SegmentCounters(index=index)
            )
        self.ca = CART(
            clock=ClockDomain("CA", Frequency.from_mhz(spec.ca_frequency_mhz)),
            counters=CACounters(),
        )
        self.bus_units: Dict[Tuple[int, int], BURT] = {}
        for pair in self.topology.bu_pairs:
            self.bus_units[pair] = BURT(
                left=pair[0],
                right=pair[1],
                depth=spec.bu_depths.get(pair, 1),
                counters=BUCounters(left=pair[0], right=pair[1]),
            )

        self.process_counters: Dict[str, ProcessCounters] = {}
        self.masters: Dict[str, MasterRT] = {}
        for name in application.process_names:
            counters = ProcessCounters(
                name=name, expected_inputs=self.schedule.inputs_of[name]
            )
            self.process_counters[name] = counters
            transfers = self.schedule.transfers_of[name]
            if transfers:
                self.masters[name] = MasterRT(
                    process=name,
                    segment_index=spec.placement[name],
                    transfers=transfers,
                    counters=counters,
                )
        self.global_end_fs = 0
        self._finished = False
        # dedup handles for pending arbitration events (earliest-wins)
        self._sa_entries: Dict[int, object] = {}
        self._ca_entry = None
        # -- resilience state ------------------------------------------------
        #: retirement counter observed by the watchdog (fires, deliveries,
        #: completed transfers/hops — never NACKs or lost grants)
        self.progress_count = 0
        self.last_progress_fs = 0
        #: True when the run completed in degraded mode (see run())
        self.degraded = False
        #: human-readable descriptions of flows the platform never served
        self.unserved_flows: Tuple[str, ...] = ()
        #: processes whose FU failed permanently, in failure order
        self.failed_elements: List[str] = []
        #: (job, site) pairs abandoned after retry exhaustion
        self._abandoned: List[Tuple[TransferJob, str]] = []
        # per-package failed-attempt counts / CA-queue entry timestamps
        self._failures: Dict[Tuple[str, str, int, int], int] = {}
        self._ca_wait_since: Dict[Tuple[str, str, int, int], int] = {}

    # ------------------------------------------------------------------ utils

    @property
    def package_size(self) -> int:
        return self.spec.package_size

    def _segment_of(self, process: str) -> SegmentRT:
        return self.segments[self.spec.placement[process]]

    def _note_end(self, t_fs: int) -> None:
        if t_fs > self.global_end_fs:
            self.global_end_fs = t_fs

    def _trace(self, kind: str, subject: str, detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(self.queue.now_fs, kind, subject, detail)

    def _progress(self, t_fs: int) -> None:
        """Mark a retirement (something durable happened) for the watchdog."""
        self.progress_count += 1
        self.last_progress_fs = t_fs

    @staticmethod
    def _job_key(job: TransferJob) -> Tuple[str, str, int, int]:
        return (
            job.master,
            job.transfer.target,
            job.transfer.order,
            job.package_seq,
        )

    # ------------------------------------------------------------------ firing

    def _schedule_fire(self, process: str, enable_fs: int) -> None:
        clock = self._segment_of(process).clock
        at = clock.edge_after(enable_fs)
        self.queue.schedule(at, lambda p=process: self._on_fire(p), PRIO_STATE)

    def _on_fire(self, process: str) -> None:
        now = self.queue.now_fs
        if process in self.failed_elements:
            return  # a dead FU never fires
        counters = self.process_counters[process]
        counters.start_fs = now
        self._trace("fire", process)
        self._progress(now)
        master = self.masters.get(process)
        if master is None:
            # A sink: its job is consuming inputs, all already delivered;
            # it completes at its own firing edge.
            counters.done = True
            counters.end_fs = now
            self._trace("process_done", process)
            self._note_end(now)
            return
        self._start_compute(master, now)

    # ------------------------------------------------------------------ compute

    def _start_compute(self, master: MasterRT, at_fs: int) -> None:
        if master.failed:
            return
        transfer = master.current_transfer
        assert transfer is not None
        clock = self.segments[master.segment_index].clock
        start = clock.edge_at_or_after(at_fs)
        master.computing = True
        stall = 0
        if self.faults is not None:
            stall = self.faults.stall_ticks(master.process)
            if stall:
                master.counters.stall_ticks_injected += stall
                self._trace("fu_stall", master.process, f"+{stall} ticks")
        # master_handshake_ticks model the request/acknowledge signalling
        # between producing a package and the request reaching the arbiter
        end = start + clock.ticks_to_fs(
            transfer.ticks_per_package + self.config.master_handshake_ticks + stall
        )
        self.queue.schedule(
            end, lambda m=master: self._on_compute_done(m), PRIO_STATE
        )

    def _on_compute_done(self, master: MasterRT) -> None:
        now = self.queue.now_fs
        if master.failed:
            master.computing = False
            return  # the FU died while computing; the package never forms
        master.computing = False
        master.waiting_grant = True
        transfer = master.current_transfer
        assert transfer is not None
        source_segment = master.segment_index
        target_segment = self.spec.placement[transfer.target]
        job = TransferJob(
            master=master.process,
            source_segment=source_segment,
            target_segment=target_segment,
            transfer=transfer,
            package_seq=master.package_index,
        )
        segment = self.segments[source_segment]
        self._trace("request", master.process, job.label)
        if job.is_inter_segment:
            segment.counters.inter_requests += 1
            self.ca.counters.inter_requests += 1
            self.ca.queue.append(job)
            self._ca_wait_since[self._job_key(job)] = now
            self._arm_timeout_sweep(now)
            self._schedule_ca_check(now)
        else:
            segment.pending_intra.append(job)
            if segment.locked or not segment.bus_free_at(now):
                # The SA logs the incoming request immediately but cannot
                # serve it; the request is observed again in every later
                # arbitration round — this is what pushes the paper's
                # request counters above the raw package count (124 vs 95
                # local packages on SA1).
                segment.counters.intra_requests += 1
            self._schedule_sa_check(segment, now)

    # ------------------------------------------------------------------ SA side

    def _schedule_sa_check(self, segment: SegmentRT, t_fs: int) -> None:
        at = segment.clock.edge_at_or_after(
            max(t_fs, segment.bus_busy_until_fs, segment.next_grant_fs)
        )
        entry = self._sa_entries.get(segment.index)
        if entry is not None and not entry.cancelled:
            if entry.time_fs <= at:
                return
            self.queue.cancel(entry)
        self._sa_entries[segment.index] = self.queue.schedule(
            at, lambda s=segment: self._on_sa_check(s), PRIO_SA
        )

    def _on_sa_check(self, segment: SegmentRT) -> None:
        self._sa_entries.pop(segment.index, None)
        now = self.queue.now_fs
        if segment.locked:
            return  # circuit in progress; unlock re-schedules the check
        if not segment.bus_free_at(now):
            self._schedule_sa_check(segment, now)
            return
        if segment.pending_bu and self._try_serve_hop(segment, now):
            return
        if not segment.pending_intra:
            return
        # One arbitration round: every pending request is observed.
        segment.counters.intra_requests += len(segment.pending_intra)
        if self.spec.sa_policies.get(segment.index) == "fixed-priority":
            job = self._pick_fixed_priority(segment)
        else:
            job = self._pick_round_robin(segment)
        if self.faults is not None and self.faults.lose_segment_grant(segment.index):
            # the grant signal is lost before the master drives the bus:
            # the request re-enters arbitration one tick later
            segment.counters.grant_losses += 1
            segment.pending_intra.append(job)
            self._trace("grant_loss", f"SA{segment.index}", job.label)
            self._schedule_sa_check(segment, now + segment.clock.ticks_to_fs(1))
            return
        segment.counters.grants += 1
        segment.last_granted_master = job.master
        self._trace("grant", f"SA{segment.index}", job.label)
        clock = segment.clock
        start = now + clock.ticks_to_fs(self.config.grant_latency_ticks)
        occupy = self.package_size + self.config.slave_ack_ticks
        end = start + clock.ticks_to_fs(occupy)
        segment.bus_busy_until_fs = end
        segment.counters.record_busy(start, end)
        self.queue.schedule(
            end, lambda j=job, s=segment: self._on_intra_done(j, s), PRIO_STATE
        )

    def _pick_fixed_priority(self, segment: SegmentRT) -> TransferJob:
        """Fixed-priority arbitration: lowest master name wins every round.

        Starves late-named masters under saturation — the classic trade-off
        the round-robin default avoids; exposed for the policy ablation.
        """
        pending = segment.pending_intra
        best = min(range(len(pending)), key=lambda i: (pending[i].master, i))
        return pending.pop(best)

    def _pick_round_robin(self, segment: SegmentRT) -> TransferJob:
        """Round-robin among masters: rotate past the last granted one."""
        pending = segment.pending_intra
        if segment.last_granted_master is not None:
            order = sorted({j.master for j in pending})
            after = [m for m in order if m > segment.last_granted_master]
            ring = after + [m for m in order if m <= segment.last_granted_master]
            for master_name in ring:
                for i, job in enumerate(pending):
                    if job.master == master_name:
                        return pending.pop(i)
        return pending.pop(0)

    def _on_intra_done(self, job: TransferJob, segment: SegmentRT) -> None:
        now = self.queue.now_fs
        master = self.masters[job.master]
        segment.next_grant_fs = now + segment.clock.ticks_to_fs(
            self.config.bus_turnaround_ticks
        )
        if self.faults is not None and self.faults.corrupt_package(segment.index):
            # CRC failure at the receiving side: the slave NACKs and the
            # package is re-arbitrated (the bus time was still spent)
            segment.counters.nacks += 1
            self._trace("nack", f"Segment{segment.index}", job.label)
            self._fail_intra(job, segment, now)
            if segment.pending_intra or segment.pending_bu:
                self._schedule_sa_check(segment, now)
            self._schedule_ca_check(now)
            self._note_end(now)
            return
        master.waiting_grant = False
        master.counters.packages_sent += 1
        self._clear_retry_state(job)
        self._trace("transfer_done", f"Segment{segment.index}", job.label)
        self._deliver(job.transfer.target, now)
        self._advance_master(master, now, delivered=True)
        self._progress(now)
        if segment.pending_intra or segment.pending_bu:
            self._schedule_sa_check(segment, now)
        self._schedule_ca_check(now)
        self._note_end(now)

    # -- retry/timeout/backoff protocol --------------------------------------

    def _clear_retry_state(self, job: TransferJob) -> None:
        key = self._job_key(job)
        self._failures.pop(key, None)
        self._ca_wait_since.pop(key, None)

    def _record_failure(self, job: TransferJob) -> int:
        """Bump and return the package's failed-attempt count."""
        key = self._job_key(job)
        failures = self._failures.get(key, 0) + 1
        self._failures[key] = failures
        return failures

    def _fail_intra(self, job: TransferJob, segment: SegmentRT, now_fs: int) -> None:
        failures = self._record_failure(job)
        if failures >= self.retry_policy.max_attempts:
            self._on_retry_exhausted(
                job, f"segment:{segment.index}", failures, now_fs
            )
            return
        segment.counters.retries += 1
        delay_fs = segment.clock.ticks_to_fs(
            self.retry_policy.delay_ticks(failures)
        )
        self.queue.schedule(
            now_fs + delay_fs,
            lambda j=job: self._requeue_intra(j),
            PRIO_STATE,
        )

    def _requeue_intra(self, job: TransferJob) -> None:
        now = self.queue.now_fs
        if self.masters[job.master].failed:
            return  # the master died while backing off
        segment = self.segments[job.source_segment]
        segment.pending_intra.append(job)
        if segment.locked or not segment.bus_free_at(now):
            segment.counters.intra_requests += 1
        self._trace("retry", job.master, job.label)
        self._schedule_sa_check(segment, now)

    def _fail_inter(self, job: TransferJob, now_fs: int) -> None:
        failures = self._record_failure(job)
        if failures >= self.retry_policy.max_attempts:
            self._on_retry_exhausted(job, "ca", failures, now_fs)
            return
        self.ca.counters.retries += 1
        delay_fs = self.ca.clock.ticks_to_fs(
            self.retry_policy.delay_ticks(failures)
        )
        self.queue.schedule(
            now_fs + delay_fs,
            lambda j=job: self._requeue_inter(j),
            PRIO_STATE,
        )

    def _requeue_inter(self, job: TransferJob) -> None:
        now = self.queue.now_fs
        if self.masters[job.master].failed:
            return
        # the SA forwards the request to the CA again: both arbiters
        # observe (and count) the retry as a fresh request
        self.segments[job.source_segment].counters.inter_requests += 1
        self.ca.counters.inter_requests += 1
        self.ca.queue.append(job)
        self._ca_wait_since[self._job_key(job)] = now
        self._arm_timeout_sweep(now)
        self._trace("retry", job.master, job.label)
        self._schedule_ca_check(now)

    def _on_retry_exhausted(
        self, job: TransferJob, site: str, attempts: int, now_fs: int
    ) -> None:
        from repro.errors import RetryExhaustedError

        self._clear_retry_state(job)
        if not self.retry_policy.degrades_on_exhaustion:
            raise RetryExhaustedError(site, job.label, attempts)
        self._abandoned.append((job, site))
        master = self.masters[job.master]
        master.waiting_grant = False
        self._trace("abandon", job.master, f"{job.label} at {site}")
        self._advance_master(master, now_fs, delivered=False)

    # ------------------------------------------------------------------ CA side

    def _schedule_ca_check(self, t_fs: int) -> None:
        at = self.ca.clock.edge_at_or_after(t_fs)
        entry = self._ca_entry
        if entry is not None and not entry.cancelled:
            if entry.time_fs <= at:
                return
            self.queue.cancel(entry)
        self._ca_entry = self.queue.schedule(at, self._on_ca_check, PRIO_CA)

    def _on_ca_check(self) -> None:
        self._ca_entry = None
        now = self.queue.now_fs
        self._expire_ca_timeouts(now)
        remaining: List[TransferJob] = []
        grant_lost = False
        for job in self.ca.queue:
            path = self.topology.path(job.source_segment, job.target_segment)
            if self._can_grant(job, path, now):
                if self.faults is not None and self.faults.lose_ca_grant():
                    # the circuit grant never reaches the source segment;
                    # the request stays queued and is re-examined next tick
                    self.ca.counters.grant_losses += 1
                    self._trace("grant_loss", "CA", job.label)
                    remaining.append(job)
                    grant_lost = True
                    continue
                self._grant_circuit(job, path, now)
            else:
                remaining.append(job)
        self.ca.queue = remaining
        if grant_lost:
            self._schedule_ca_check(now + self.ca.clock.ticks_to_fs(1))
        if remaining:
            # Some blocker may be purely time-based (busy bus or turnaround
            # window) with no release event to come — schedule a retry at the
            # earliest such expiry so the queue can never stall.  Lock- and
            # FIFO-space blockers are event-based: releases and pops schedule
            # CA checks themselves.
            retry_candidates = []
            for job in remaining:
                path = self.topology.path(job.source_segment, job.target_segment)
                if self.config.inter_segment_protocol == "circuit":
                    watched = path
                else:
                    watched = path[:1]
                expiries = []
                lock_blocked = False
                for index in watched:
                    segment = self.segments[index]
                    if segment.locked:
                        lock_blocked = True
                        break
                    blocker = max(
                        segment.bus_busy_until_fs, segment.next_grant_fs
                    )
                    if blocker > now:
                        expiries.append(blocker)
                if not lock_blocked and expiries:
                    retry_candidates.append(max(expiries))
            if retry_candidates:
                self._schedule_ca_check(min(retry_candidates))

    def _arm_timeout_sweep(self, now_fs: int) -> None:
        """Schedule a sweep just past the newly-stamped job's wait budget so
        a timeout fires even when no other event would wake the CA."""
        if self.retry_policy.timeout_ticks is None:
            return
        budget_fs = self.ca.clock.ticks_to_fs(self.retry_policy.timeout_ticks)
        at = self.ca.clock.edge_at_or_after(
            now_fs + budget_fs
        ) + self.ca.clock.ticks_to_fs(1)
        self.queue.schedule(at, self._timeout_sweep, PRIO_CA)

    def _timeout_sweep(self) -> None:
        now = self.queue.now_fs
        before = len(self.ca.queue)
        self._expire_ca_timeouts(now)
        if len(self.ca.queue) != before:
            self._schedule_ca_check(now)

    def _expire_ca_timeouts(self, now_fs: int) -> None:
        """Per-hop timeout: a request waiting in the CA queue longer than
        ``timeout_ticks`` counts as a failed attempt and is re-requested
        (with backoff) or abandoned once its attempts are exhausted."""
        if self.retry_policy.timeout_ticks is None or not self.ca.queue:
            return
        budget_fs = self.ca.clock.ticks_to_fs(self.retry_policy.timeout_ticks)
        survivors: List[TransferJob] = []
        for job in self.ca.queue:
            since = self._ca_wait_since.get(self._job_key(job), now_fs)
            if now_fs - since > budget_fs:
                self.ca.counters.timeouts += 1
                self._trace("timeout", "CA", job.label)
                self._fail_inter(job, now_fs)
            else:
                survivors.append(job)
        self.ca.queue = survivors

    def _can_grant(self, job: TransferJob, path: Tuple[int, ...], now_fs: int) -> bool:
        """Grant condition: full free path (circuit) or free source bus plus
        space in the first BU's virtual channel (store-and-forward)."""
        if self.config.inter_segment_protocol == "circuit":
            return all(self.segments[i].bus_free_at(now_fs) for i in path)
        direction = self.topology.direction(path[0], path[-1])
        bu = self._bu_between(path[0], path[1])
        return self.segments[path[0]].bus_free_at(now_fs) and bu.has_space(direction)

    def _bu_between(self, a: int, b: int):
        return self.bus_units[self.topology.bus_on_path(a, b)[0]]

    def _grant_circuit(
        self, job: TransferJob, path: Tuple[int, ...], now_fs: int
    ) -> None:
        if self.config.inter_segment_protocol == "circuit":
            # the CA connects the whole path; cascaded release follows
            for index in path:
                self.segments[index].locked = True
        else:
            # store-and-forward: only the source segment is granted
            self.segments[path[0]].locked = True
        self.ca.begin_circuit(job, now_fs)
        self._trace("circuit_grant", "CA", job.label)
        source = self.segments[path[0]]
        clock = source.clock
        decided = now_fs + self.ca.clock.ticks_to_fs(self.config.ca_decision_ticks)
        fill_start = clock.edge_at_or_after(decided) + clock.ticks_to_fs(
            self.config.grant_latency_ticks
        )
        fill_end = fill_start + clock.ticks_to_fs(self.package_size)
        source.bus_busy_until_fs = fill_end
        source.counters.record_busy(fill_start, fill_end)
        bu = self._bu_between(path[0], path[1])
        bu.counters.busy_intervals.append((fill_start, fill_end))
        self.queue.schedule(
            fill_end,
            lambda j=job, p=path: self._on_fill_done(j, p),
            PRIO_STATE,
        )

    def _on_fill_done(self, job: TransferJob, path: Tuple[int, ...]) -> None:
        now = self.queue.now_fs
        source = self.segments[path[0]]
        direction = self.topology.direction(path[0], path[-1])
        if direction > 0:
            source.counters.packets_to_right += 1
        else:
            source.counters.packets_to_left += 1
        bu = self._bu_between(path[0], path[1])
        bu.counters.input_packages += 1
        if path[0] == bu.left:
            bu.counters.received_from_left += 1
        else:
            bu.counters.received_from_right += 1
        bu.counters.tct += self.package_size
        bu.push(now, direction)
        self._trace("fill_done", bu.name, job.label)
        master = self.masters[job.master]
        master.outstanding_deliveries += 1
        if self.faults is not None and self.faults.drop_in_bu(bu.left, bu.right):
            # BU overrun: the latched package is lost; the circuit tears
            # down and the whole transfer is re-requested end-to-end
            bu.pop(direction)
            bu.counters.dropped_packages += 1
            master.outstanding_deliveries -= 1
            self._trace("bu_drop", bu.name, job.label)
            self.ca.end_circuit(job, now)
            self._release_segment(source, now)
            if self.config.inter_segment_protocol == "circuit":
                for index in path[1:]:
                    downstream = self.segments[index]
                    if downstream.locked:
                        self._release_segment(downstream, now)
            self._fail_inter(job, now)
            self._note_end(now)
            return
        self._progress(now)
        self._release_segment(source, now)
        # The master's transaction is circuit-switched end-to-end: it holds
        # (and only resumes computing) once the package reaches the target
        # device, not when its own segment is released.  This is what makes
        # an inter-segment flow cost throughput rather than mere latency —
        # the mechanism behind the paper's "P9 moved to segment 3"
        # experiment slowing the application by ~10 %.
        if self.config.inter_segment_protocol == "circuit":
            self.queue.schedule(
                now, lambda j=job, p=path: self._on_hop(j, p, 1), PRIO_STATE
            )
        else:
            self._enqueue_hop(job, path, 1, now)
        self._note_end(now)

    def _on_hop(self, job: TransferJob, path: Tuple[int, ...], index: int) -> None:
        """Start the unload of the package into segment ``path[index]``
        (circuit protocol: the segment is already locked for this transfer)."""
        now = self.queue.now_fs
        segment = self.segments[path[index]]
        clock = segment.clock
        wait_ticks = self.config.bu_sampling_ticks + self.config.bu_sync_ticks
        u_start = clock.edge_after(now) + clock.ticks_to_fs(max(0, wait_ticks - 1))
        self._start_hop_occupation(job, path, index, load_end_fs=now, u_start_fs=u_start)

    def _start_hop_occupation(
        self,
        job: TransferJob,
        path: Tuple[int, ...],
        index: int,
        load_end_fs: int,
        u_start_fs: int,
    ) -> None:
        """Occupy segment ``path[index]``'s bus to move the package onward."""
        segment = self.segments[path[index]]
        clock = segment.clock
        bu_prev = self._bu_between(path[index - 1], path[index])
        wp = clock.ticks_between(load_end_fs, u_start_fs)
        bu_prev.counters.tct += wp
        bu_prev.counters.waiting_ticks += wp
        is_destination = index == len(path) - 1
        occupy = self.package_size + (
            self.config.slave_ack_ticks if is_destination else 0
        )
        u_end = u_start_fs + clock.ticks_to_fs(occupy)
        segment.bus_busy_until_fs = u_end
        segment.counters.record_busy(u_start_fs, u_end)
        bu_prev.counters.busy_intervals.append((u_start_fs, u_end))
        self.queue.schedule(
            u_end,
            lambda j=job, p=path, i=index: self._on_hop_done(j, p, i),
            PRIO_STATE,
        )

    # -- store-and-forward hop arbitration -----------------------------------

    def _enqueue_hop(
        self, job: TransferJob, path: Tuple[int, ...], index: int, now_fs: int
    ) -> None:
        """Queue a hop for SA arbitration in segment ``path[index]``."""
        segment = self.segments[path[index]]
        segment.pending_bu.append((job, path, index))
        self._schedule_sa_check(segment, now_fs)

    def _try_serve_hop(self, segment: SegmentRT, now_fs: int) -> bool:
        """Serve the first feasible queued hop; True if the bus was granted.

        Hops have priority over local masters (draining the network frees
        BU slots that upstream traffic is waiting on).  A hop into a full
        next-BU virtual channel is skipped; the pop that frees the slot
        re-schedules this segment's arbitration.
        """
        for slot, (job, path, index) in enumerate(segment.pending_bu):
            direction = self.topology.direction(path[0], path[-1])
            is_destination = index == len(path) - 1
            if not is_destination:
                bu_next = self._bu_between(path[index], path[index + 1])
                if not bu_next.has_space(direction):
                    continue
            segment.pending_bu.pop(slot)
            clock = segment.clock
            bu_prev = self._bu_between(path[index - 1], path[index])
            load_end = bu_prev.head_loaded_at(direction)
            wait_ticks = self.config.bu_sampling_ticks + self.config.bu_sync_ticks
            earliest = clock.edge_after(load_end) + clock.ticks_to_fs(
                max(0, wait_ticks - 1)
            )
            u_start = max(
                earliest,
                now_fs + clock.ticks_to_fs(self.config.grant_latency_ticks),
            )
            self._start_hop_occupation(
                job, path, index, load_end_fs=load_end, u_start_fs=u_start
            )
            return True
        return False

    def _on_hop_done(self, job: TransferJob, path: Tuple[int, ...], index: int) -> None:
        now = self.queue.now_fs
        segment = self.segments[path[index]]
        direction = self.topology.direction(path[0], path[-1])
        bu_prev = self._bu_between(path[index - 1], path[index])
        bu_prev.pop(direction)
        bu_prev.counters.output_packages += 1
        if path[index] == bu_prev.left:
            bu_prev.counters.transferred_to_left += 1
        else:
            bu_prev.counters.transferred_to_right += 1
        bu_prev.counters.tct += self.package_size
        self._trace("hop_done", bu_prev.name, job.label)
        is_destination = index == len(path) - 1
        if is_destination:
            master = self.masters[job.master]
            if self.faults is not None and self.faults.corrupt_package(
                segment.index
            ):
                # CRC failure at the target device: the delivery is NACKed
                # and the whole inter-segment transfer re-requested
                self.ca.counters.nacks += 1
                self._trace("nack", f"Segment{segment.index}", job.label)
                master.outstanding_deliveries -= 1
                self._release_segment(segment, now)
                self.ca.end_circuit(job, now)
                self._fail_inter(job, now)
            else:
                self._deliver(job.transfer.target, now)
                master.waiting_grant = False
                master.counters.packages_sent += 1
                master.outstanding_deliveries -= 1
                self._clear_retry_state(job)
                self._release_segment(segment, now)
                self.ca.end_circuit(job, now)
                self._advance_master(master, now, delivered=True)
                self._progress(now)
        else:
            # Transit packages do not count in the segment's packet counters:
            # the paper's listing credits a package only to the segment that
            # initiated it (Segment 2 reports 0/0 although P3->P4 transits it).
            bu_next = self._bu_between(path[index], path[index + 1])
            bu_next.counters.input_packages += 1
            if path[index] == bu_next.left:
                bu_next.counters.received_from_left += 1
            else:
                bu_next.counters.received_from_right += 1
            bu_next.counters.tct += self.package_size
            bu_next.push(now, direction)
            self._progress(now)
            self._release_segment(segment, now)
            if self.config.inter_segment_protocol == "circuit":
                self.queue.schedule(
                    now,
                    lambda j=job, p=path, i=index + 1: self._on_hop(j, p, i),
                    PRIO_STATE,
                )
            else:
                self._enqueue_hop(job, path, index + 1, now)
        if self.config.inter_segment_protocol != "circuit":
            # the pop freed a slot in bu_prev's virtual channel: wake the
            # upstream side (fills and hops may be waiting on that space)
            upstream = bu_prev.left if direction > 0 else bu_prev.right
            self._schedule_sa_check(self.segments[upstream], now)
            self._schedule_ca_check(now)
        self._note_end(now)

    def _release_segment(self, segment: SegmentRT, now_fs: int) -> None:
        """Cascaded release: the segment rejoins local/inter arbitration."""
        segment.locked = False
        segment.next_grant_fs = max(
            segment.next_grant_fs,
            now_fs + segment.clock.ticks_to_fs(self.config.bus_turnaround_ticks),
        )
        if segment.pending_intra or segment.pending_bu:
            self._schedule_sa_check(segment, now_fs)
        self._schedule_ca_check(now_fs)

    # ------------------------------------------------------------------ delivery

    def _deliver(self, target: str, now_fs: int) -> None:
        counters = self.process_counters[target]
        counters.packages_received += 1
        self._trace("deliver", target)
        counters.last_input_fs = now_fs
        if (
            not counters.fired
            and counters.packages_received >= counters.expected_inputs
        ):
            self._schedule_fire(target, now_fs)

    def _advance_master(self, master: MasterRT, now_fs: int, delivered: bool) -> None:
        master.advance()
        if not master.all_issued:
            self._start_compute(master, now_fs)
        elif delivered and master.is_done and not master.counters.done:
            master.counters.done = True
            master.counters.end_fs = now_fs
            self._trace("process_done", master.process)

    # ------------------------------------------------------------------ run

    def run(self) -> "Simulation":
        """Execute the emulation to completion (idempotent).

        Under fault injection the run may finish *degraded*: a permanent
        element failure or an abandoned (retry-exhausted) transfer leaves
        some flows unserved; with a degrading policy the remaining flows
        complete, ``degraded`` is set and ``unserved_flows`` lists what the
        platform never delivered, instead of raising
        :class:`~repro.errors.DeadlockError`.
        """
        if self._finished:
            return self
        for name in self.application.process_names:
            if self.schedule.inputs_of[name] == 0:
                self._schedule_fire(name, 0)
        self._schedule_permanent_failures()
        self._run_loop()
        self._finished = True
        if self.failed_elements or self._abandoned:
            self._finalize_degraded()
        else:
            self._validate_final_state()
        self._finalize_counters()
        return self

    def _run_loop(self) -> None:
        """Drain the event queue under the event/tick budgets + watchdog."""
        queue = self.queue
        budget = self.config.max_events
        horizon_fs = self.ca.clock.ticks_to_fs(self.config.max_ticks)
        executed = 0
        while True:
            item = queue.pop()
            if item is None:
                return
            t_fs, action = item
            if t_fs > horizon_fs:
                raise StallError(
                    f"tick budget exhausted: simulated time passed "
                    f"{self.config.max_ticks} CA ticks — model livelock?",
                    pending=self.pending_work(),
                    last_progress_tick=self.ca.clock.ticks(self.last_progress_fs),
                    stalled_elements=self.stalled_elements(),
                )
            action()
            executed += 1
            if executed >= budget:
                raise StallError(
                    f"event budget exhausted after {budget} events at "
                    f"t={queue.now_fs} fs — model livelock?",
                    pending=self.pending_work(),
                    last_progress_tick=self.ca.clock.ticks(self.last_progress_fs),
                    stalled_elements=self.stalled_elements(),
                )
            if self.watchdog is not None:
                self.watchdog.observe(self)

    # ------------------------------------------------------------------ faults

    def _schedule_permanent_failures(self) -> None:
        if self.faults is None:
            return
        for record in self.faults.permanent_failures():
            process = record.site[len("fu:"):]
            if process not in self.process_counters:
                raise FaultConfigError(
                    f"permanent_failure site {record.site!r} names an "
                    "unknown process"
                )
            clock = self._segment_of(process).clock
            at_fs = clock.ticks_to_fs(record.at_tick)
            self.queue.schedule(
                at_fs,
                lambda p=process, r=record: self._on_element_failed(p, r),
                PRIO_STATE,
            )

    def _on_element_failed(self, process: str, record) -> None:
        if not self.retry_policy.degrades_on_permanent_failure:
            raise ElementFailureError(record.site, record.at_tick)
        self.failed_elements.append(process)
        self.faults.counters.record(KIND_PERMANENT, record.site)
        self._trace("element_failed", process, f"at tick {record.at_tick}")
        master = self.masters.get(process)
        if master is not None:
            master.failed = True
        # purge queued requests originating from the dead element; packages
        # already in flight through BUs drain normally
        for segment in self.segments.values():
            segment.pending_intra = [
                j for j in segment.pending_intra if j.master != process
            ]
        self.ca.queue = [j for j in self.ca.queue if j.master != process]

    def _finalize_degraded(self) -> None:
        """Graceful degradation: flag the run, list what was never served."""
        self.degraded = True
        unserved: List[str] = []
        for job, site in self._abandoned:
            unserved.append(f"{job.label} (abandoned at {site})")
        for name in sorted(self.process_counters):
            counters = self.process_counters[name]
            if not counters.done:
                missing = counters.expected_inputs - counters.packages_received
                if name in self.failed_elements:
                    unserved.append(f"process {name} (failed permanently)")
                elif missing > 0:
                    unserved.append(
                        f"process {name} (missing {missing} input package(s))"
                    )
                else:
                    unserved.append(f"process {name} (incomplete)")
        self.unserved_flows = tuple(unserved)

    # ------------------------------------------------------------------ finish

    def pending_work(self) -> List[str]:
        """Unfinished-activity diagnostics (the MonitorClass observations)."""
        pending: List[str] = []
        for name, counters in self.process_counters.items():
            if not counters.done:
                pending.append(f"process {name} not done")
        for master in self.masters.values():
            if not master.is_done:
                pending.append(
                    f"master {master.process} at transfer {master.transfer_index} "
                    f"package {master.package_index} "
                    f"(outstanding={master.outstanding_deliveries})"
                )
        for segment in self.segments.values():
            if segment.locked:
                pending.append(f"segment {segment.index} still locked")
            if segment.pending_intra:
                pending.append(
                    f"segment {segment.index} has {len(segment.pending_intra)} "
                    "queued local requests"
                )
            if segment.pending_bu:
                pending.append(
                    f"segment {segment.index} has {len(segment.pending_bu)} "
                    "queued hop transfers"
                )
        if self.ca.queue:
            pending.append(f"CA queue holds {len(self.ca.queue)} requests")
        for bu in self.bus_units.values():
            if bu.occupancy:
                pending.append(f"{bu.name} holds {bu.occupancy} package(s)")
        return pending

    def stalled_elements(self) -> List[str]:
        """Elements currently blocked waiting for something (watchdog info)."""
        stalled: List[str] = []
        for master in self.masters.values():
            if master.waiting_grant:
                stalled.append(f"master {master.process} (waiting grant)")
            elif master.failed:
                stalled.append(f"master {master.process} (failed)")
        for segment in self.segments.values():
            if segment.locked:
                stalled.append(f"segment {segment.index} (locked)")
        return stalled

    def _validate_final_state(self) -> None:
        """The MonitorClass check: flags high, no activity left anywhere."""
        pending = self.pending_work()
        if pending:
            raise DeadlockError(
                "emulation ended with unfinished activity",
                pending,
                last_progress_tick=self.ca.clock.ticks(self.last_progress_fs),
            )

    def _finalize_counters(self) -> None:
        for segment in self.segments.values():
            quiesce = segment.counters.quiesce_fs
            segment.counters.busy_fs = sum(
                e - s for s, e in segment.counters.busy_intervals
            )
            # SA TCT: every own-clock cycle from start until segment quiesce.
            segment.counters.quiesce_fs = quiesce
        self.ca.counters.tct = (
            self.ca.clock.ticks(self.global_end_fs) + self.config.ca_epilogue_ticks
        )

    # -- derived results ---------------------------------------------------------

    def sa_tct(self, index: int) -> int:
        segment = self.segments[index]
        return segment.clock.ticks(segment.counters.quiesce_fs)

    def sa_time_fs(self, index: int) -> int:
        segment = self.segments[index]
        return self.sa_tct(index) * segment.clock.period_fs

    def ca_time_fs(self) -> int:
        return self.ca.counters.tct * self.ca.clock.period_fs

    def execution_time_fs(self) -> int:
        """``max(t_SA1, ..., t_SAn, t_CA)`` — the paper's total time."""
        times = [self.sa_time_fs(i) for i in self.segments]
        times.append(self.ca_time_fs())
        return max(times)
