"""Event tracing and VCD waveform export.

The paper's emulator reports aggregate counters; for debugging a
configuration it helps to see *when* things happened.  Two facilities:

* :class:`Tracer` — an optional event recorder handed to
  :class:`~repro.emulator.kernel.Simulation`; the kernel emits one
  :class:`TraceEvent` per semantic transition (process fired, package
  granted, transfer/fill/hop completed, package delivered, circuit
  granted).  Events are in strict time order and cheap to filter.
* :func:`export_vcd` — renders a finished simulation as a Value Change
  Dump: one busy wire per segment bus, one occupancy byte per BU, one
  active wire per process, plus the CA circuit count.  Any VCD viewer
  (GTKWave etc.) then shows the platform timeline — the interactive
  version of the paper's Fig. 11.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.emulator.kernel import Simulation
from repro.units import fs_to_ps


@dataclass(frozen=True)
class TraceEvent:
    """One semantic event of the emulation."""

    time_fs: int
    kind: str
    subject: str
    detail: str = ""

    @property
    def time_ps(self) -> int:
        return fs_to_ps(self.time_fs)


#: event kinds emitted by the kernel, in rough lifecycle order; the kinds
#: after "process_done" only appear under fault injection (docs/ROBUSTNESS.md)
EVENT_KINDS = (
    "fire",
    "request",
    "grant",
    "transfer_done",
    "circuit_grant",
    "fill_done",
    "hop_done",
    "deliver",
    "process_done",
    "nack",
    "retry",
    "grant_loss",
    "fu_stall",
    "bu_drop",
    "timeout",
    "abandon",
    "element_failed",
)


@dataclass
class Tracer:
    """Ordered event recorder (attach via ``Simulation(..., tracer=...)``)."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, time_fs: int, kind: str, subject: str, detail: str = "") -> None:
        self.events.append(TraceEvent(time_fs, kind, subject, detail))

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> Tuple[TraceEvent, ...]:
        return tuple(e for e in self.events if e.kind == kind)

    def about(self, subject: str) -> Tuple[TraceEvent, ...]:
        return tuple(e for e in self.events if e.subject == subject)

    def format_log(self, limit: Optional[int] = None) -> str:
        """Human-readable event log (``time_ps kind subject detail``)."""
        rows = self.events[:limit] if limit else self.events
        return "\n".join(
            f"{e.time_ps:>12} ps  {e.kind:<13} {e.subject:<10} {e.detail}"
            for e in rows
        )

    # -- deterministic digests ------------------------------------------------

    def canonical_lines(self) -> Tuple[str, ...]:
        """The trace as canonical text: one ``time_fs kind subject detail``
        line per event, in emission order.

        This is the normative serialization behind :meth:`digest` — two runs
        of the same model must produce identical canonical lines, byte for
        byte, regardless of process, platform or hash seed.  The golden-trace
        store and the determinism regression tests both pin it.
        """
        return tuple(
            f"{e.time_fs} {e.kind} {e.subject} {e.detail}".rstrip()
            for e in self.events
        )

    def digest(self) -> str:
        """SHA-256 over :meth:`canonical_lines` (hex)."""
        payload = "\n".join(self.canonical_lines()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def kind_counts(self) -> Dict[str, int]:
        """Event count per kind (sorted by kind) — the readable summary a
        golden-digest mismatch is explained with."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))


# ---------------------------------------------------------------------------
# VCD export
# ---------------------------------------------------------------------------

_VCD_IDS = (
    "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
)


def _changes_from_intervals(
    intervals: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Collapse possibly-overlapping busy intervals into 0/1 value changes."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged: List[List[int]] = [list(ordered[0])]
    for start, end in ordered[1:]:
        if start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    changes: List[Tuple[int, int]] = []
    for start, end in merged:
        changes.append((start, 1))
        changes.append((end, 0))
    return changes


def export_vcd(
    sim: Simulation,
    path: Optional[Union[str, Path]] = None,
    module: str = "segbus",
) -> str:
    """Render a finished simulation as VCD text; optionally write it.

    Scalar wires: ``segmentN_busy`` and ``<process>_active``; 8-bit vectors:
    ``buLR_occupancy``; 16-bit vector: ``ca_circuits``.
    """
    ids = iter(_VCD_IDS)
    header: List[str] = [
        "$date generated by repro.emulator.trace $end",
        "$version repro SegBus emulator $end",
        "$timescale 1ps $end",
        f"$scope module {module} $end",
    ]
    signals: Dict[str, Tuple[str, int]] = {}  # name -> (vcd id, width)

    def declare(name: str, width: int = 1) -> str:
        vcd_id = next(ids)
        signals[name] = (vcd_id, width)
        kind = "wire" if width == 1 else "reg"
        header.append(f"$var {kind} {width} {vcd_id} {name} $end")
        return vcd_id

    changes: Dict[int, List[str]] = {}

    def emit(time_fs: int, vcd_id: str, value: int, width: int) -> None:
        time_ps = fs_to_ps(time_fs)
        if width == 1:
            text = f"{value}{vcd_id}"
        else:
            text = f"b{value:b} {vcd_id}"
        changes.setdefault(time_ps, []).append(text)

    for index in sorted(sim.segments):
        segment = sim.segments[index]
        vcd_id = declare(f"segment{index}_busy")
        emit(0, vcd_id, 0, 1)
        for t, v in _changes_from_intervals(segment.counters.busy_intervals):
            emit(t, vcd_id, v, 1)

    for pair in sorted(sim.bus_units):
        bu = sim.bus_units[pair]
        vcd_id = declare(f"{bu.name.lower()}_occupancy", width=8)
        emit(0, vcd_id, 0, 8)
        # occupancy toggles at each recorded busy interval boundary: the BU
        # holds the package between its load end and unload end
        loads = sorted(bu.counters.busy_intervals)
        depth = 0
        events: List[Tuple[int, int]] = []
        for start, end in loads:
            events.append((start, +1))
            events.append((end, -1))
        for t, delta in sorted(events):
            depth = max(0, depth + delta)
            emit(t, vcd_id, depth, 8)

    for name in sorted(sim.process_counters):
        counters = sim.process_counters[name]
        vcd_id = declare(f"{name}_active")
        emit(0, vcd_id, 0, 1)
        if counters.start_fs is not None:
            emit(counters.start_fs, vcd_id, 1, 1)
        if counters.end_fs is not None:
            emit(max(counters.end_fs, counters.start_fs or 0), vcd_id, 0, 1)

    ca_id = declare("ca_circuits", width=16)
    emit(0, ca_id, 0, 16)
    level = 0
    ca_events: List[Tuple[int, int]] = []
    for start, end in sim.ca.counters.active_intervals:
        ca_events.append((start, +1))
        ca_events.append((end, -1))
    for t, delta in sorted(ca_events):
        level = max(0, level + delta)
        emit(t, ca_id, level, 16)

    header.append("$upscope $end")
    header.append("$enddefinitions $end")

    body: List[str] = []
    for time_ps in sorted(changes):
        body.append(f"#{time_ps}")
        body.extend(changes[time_ps])
    end_ps = fs_to_ps(max(sim.global_end_fs, 1))
    if not changes or max(changes) < end_ps:
        body.append(f"#{end_ps}")

    text = "\n".join(header + body) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
