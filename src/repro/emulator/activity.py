"""Activity series of platform elements (the data behind paper Fig. 11).

Figure 11 shows, per platform element (segments, BUs, CA), when the element
was busy over the run.  We record exact busy intervals during emulation and
bin them here into utilization-over-time series: the fraction of each time
bin the element spent active.  The same series with two package sizes is
the paper's 18-vs-36 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.emulator.kernel import Simulation
from repro.units import fs_to_us


@dataclass(frozen=True)
class ActivitySeries:
    """Binned busy fractions per element.

    ``bin_edges_us[i]``/``bin_edges_us[i+1]`` bound bin ``i``;
    ``utilization[element][i]`` is the busy fraction of that bin.
    """

    bin_edges_us: Tuple[float, ...]
    utilization: Dict[str, Tuple[float, ...]]

    @property
    def elements(self) -> Tuple[str, ...]:
        return tuple(self.utilization)

    @property
    def bins(self) -> int:
        return len(self.bin_edges_us) - 1

    def busy_fraction(self, element: str) -> float:
        """Overall busy fraction of ``element`` across the whole run."""
        series = self.utilization[element]
        if not series:
            return 0.0
        return float(np.mean(series))

    def peak_bin(self, element: str) -> int:
        """Index of the bin where ``element`` was most active."""
        series = self.utilization[element]
        return int(np.argmax(series)) if series else 0


def _bin_intervals(
    intervals: Sequence[Tuple[int, int]], edges_fs: np.ndarray
) -> Tuple[float, ...]:
    """Busy fraction of each bin given raw femtosecond intervals."""
    bins = len(edges_fs) - 1
    busy = np.zeros(bins, dtype=float)
    widths = np.diff(edges_fs).astype(float)
    for start, end in intervals:
        if end <= start:
            continue
        first = int(np.searchsorted(edges_fs, start, side="right")) - 1
        last = int(np.searchsorted(edges_fs, end, side="left")) - 1
        first = max(first, 0)
        last = min(last, bins - 1)
        for b in range(first, last + 1):
            lo = max(start, int(edges_fs[b]))
            hi = min(end, int(edges_fs[b + 1]))
            if hi > lo:
                busy[b] += hi - lo
    with np.errstate(invalid="ignore", divide="ignore"):
        fractions = np.where(widths > 0, busy / widths, 0.0)
    return tuple(float(f) for f in np.clip(fractions, 0.0, 1.0))


def activity_series(sim: Simulation, bins: int = 50) -> ActivitySeries:
    """Build the activity graph data from a finished simulation.

    Elements covered: every segment bus (``Segment x``), every BU and the
    CA's circuit-active periods.
    """
    if bins < 1:
        raise ValueError(f"need at least one bin, got {bins}")
    horizon = max(sim.global_end_fs, 1)
    edges_fs = np.linspace(0, horizon, bins + 1).astype(np.int64)
    utilization: Dict[str, Tuple[float, ...]] = {}
    for index in sorted(sim.segments):
        segment = sim.segments[index]
        utilization[f"Segment {index}"] = _bin_intervals(
            segment.counters.busy_intervals, edges_fs
        )
    for pair in sorted(sim.bus_units):
        bu = sim.bus_units[pair]
        utilization[bu.name] = _bin_intervals(bu.counters.busy_intervals, edges_fs)
    utilization["CA"] = _bin_intervals(sim.ca.counters.active_intervals, edges_fs)
    return ActivitySeries(
        bin_edges_us=tuple(fs_to_us(int(e)) for e in edges_fs),
        utilization=utilization,
    )
