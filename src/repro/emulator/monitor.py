"""The monitor: Process Status Flags and end-of-emulation conditions.

The paper's ``MonitorClass`` runs as a thread *"responsible for analyzing
the status flags for all FUs and monitoring activity within other platform
elements; when it detects no communication activity, it sets a particular
flag to inform the emulator about the end of emulation"* (section 3.6).  In
the discrete-event kernel the end is the drained event queue; this module
provides the equivalent *observations*: the flag array, and the activity
predicate the kernel asserts after the queue drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.emulator.kernel import Simulation


@dataclass(frozen=True)
class ProcessStatusFlags:
    """The emulator's flag array: one flag per application process."""

    flags: Mapping[str, bool]

    @property
    def all_high(self) -> bool:
        return all(self.flags.values())

    def low(self) -> Tuple[str, ...]:
        """Processes whose flag is still low."""
        return tuple(sorted(n for n, f in self.flags.items() if not f))

    def __getitem__(self, process: str) -> bool:
        return self.flags[process]


def status_flags(sim: Simulation) -> ProcessStatusFlags:
    """Snapshot the Process Status Flags of a simulation."""
    return ProcessStatusFlags(
        flags={name: c.done for name, c in sim.process_counters.items()}
    )


def no_activity(sim: Simulation) -> bool:
    """True when no platform element has communication activity left."""
    if any(
        seg.locked or seg.pending_intra or seg.pending_bu
        for seg in sim.segments.values()
    ):
        return False
    if sim.ca.queue:
        return False
    if any(bu.occupancy for bu in sim.bus_units.values()):
        return False
    return True


def emulation_finished(sim: Simulation) -> bool:
    """The paper's end condition: all flags high and no activity anywhere."""
    return status_flags(sim).all_high and no_activity(sim)
