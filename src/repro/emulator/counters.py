"""Monitoring counters of the platform elements.

The paper instruments the ``arbitrate`` methods and the BU code with
monitoring statements (section 3.5); these dataclasses are the Python
equivalent.  Counters are plain mutable records owned by the kernel's
runtime objects and snapshotted into the report at the end of emulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class ProcessCounters:
    """Per-process (FU) progress: the Process Status Flag plus timing."""

    name: str
    start_fs: Optional[int] = None
    end_fs: Optional[int] = None
    last_input_fs: Optional[int] = None
    packages_sent: int = 0
    packages_received: int = 0
    expected_inputs: int = 0
    done: bool = False  # the paper's "Process Status Flag"
    #: extra compute ticks injected by fu_stall faults
    stall_ticks_injected: int = 0

    @property
    def fired(self) -> bool:
        return self.start_fs is not None


@dataclass
class SegmentCounters:
    """Per-segment/SA counters (the SA's ``arbitrate`` instrumentation)."""

    index: int
    intra_requests: int = 0
    inter_requests: int = 0
    packets_to_left: int = 0
    packets_to_right: int = 0
    grants: int = 0
    busy_fs: int = 0
    quiesce_fs: int = 0
    busy_intervals: List[Tuple[int, int]] = field(default_factory=list)
    #: resilience protocol: packages NACKed by a CRC check on this segment
    nacks: int = 0
    #: re-arbitrated attempts caused by NACKs/drops on this segment
    retries: int = 0
    #: SA grants lost before the master drove the bus
    grant_losses: int = 0

    def record_busy(self, start_fs: int, end_fs: int) -> None:
        self.busy_intervals.append((start_fs, end_fs))
        self.busy_fs += end_fs - start_fs
        if end_fs > self.quiesce_fs:
            self.quiesce_fs = end_fs


@dataclass
class BUCounters:
    """Per-BU counters: package flow per side, load/unload tick accounting."""

    left: int
    right: int
    input_packages: int = 0
    output_packages: int = 0
    received_from_left: int = 0
    received_from_right: int = 0
    transferred_to_left: int = 0
    transferred_to_right: int = 0
    tct: int = 0
    waiting_ticks: int = 0
    busy_intervals: List[Tuple[int, int]] = field(default_factory=list)
    #: packages lost to injected BU overruns
    dropped_packages: int = 0

    @property
    def name(self) -> str:
        return f"BU{self.left}{self.right}"

    def useful_period(self, package_size: int) -> int:
        """UP = 2 * s * packages (load + unload for every package)."""
        return 2 * package_size * self.output_packages

    def mean_waiting_period(self, package_size: int) -> float:
        """W̄P = (TCT - UP) / packages (0 when idle)."""
        if self.output_packages == 0:
            return 0.0
        return (self.tct - self.useful_period(package_size)) / self.output_packages


@dataclass
class CACounters:
    """Central-arbiter counters."""

    inter_requests: int = 0
    grants: int = 0
    tct: int = 0
    active_intervals: List[Tuple[int, int]] = field(default_factory=list)
    #: resilience protocol: inter-segment packages NACKed at delivery
    nacks: int = 0
    #: re-arbitrated inter-segment attempts (NACKs, drops, timeouts)
    retries: int = 0
    #: circuit grants lost before the source filled the first BU
    grant_losses: int = 0
    #: requests whose CA-queue wait exceeded the per-hop timeout
    timeouts: int = 0

    def record_active(self, start_fs: int, end_fs: int) -> None:
        self.active_intervals.append((start_fs, end_fs))
