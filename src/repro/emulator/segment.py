"""Runtime state of one bus segment and its Segment Arbiter.

A segment *"acts as a normal bus between modules connected to it and
operates in parallel with other segments"* (section 2.1).  The runtime
object tracks bus occupancy, the CA's circuit-switching lock, and the local
request queue its SA arbitrates; the behaviour lives in
:class:`repro.emulator.kernel.Simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.emulator.clock import ClockDomain
from repro.emulator.counters import SegmentCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.emulator.fu import TransferJob


@dataclass
class SegmentRT:
    """Mutable per-segment simulation state."""

    index: int
    clock: ClockDomain
    counters: SegmentCounters

    #: femtosecond timestamp until which the segment bus is occupied
    bus_busy_until_fs: int = 0
    #: additional dead time after the last transfer (bus turnaround)
    next_grant_fs: int = 0
    #: True while the CA holds this segment for an inter-segment circuit
    locked: bool = False
    #: local (intra-segment) jobs awaiting the SA's grant, FIFO arrival order
    pending_intra: List["TransferJob"] = field(default_factory=list)
    #: store-and-forward hops awaiting this segment's bus (job, path, index)
    pending_bu: List[tuple] = field(default_factory=list)
    #: round-robin pointer: name of the master granted most recently
    last_granted_master: Optional[str] = None

    def bus_free_at(self, t_fs: int) -> bool:
        """True when the bus is idle and past turnaround at time ``t_fs``."""
        return (
            not self.locked
            and self.bus_busy_until_fs <= t_fs
            and self.next_grant_fs <= t_fs
        )

    @property
    def name(self) -> str:
        return f"Segment{self.index}"
