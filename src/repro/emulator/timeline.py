"""Per-process progress timeline (the data behind paper Fig. 10).

Figure 10 plots, for every application process, the instant it started and
the instant it finished its dedicated job.  The paper notes the start times
carry a variable lead (processes waiting for input data) which does not
affect the overall estimate; we report both the firing instant and the
completion instant, plus the "received last package" time for sinks (the
listing's ``P14 received last package at 460435092ps``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.emulator.kernel import Simulation
from repro.units import fs_to_ps, fs_to_us


@dataclass(frozen=True)
class TimelineEntry:
    """One process's row in the progress timeline."""

    process: str
    start_fs: Optional[int]
    end_fs: Optional[int]
    last_input_fs: Optional[int]
    packages_sent: int
    packages_received: int

    @property
    def start_ps(self) -> Optional[int]:
        return None if self.start_fs is None else fs_to_ps(self.start_fs)

    @property
    def end_ps(self) -> Optional[int]:
        return None if self.end_fs is None else fs_to_ps(self.end_fs)

    @property
    def duration_us(self) -> Optional[float]:
        if self.start_fs is None or self.end_fs is None:
            return None
        return fs_to_us(self.end_fs - self.start_fs)


@dataclass(frozen=True)
class ProcessTimeline:
    """The full timeline, ordered by completion time."""

    entries: Tuple[TimelineEntry, ...]

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, process: str) -> TimelineEntry:
        for item in self.entries:
            if item.process == process:
                return item
        raise KeyError(process)

    def finishing_order(self) -> Tuple[str, ...]:
        """Process names sorted by the instant their flag went high."""
        return tuple(e.process for e in self.entries)

    def to_rows(self) -> Tuple[Tuple[str, int, int], ...]:
        """(process, start_ps, end_ps) rows for plotting Fig. 10."""
        return tuple(
            (e.process, e.start_ps or 0, e.end_ps or 0) for e in self.entries
        )

    def canonical_lines(self) -> Tuple[str, ...]:
        """One canonical line per entry (the digest's normative input)."""
        return tuple(
            f"{e.process} {e.start_fs} {e.end_fs} {e.last_input_fs} "
            f"{e.packages_sent} {e.packages_received}"
            for e in self.entries
        )

    def digest(self) -> str:
        """SHA-256 over :meth:`canonical_lines` (hex) — byte-identical for
        two runs of the same model (pinned by the golden-trace store)."""
        payload = "\n".join(self.canonical_lines()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


def build_timeline(sim: Simulation) -> ProcessTimeline:
    """Extract the process timeline from a finished simulation."""
    entries = []
    for name, counters in sim.process_counters.items():
        entries.append(
            TimelineEntry(
                process=name,
                start_fs=counters.start_fs,
                end_fs=counters.end_fs,
                last_input_fs=counters.last_input_fs,
                packages_sent=counters.packages_sent,
                packages_received=counters.packages_received,
            )
        )
    entries.sort(key=lambda e: (e.end_fs if e.end_fs is not None else 0, e.process))
    return ProcessTimeline(entries=tuple(entries))
