"""Runtime state of the Central Arbiter.

The CA *"identifies the target segment address and decides which segments
need to be dynamically connected in order to establish a link between the
initiating and targeted devices"* (section 2.1).  The runtime keeps the
FIFO of forwarded inter-segment requests and the set of segments currently
held by circuits; the granting logic lives in the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.emulator.clock import ClockDomain
from repro.emulator.counters import CACounters
from repro.emulator.fu import TransferJob


@dataclass
class CART:
    """Mutable Central Arbiter state."""

    clock: ClockDomain
    counters: CACounters

    #: inter-segment jobs awaiting a full free path, FIFO arrival order
    queue: List[TransferJob] = field(default_factory=list)
    #: circuits in flight: job label -> grant timestamp (for active-interval
    #: accounting in the activity graph)
    active_circuits: Dict[str, int] = field(default_factory=dict)

    def begin_circuit(self, job: TransferJob, t_fs: int) -> None:
        self.counters.grants += 1
        self.active_circuits[job.label] = t_fs

    def end_circuit(self, job: TransferJob, t_fs: int) -> None:
        start = self.active_circuits.pop(job.label, None)
        if start is not None:
            self.counters.record_active(start, t_fs)
