"""Emulation fidelity configuration.

The paper's emulator deliberately *skips* some timing factors (section 3.6):
clock-domain synchronization at the BUs (~2 ticks per crossing), the SAs'
grant set/response time (~2–3 ticks) and similar control overheads — they
are small against a 36-item package and overlap with ongoing activity.  The
"real platform" includes them, which is where the 5–7 % estimation error
comes from.

:class:`EmulationConfig` makes every skipped factor an explicit knob:

* the **default** config zeroes them — that is the paper's emulator;
* :meth:`EmulationConfig.reference` enables them — that is our substitute
  for the real FPGA platform (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EmulationConfig:
    """Timing-fidelity knobs of the emulator kernel.

    All values are clock ticks in the domain where the activity happens.

    ``grant_latency_ticks``
        SA delay between picking a winner and the transfer driving the bus
        (the "setting the grant signal and corresponding master responds"
        factor the emulator skips).
    ``bus_turnaround_ticks``
        dead cycles between back-to-back transfers on one segment
        (bus hand-over in the real arbiter).
    ``bu_sync_ticks``
        clock-domain synchronization per BU crossing ("a value of two clock
        ticks is usually considered, at the translation of any signal across
        two clock domains").
    ``ca_decision_ticks``
        CA latency from receiving an inter-segment request to issuing the
        segment grants.
    ``slave_ack_ticks``
        slave-side acknowledge appended to a package delivery.
    ``master_handshake_ticks``
        master-side request/acknowledge signalling before each package's bus
        request reaches the arbiter (part of the "granting activity ...
        overlapping in time with on-going activities" the emulator omits).
    ``bu_sampling_ticks``
        downstream SA sampling delay before a loaded BU is unloaded — this
        is the one tick of waiting period the emulator *does* model (the
        paper measures W̄P = 1 on both BUs).
    ``ca_epilogue_ticks``
        CA cycles spent clearing grants/flags after the last delivery.
    ``inter_segment_protocol``
        ``"circuit"`` (default) is the paper's protocol: the CA connects the
        whole source→target path before the transfer and segments release in
        cascade.  ``"store-and-forward"`` is an exploration alternative: the
        CA grants only the source segment; the package then competes for
        each downstream bus hop-by-hop, with one BU slot per direction
        (virtual channels, which keeps the protocol deadlock-free).
    ``max_events``
        kernel safety budget; exceeding it raises a structured
        :class:`~repro.errors.StallError` with pending-work diagnostics.
    ``max_ticks``
        simulated-time budget in CA clock ticks (the platform's global
        timebase).  A pathological model that keeps generating events
        forever trips this guard instead of looping; the default is far
        above any realistic run (the paper's MP3 experiment retires in
        ~54 k CA ticks).
    """

    grant_latency_ticks: int = 0
    bus_turnaround_ticks: int = 0
    master_handshake_ticks: int = 0
    bu_sync_ticks: int = 0
    ca_decision_ticks: int = 0
    slave_ack_ticks: int = 0
    bu_sampling_ticks: int = 1
    ca_epilogue_ticks: int = 2
    inter_segment_protocol: str = "circuit"
    max_events: int = 50_000_000
    max_ticks: int = 1_000_000_000

    def __post_init__(self) -> None:
        if self.inter_segment_protocol not in ("circuit", "store-and-forward"):
            raise ValueError(
                f"unknown inter_segment_protocol "
                f"{self.inter_segment_protocol!r} (expected 'circuit' or "
                "'store-and-forward')"
            )
        for name in (
            "grant_latency_ticks",
            "bus_turnaround_ticks",
            "master_handshake_ticks",
            "bu_sync_ticks",
            "ca_decision_ticks",
            "slave_ack_ticks",
            "bu_sampling_ticks",
            "ca_epilogue_ticks",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.max_ticks <= 0:
            raise ValueError("max_ticks must be positive")

    @classmethod
    def emulator(cls) -> "EmulationConfig":
        """The paper's emulator: skipped control-timing factors (default)."""
        return cls()

    @classmethod
    def reference(cls) -> "EmulationConfig":
        """The "real platform" substitute: all skipped factors enabled.

        Values follow the paper's own estimates (2 ticks per clock-domain
        crossing, 2–3 ticks of granting activity) plus bus turnaround and
        slave acknowledgement, calibrated so the accuracy lands in the
        published 93–95 % band (see EXPERIMENTS.md, E6).
        """
        return cls(
            grant_latency_ticks=3,
            bus_turnaround_ticks=2,
            master_handshake_ticks=8,
            bu_sync_ticks=2,
            ca_decision_ticks=3,
            slave_ack_ticks=2,
            bu_sampling_ticks=1,
            ca_epilogue_ticks=2,
        )

    def with_overrides(self, **kwargs: int) -> "EmulationConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)
