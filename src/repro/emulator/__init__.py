"""The SegBus emulator: a deterministic discrete-event performance model.

This package is the reproduction of the paper's core contribution (sections
3.3–3.6): given a PSDF application and a PSM platform configuration, it
executes the application schedule on a model of the SegBus protocol and
reports per-element clock-tick counters, request counters, BU package
statistics, per-process progress and the total execution time
``max(t_SA1, ..., t_SAn, t_CA)``.

The paper's Java implementation runs one thread per platform element; we
replace the thread pool with a discrete-event kernel (one logical process
per element, integer-femtosecond timestamps, deterministic tie-breaking) —
same observable counters, no scheduling nondeterminism.  See DESIGN.md for
the normative timing semantics.

Public entry points:

* :class:`~repro.emulator.emulator.SegBusEmulator` — the facade
  (the paper's ``SegBusEmulatorView``): feed it XML schemes or model
  objects, call :meth:`run`, get an :class:`~repro.emulator.report.EmulationReport`.
* :class:`~repro.emulator.config.EmulationConfig` — fidelity knobs; the
  defaults reproduce the paper's emulator (skipped sync/grant factors),
  :meth:`~repro.emulator.config.EmulationConfig.reference` reproduces the
  "real platform" timing.

Resilience extensions (fault injection, retry/timeout protocol, watchdog,
graceful degradation) live in :mod:`repro.faults`; the facade and
:func:`emulate` accept ``fault_plan``/``retry_policy``/``watchdog`` knobs.
See docs/ROBUSTNESS.md.

Two tick-for-tick equivalent engines execute the model: the cycle-stepped
reference kernel (:mod:`repro.emulator.kernel`) and the event-driven fast
kernel (:mod:`repro.emulator.fastkernel`).  Select one with
``run(engine=...)``, the ``--engine`` CLI flag, or the ``SEGBUS_ENGINE``
environment variable.  See docs/PERFORMANCE.md.
"""

from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import SegBusEmulator, emulate
from repro.emulator.fastkernel import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    FastSimulation,
    make_simulation,
    resolve_engine,
    simulation_class,
)
from repro.emulator.multimode import (
    ModeRun,
    MultiModeReport,
    PhaseExecution,
    run_multimode,
)
from repro.emulator.report import EmulationReport
from repro.emulator.timeline import ProcessTimeline, TimelineEntry
from repro.emulator.activity import ActivitySeries, activity_series
from repro.emulator.trace import Tracer, TraceEvent, export_vcd

__all__ = [
    "EmulationConfig",
    "SegBusEmulator",
    "emulate",
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "ENGINE_NAMES",
    "FastSimulation",
    "make_simulation",
    "resolve_engine",
    "simulation_class",
    "EmulationReport",
    "ModeRun",
    "MultiModeReport",
    "PhaseExecution",
    "run_multimode",
    "ProcessTimeline",
    "TimelineEntry",
    "ActivitySeries",
    "activity_series",
    "Tracer",
    "TraceEvent",
    "export_vcd",
]
