"""Execution of multi-mode applications: per-mode runs composed with switches.

:mod:`repro.psdf.modes` defines *what* a multi-mode application is; this
module executes one on a platform.  The composition exploits a structural
property of the SegBus kernels: a mode iteration only completes when every
process is done and every BU FIFO is empty (the kernels raise
``DeadlockError`` otherwise), so a mode switch on an iteration boundary
needs no in-kernel drain logic — the drain *is* the end of the iteration.
What remains of the transition is the explicit cost model: the BU FIFO
flush and the reconfiguration charge of the schedule's
:class:`~repro.psdf.modes.TransitionSpec`, converted to femtoseconds on
the CA clock (:func:`repro.analysis.analytic.transition_delay_fs`).

Each *distinct* scheduled mode is simulated exactly once per engine (the
kernels are deterministic, so iteration ``k`` of a mode is byte-identical
to iteration 1); a phase of ``n`` iterations then contributes ``n`` times
the measured single-iteration time and events.  Dwell-based switch points
resolve against the analytic per-iteration time
(:func:`repro.analysis.analytic.resolved_phase_iterations`) — a static
schedule decision shared with both estimators, so every engine and every
estimator agrees on the iteration counts.

The composed :class:`MultiModeReport` digests (trace/timeline/report) hash
the per-phase structure plus the per-mode digests, so the three-way ENG-1
equivalence of the single-mode engines lifts to mode-switch traces — and
the MODE-1 oracle (:mod:`repro.testing.oracles`) re-runs the composition
under every engine to enforce exactly that.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import resolve_engine, simulation_class
from repro.emulator.kernel import PlatformSpec
from repro.emulator.report import EmulationReport, build_report
from repro.emulator.trace import Tracer
from repro.errors import ModeError
from repro.model.elements import SegBusPlatform
from repro.psdf.modes import MultiModeApplication
from repro.units import fs_to_ps, fs_to_us


@dataclass(frozen=True)
class ModeRun:
    """One mode's single-iteration measurement under one engine."""

    mode: str
    report: EmulationReport
    trace_digest: str
    events: int
    executed: int
    kind_counts: Dict[str, int]
    iteration_fs: int


@dataclass(frozen=True)
class PhaseExecution:
    """One schedule phase, resolved and placed on the composed timeline."""

    index: int
    mode: str
    iterations: int
    start_fs: int
    phase_fs: int
    #: transition delay charged after this phase (0 when the next phase
    #: stays in the same mode, or when this is the last phase)
    transition_after_fs: int


class _Measurement:
    """Worker-side handle kept for the oracle: the live sim + tracer."""

    def __init__(self, sim, tracer: Tracer) -> None:
        self.sim = sim
        self.tracer = tracer


@dataclass(frozen=True)
class MultiModeReport:
    """The composed outcome of one multi-mode execution."""

    application: str
    engine: str
    phases: Tuple[PhaseExecution, ...]
    mode_runs: Mapping[str, ModeRun]
    transition_total_fs: int
    execution_time_fs: int

    @property
    def execution_time_ps(self) -> int:
        return fs_to_ps(self.execution_time_fs)

    @property
    def execution_time_us(self) -> float:
        return fs_to_us(self.execution_time_fs)

    @property
    def switch_count(self) -> int:
        return sum(1 for p in self.phases if p.transition_after_fs > 0)

    @property
    def total_events(self) -> int:
        """Trace events over every phase iteration."""
        return sum(
            p.iterations * self.mode_runs[p.mode].events for p in self.phases
        )

    @property
    def executed_events(self) -> int:
        """Kernel event-queue pops over every phase iteration."""
        return sum(
            p.iterations * self.mode_runs[p.mode].executed for p in self.phases
        )

    def kind_counts(self) -> Dict[str, int]:
        """Per-kind trace event counts, aggregated over every iteration."""
        counts: Dict[str, int] = {}
        for phase in self.phases:
            run = self.mode_runs[phase.mode]
            for kind, count in run.kind_counts.items():
                counts[kind] = counts.get(kind, 0) + phase.iterations * count
        return counts

    # -- digests ------------------------------------------------------------

    def _composed_digest(self, per_mode: Mapping[str, str]) -> str:
        digest = hashlib.sha256()
        digest.update(
            f"multimode {self.application} "
            f"transition_total_fs={self.transition_total_fs}\n".encode()
        )
        for phase in self.phases:
            digest.update(
                f"{phase.index} {phase.mode} x{phase.iterations} "
                f"start={phase.start_fs} span={phase.phase_fs} "
                f"switch={phase.transition_after_fs} "
                f"{per_mode[phase.mode]}\n".encode()
            )
        return digest.hexdigest()

    def trace_digest(self) -> str:
        return self._composed_digest(
            {name: run.trace_digest for name, run in self.mode_runs.items()}
        )

    def timeline_digest(self) -> str:
        return self._composed_digest(
            {
                name: run.report.timeline.digest()
                for name, run in self.mode_runs.items()
            }
        )

    def report_digest(self) -> str:
        return self._composed_digest(
            {name: run.report.digest() for name, run in self.mode_runs.items()}
        )

    def digest(self) -> str:
        digest = hashlib.sha256()
        for part in (
            self.trace_digest(),
            self.timeline_digest(),
            self.report_digest(),
        ):
            digest.update(part.encode())
        return digest.hexdigest()

    # -- presentation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "application": self.application,
            "engine": self.engine,
            "execution_time_ps": self.execution_time_ps,
            "transition_total_ps": fs_to_ps(self.transition_total_fs),
            "switches": self.switch_count,
            "total_events": self.total_events,
            "trace_digest": self.trace_digest(),
            "timeline_digest": self.timeline_digest(),
            "report_digest": self.report_digest(),
            "phases": [
                {
                    "index": p.index,
                    "mode": p.mode,
                    "iterations": p.iterations,
                    "start_ps": fs_to_ps(p.start_fs),
                    "span_ps": fs_to_ps(p.phase_fs),
                    "transition_after_ps": fs_to_ps(p.transition_after_fs),
                }
                for p in self.phases
            ],
        }

    def format_listing(self) -> str:
        lines = [
            f"Multi-mode application: {self.application} "
            f"({len(self.mode_runs)} mode(s), {len(self.phases)} phase(s), "
            f"{self.switch_count} switch(es), engine: {self.engine})",
            "",
            f"{'#':>3} {'mode':<24} {'iter':>5} {'span (us)':>12} "
            f"{'switch (us)':>12}",
        ]
        for phase in self.phases:
            lines.append(
                f"{phase.index:>3} {phase.mode:<24} {phase.iterations:>5} "
                f"{fs_to_us(phase.phase_fs):>12.2f} "
                f"{fs_to_us(phase.transition_after_fs):>12.2f}"
            )
        lines.append("")
        lines.append(
            f"Transition total: {fs_to_us(self.transition_total_fs):.2f} us "
            f"over {self.switch_count} switch(es)"
        )
        return "\n".join(lines)


def _resolve_spec(
    platform_or_spec: Union[SegBusPlatform, PlatformSpec],
) -> PlatformSpec:
    if isinstance(platform_or_spec, PlatformSpec):
        return platform_or_spec
    return PlatformSpec.from_platform(platform_or_spec)


def _check_placement(
    application: MultiModeApplication, spec: PlatformSpec
) -> None:
    """Every scheduled mode's processes must be placed on the platform."""
    for mode_name in application.scheduled_modes():
        graph = application.modes[mode_name]
        unplaced = sorted(
            name
            for name in graph.process_names
            if name not in spec.placement
        )
        if unplaced:
            raise ModeError(
                f"{application.name}: mode {mode_name!r} has unplaced "
                f"process(es) {', '.join(unplaced)} — the shared platform "
                "must map the union of every mode's processes"
            )


def run_multimode_detailed(
    application: MultiModeApplication,
    platform_or_spec: Union[SegBusPlatform, PlatformSpec],
    config: Optional[EmulationConfig] = None,
    engine: Optional[str] = None,
) -> Tuple[MultiModeReport, Dict[str, _Measurement]]:
    """Like :func:`run_multimode`, but also returns the live per-mode sims.

    The measurements feed the MODE-1 oracle's per-phase conservation and
    law checks; ordinary callers want :func:`run_multimode`.
    """
    # local import: analysis.analytic imports emulator submodules, so a
    # module-level import here would cycle through the package __init__
    # (same shape as diagnose_contention's lazy emulator import, reversed)
    from repro.analysis.analytic import (
        resolved_phase_iterations,
        transition_delay_fs,
    )

    application.validate_for_run()
    spec = _resolve_spec(platform_or_spec)
    _check_placement(application, spec)
    config = config or EmulationConfig()
    resolved = resolve_engine(engine)
    cls = simulation_class(resolved)

    runs: Dict[str, ModeRun] = {}
    measurements: Dict[str, _Measurement] = {}
    for mode_name in application.scheduled_modes():
        graph = application.modes[mode_name]
        tracer = Tracer()
        sim = cls(graph, spec, config, tracer=tracer).run()
        report = build_report(sim)
        runs[mode_name] = ModeRun(
            mode=mode_name,
            report=report,
            trace_digest=tracer.digest(),
            events=len(tracer),
            executed=sim.queue.executed,
            kind_counts=tracer.kind_counts(),
            iteration_fs=sim.execution_time_fs(),
        )
        measurements[mode_name] = _Measurement(sim, tracer)

    iterations = resolved_phase_iterations(application, spec, config)
    switch_fs = transition_delay_fs(application, spec)

    phases = []
    cursor = 0
    schedule = application.schedule.phases
    for index, (phase, count) in enumerate(zip(schedule, iterations)):
        phase_fs = count * runs[phase.mode].iteration_fs
        switches = (
            index + 1 < len(schedule)
            and schedule[index + 1].mode != phase.mode
        )
        transition_after = switch_fs if switches else 0
        phases.append(
            PhaseExecution(
                index=index,
                mode=phase.mode,
                iterations=count,
                start_fs=cursor,
                phase_fs=phase_fs,
                transition_after_fs=transition_after,
            )
        )
        cursor += phase_fs + transition_after

    transition_total = sum(p.transition_after_fs for p in phases)
    report = MultiModeReport(
        application=application.name,
        engine=resolved,
        phases=tuple(phases),
        mode_runs=runs,
        transition_total_fs=transition_total,
        execution_time_fs=cursor,
    )
    return report, measurements


def run_multimode(
    application: MultiModeApplication,
    platform_or_spec: Union[SegBusPlatform, PlatformSpec],
    config: Optional[EmulationConfig] = None,
    engine: Optional[str] = None,
) -> MultiModeReport:
    """Execute a multi-mode application and compose the per-mode runs.

    ``engine`` selects the simulation kernel for every per-mode run
    (default honours ``SEGBUS_ENGINE``); the composed digests are
    engine-invariant whenever the single-mode engines are equivalent,
    which the MODE-1 oracle enforces.
    """
    report, _ = run_multimode_detailed(
        application, platform_or_spec, config=config, engine=engine
    )
    return report
