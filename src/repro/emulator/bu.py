"""Runtime state of a Border Unit.

BUs are *"basically FIFO elements with some additional logic, controlled by
the CA and the neighboring SAs"* (section 2.1).  The runtime keeps one FIFO
**per direction** (rightward/leftward virtual channels): under the paper's
circuit-switched protocol at most one package transits a BU at a time, so
the split is invisible; under the store-and-forward exploration protocol it
is what keeps opposing traffic from deadlocking on a shared slot.

Each queue entry is the load-completion timestamp of a package, consumed by
waiting-period accounting when the downstream segment unloads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.emulator.counters import BUCounters

#: direction constants: +1 = rightward (left->right), -1 = leftward
RIGHTWARD = 1
LEFTWARD = -1


@dataclass
class BURT:
    """Mutable per-BU simulation state."""

    left: int
    right: int
    depth: int
    counters: BUCounters

    #: per-direction FIFO of load-completion timestamps
    queues: Dict[int, List[int]] = field(
        default_factory=lambda: {RIGHTWARD: [], LEFTWARD: []}
    )

    @property
    def name(self) -> str:
        return f"BU{self.left}{self.right}"

    @property
    def occupancy(self) -> int:
        """Total packages currently inside the FIFO (both directions)."""
        return len(self.queues[RIGHTWARD]) + len(self.queues[LEFTWARD])

    def has_space(self, direction: int) -> bool:
        """True when the direction's virtual channel has a free slot."""
        return len(self.queues[direction]) < self.depth

    def push(self, loaded_at_fs: int, direction: int) -> None:
        if not self.has_space(direction):  # pragma: no cover - protocol guard
            raise RuntimeError(
                f"{self.name}: FIFO overflow (depth {self.depth}, "
                f"direction {direction})"
            )
        self.queues[direction].append(loaded_at_fs)

    def pop(self, direction: int) -> int:
        if not self.queues[direction]:  # pragma: no cover - protocol guard
            raise RuntimeError(f"{self.name}: FIFO underflow (direction {direction})")
        return self.queues[direction].pop(0)

    def head_loaded_at(self, direction: int) -> int:
        """Load-completion time of the package at the direction's head."""
        return self.queues[direction][0]

    def other_side(self, segment_index: int) -> int:
        if segment_index == self.left:
            return self.right
        if segment_index == self.right:
            return self.left
        raise ValueError(f"segment {segment_index} is not adjacent to {self.name}")
