"""The emulation report: the paper's results listing as a structured object.

Upon completion *"the emulator returns results from platform elements'
execution: total clock ticks consumed for the operation of the CA and each
of the SAs, total inter-segment requests received, total clock ticks
consumed by each of the BUs, etc."* (section 3.6).  :class:`EmulationReport`
captures every number of the paper's section-4 listing and renders the same
text layout via :meth:`format_listing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.emulator.kernel import Simulation
from repro.emulator.timeline import ProcessTimeline, build_timeline
from repro.units import fs_to_ps, fs_to_us


@dataclass(frozen=True)
class SAResult:
    """Per-segment-arbiter results block."""

    index: int
    tct: int
    intra_requests: int
    inter_requests: int
    packets_to_left: int
    packets_to_right: int
    frequency_mhz: float
    execution_time_ps: int
    # resilience protocol counters (zero on fault-free runs)
    nacks: int = 0
    retries: int = 0
    grant_losses: int = 0

    @property
    def name(self) -> str:
        return f"SA{self.index}"


@dataclass(frozen=True)
class BUResult:
    """Per-border-unit results block."""

    left: int
    right: int
    input_packages: int
    output_packages: int
    received_from_left: int
    received_from_right: int
    transferred_to_left: int
    transferred_to_right: int
    tct: int
    waiting_ticks: int
    #: packages lost to injected BU overruns (zero on fault-free runs)
    dropped_packages: int = 0

    @property
    def name(self) -> str:
        return f"BU{self.left}{self.right}"


@dataclass(frozen=True)
class EmulationReport:
    """Everything the emulator reports for one run."""

    application: str
    segment_count: int
    package_size: int
    ca_tct: int
    ca_requests: int
    ca_frequency_mhz: float
    ca_time_ps: int
    sa_results: Tuple[SAResult, ...]
    bu_results: Tuple[BUResult, ...]
    timeline: ProcessTimeline
    execution_time_fs: int
    total_events: int
    # -- resilience results (all at their zero/empty defaults on fault-free
    # runs, keeping fault-free reports bit-identical to the pre-fault ones)
    ca_nacks: int = 0
    ca_retries: int = 0
    ca_grant_losses: int = 0
    ca_timeouts: int = 0
    degraded: bool = False
    unserved_flows: Tuple[str, ...] = ()
    fault_summary: Optional[dict] = None

    # -- headline numbers ---------------------------------------------------------

    @property
    def execution_time_ps(self) -> int:
        return fs_to_ps(self.execution_time_fs)

    @property
    def execution_time_us(self) -> float:
        return fs_to_us(self.execution_time_fs)

    def sa(self, index: int) -> SAResult:
        for result in self.sa_results:
            if result.index == index:
                return result
        raise KeyError(f"no SA{index}")

    def bu(self, left: int, right: int) -> BUResult:
        for result in self.bu_results:
            if (result.left, result.right) == (left, right):
                return result
        raise KeyError(f"no BU{left}{right}")

    @property
    def total_retries(self) -> int:
        """Re-arbitrated attempts across all arbiters (0 without faults)."""
        return self.ca_retries + sum(sa.retries for sa in self.sa_results)

    @property
    def total_nacks(self) -> int:
        """CRC-style rejections across all arbiters (0 without faults)."""
        return self.ca_nacks + sum(sa.nacks for sa in self.sa_results)

    @property
    def total_dropped_packages(self) -> int:
        """Packages lost to injected BU overruns (0 without faults)."""
        return sum(bu.dropped_packages for bu in self.bu_results)

    def total_inter_segment_packages(self) -> int:
        """Packages that crossed at least one BU (counted at first BU entry)."""
        firsts = 0
        for result in self.bu_results:
            firsts += result.received_from_left + result.received_from_right
        # Every crossing counts once per BU; packages entering from segments
        # equal the inter-segment package count only on the first BU of each
        # path, so derive from SA counters instead.
        return sum(r.inter_requests for r in self.sa_results)

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """The full report as plain data (for JSON archival / comparison)."""
        return {
            "application": self.application,
            "segment_count": self.segment_count,
            "package_size": self.package_size,
            "execution_time_ps": self.execution_time_ps,
            "execution_time_us": round(self.execution_time_us, 6),
            "total_events": self.total_events,
            "degraded": self.degraded,
            "unserved_flows": list(self.unserved_flows),
            "fault_summary": self.fault_summary,
            "ca": {
                "tct": self.ca_tct,
                "inter_requests": self.ca_requests,
                "frequency_mhz": self.ca_frequency_mhz,
                "time_ps": self.ca_time_ps,
                "nacks": self.ca_nacks,
                "retries": self.ca_retries,
                "grant_losses": self.ca_grant_losses,
                "timeouts": self.ca_timeouts,
            },
            "segment_arbiters": [
                {
                    "index": sa.index,
                    "tct": sa.tct,
                    "intra_requests": sa.intra_requests,
                    "inter_requests": sa.inter_requests,
                    "packets_to_left": sa.packets_to_left,
                    "packets_to_right": sa.packets_to_right,
                    "frequency_mhz": sa.frequency_mhz,
                    "execution_time_ps": sa.execution_time_ps,
                    "nacks": sa.nacks,
                    "retries": sa.retries,
                    "grant_losses": sa.grant_losses,
                }
                for sa in self.sa_results
            ],
            "border_units": [
                {
                    "name": bu.name,
                    "input_packages": bu.input_packages,
                    "output_packages": bu.output_packages,
                    "received_from_left": bu.received_from_left,
                    "received_from_right": bu.received_from_right,
                    "transferred_to_left": bu.transferred_to_left,
                    "transferred_to_right": bu.transferred_to_right,
                    "tct": bu.tct,
                    "waiting_ticks": bu.waiting_ticks,
                    "dropped_packages": bu.dropped_packages,
                }
                for bu in self.bu_results
            ],
            "timeline": [
                {
                    "process": entry.process,
                    "start_ps": entry.start_ps,
                    "end_ps": entry.end_ps,
                    "packages_sent": entry.packages_sent,
                    "packages_received": entry.packages_received,
                }
                for entry in self.timeline
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON string."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (hex).

        Pins every reported counter at once; the golden-trace store uses it
        next to the trace and timeline digests so counter drift is caught
        even when the event stream is unchanged.
        """
        import hashlib

        payload = self.to_json(indent=0).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    # -- presentation -----------------------------------------------------------

    def format_listing(self) -> str:
        """Render the paper's section-4 results listing."""
        lines: List[str] = []
        for entry in self.timeline:
            if entry.packages_sent:
                lines.append(
                    f"{entry.process}, Start Time = {entry.start_ps}ps, "
                    f"End Time = {entry.end_ps}ps"
                )
        for entry in self.timeline:
            if not entry.packages_sent and entry.last_input_fs is not None:
                lines.append(
                    f"{entry.process} received last package at "
                    f"{fs_to_ps(entry.last_input_fs)}ps"
                )
        lines.append(f"CA TCT = {self.ca_tct}")
        lines.append(
            f"Execution time = {self.execution_time_ps}ps @ "
            f"{self.ca_frequency_mhz:.2f}MHz"
        )
        for bu in self.bu_results:
            lines.append(f"{bu.name}:")
            lines.append(f"    Total input packages = {bu.input_packages},")
            lines.append(f"    Total output packages = {bu.output_packages}")
            lines.append(
                f"    Package Received from Segment {bu.left} = "
                f"{bu.received_from_left},"
            )
            lines.append(
                f"    Package Transfered to Segment {bu.left} = "
                f"{bu.transferred_to_left}"
            )
            lines.append(
                f"    Package Received from Segment {bu.right} = "
                f"{bu.received_from_right},"
            )
            lines.append(
                f"    Package Transfered to Segment {bu.right} = "
                f"{bu.transferred_to_right}"
            )
            lines.append(f"    TCT = {bu.tct}")
        for sa in self.sa_results:
            lines.append(
                f"Segment {sa.index}: Packets transfered to Left = "
                f"{sa.packets_to_left}, Packets transfered to Right = "
                f"{sa.packets_to_right}"
            )
        for sa in self.sa_results:
            lines.append(f"{sa.name}: TCT = {sa.tct},")
            lines.append(
                f"    Total intra-segment requests = {sa.intra_requests},"
            )
            lines.append(
                f"    Total inter-segment requests = {sa.inter_requests}"
            )
            lines.append(
                f"    Execution Time = {sa.execution_time_ps}ps @ "
                f"{sa.frequency_mhz:.2f}MHz"
            )
        # resilience addendum — only rendered when faults were injected, so
        # fault-free listings stay byte-identical to the paper's layout
        if self.total_nacks or self.total_retries or self.ca_grant_losses \
                or self.ca_timeouts or self.total_dropped_packages \
                or self.degraded or self.fault_summary:
            lines.append(
                f"Resilience: NACKs = {self.total_nacks}, "
                f"Retries = {self.total_retries}, "
                f"Timeouts = {self.ca_timeouts}, "
                f"Dropped = {self.total_dropped_packages}"
            )
            if self.fault_summary:
                lines.append(
                    f"Injected faults = {self.fault_summary.get('total', 0)} "
                    f"(seed {self.fault_summary.get('seed')})"
                )
            if self.degraded:
                lines.append(
                    f"DEGRADED run: {len(self.unserved_flows)} unserved flow(s)"
                )
                for flow in self.unserved_flows:
                    lines.append(f"    {flow}")
        return "\n".join(lines)


def build_report(sim: Simulation) -> EmulationReport:
    """Assemble the report from a finished :class:`Simulation`."""
    sa_results = []
    for index in sorted(sim.segments):
        segment = sim.segments[index]
        sa_results.append(
            SAResult(
                index=index,
                tct=sim.sa_tct(index),
                intra_requests=segment.counters.intra_requests,
                inter_requests=segment.counters.inter_requests,
                packets_to_left=segment.counters.packets_to_left,
                packets_to_right=segment.counters.packets_to_right,
                frequency_mhz=segment.clock.frequency.mhz,
                execution_time_ps=fs_to_ps(sim.sa_time_fs(index)),
                nacks=segment.counters.nacks,
                retries=segment.counters.retries,
                grant_losses=segment.counters.grant_losses,
            )
        )
    bu_results = []
    for pair in sorted(sim.bus_units):
        bu = sim.bus_units[pair]
        bu_results.append(
            BUResult(
                left=bu.left,
                right=bu.right,
                input_packages=bu.counters.input_packages,
                output_packages=bu.counters.output_packages,
                received_from_left=bu.counters.received_from_left,
                received_from_right=bu.counters.received_from_right,
                transferred_to_left=bu.counters.transferred_to_left,
                transferred_to_right=bu.counters.transferred_to_right,
                tct=bu.counters.tct,
                waiting_ticks=bu.counters.waiting_ticks,
                dropped_packages=bu.counters.dropped_packages,
            )
        )
    return EmulationReport(
        application=sim.application.name,
        segment_count=sim.spec.segment_count,
        package_size=sim.package_size,
        ca_tct=sim.ca.counters.tct,
        ca_requests=sim.ca.counters.inter_requests,
        ca_frequency_mhz=sim.ca.clock.frequency.mhz,
        ca_time_ps=fs_to_ps(sim.ca_time_fs()),
        sa_results=tuple(sa_results),
        bu_results=tuple(bu_results),
        timeline=build_timeline(sim),
        execution_time_fs=sim.execution_time_fs(),
        total_events=sim.queue.executed,
        ca_nacks=sim.ca.counters.nacks,
        ca_retries=sim.ca.counters.retries,
        ca_grant_losses=sim.ca.counters.grant_losses,
        ca_timeouts=sim.ca.counters.timeouts,
        degraded=sim.degraded,
        unserved_flows=sim.unserved_flows,
        # only attach a summary when a fault actually fired: a zero-rate
        # plan must produce a report bit-identical to the fault-free one
        fault_summary=(
            sim.faults.summary()
            if sim.faults is not None and sim.faults.counters.total > 0
            else None
        ),
    )
