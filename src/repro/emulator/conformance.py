"""Protocol conformance checking over recorded traces and counters.

The emulator *claims* to implement the SegBus protocol; this module checks
it, run by run.  Given a finished simulation (optionally with a
:class:`~repro.emulator.trace.Tracer`), :func:`check_conformance` verifies
the platform's invariants and returns the violations — the property-based
test suite drives it over random applications, so any future kernel change
that breaks the protocol is caught by an independent observer rather than
by the kernel's own bookkeeping.

Checked invariants:

* **BUS-1** — bus occupations of one segment never overlap (one transfer
  at a time per segment);
* **BUS-2** — every bus occupation lasts at least ``s`` ticks of the
  segment's clock (a package is never shortened);
* **BU-1** — per BU and direction, loads and unloads strictly alternate
  within the FIFO depth (no overflow/underflow);
* **BU-2** — every BU's TCT is at least its useful period (waiting periods
  are non-negative): ``TCT >= 2·s·packages``;
* **ORD-1** — per flow, package delivery order matches emission order
  (the bus preserves FIFO per flow);
* **FIRE-1** — no process fires before its last expected input, and no
  master emits before it fired;
* **CNT-1** — grants + CA grants equal the schedule's package count
  (every package got exactly one bus grant);
* **END-1** — the reported execution time covers every recorded activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.emulator.kernel import Simulation
from repro.emulator.trace import Tracer


@dataclass
class ConformanceReport:
    """The verdict: violations per invariant id (empty = conformant)."""

    violations: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, rule: str, message: str) -> None:
        self.violations.append(f"[{rule}] {message}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "conformant" if self.ok else f"{len(self.violations)} violation(s)"
        return f"ConformanceReport({status}, {self.checked} invariants)"


def check_conformance(
    sim: Simulation, tracer: Optional[Tracer] = None
) -> ConformanceReport:
    """Check every protocol invariant; trace-based rules need ``tracer``."""
    report = ConformanceReport()
    _check_bus_exclusivity(sim, report)
    _check_bus_min_duration(sim, report)
    _check_bu_tct_bound(sim, report)
    _check_grant_accounting(sim, report)
    _check_execution_time_covers(sim, report)
    if tracer is not None:
        _check_delivery_order(sim, tracer, report)
        _check_firing_rules(sim, tracer, report)
    return report


def _check_bus_exclusivity(sim: Simulation, report: ConformanceReport) -> None:
    report.checked += 1
    for index, segment in sim.segments.items():
        intervals = sorted(segment.counters.busy_intervals)
        for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
            if s1 < e0:
                report.add(
                    "BUS-1",
                    f"segment {index}: occupation [{s1}, {e1}] overlaps "
                    f"[{s0}, {e0}]",
                )


def _check_bus_min_duration(sim: Simulation, report: ConformanceReport) -> None:
    report.checked += 1
    for index, segment in sim.segments.items():
        min_fs = segment.clock.ticks_to_fs(sim.package_size)
        for start, end in segment.counters.busy_intervals:
            if end - start < min_fs:
                report.add(
                    "BUS-2",
                    f"segment {index}: occupation [{start}, {end}] shorter "
                    f"than one package ({min_fs} fs)",
                )


def _check_bu_tct_bound(sim: Simulation, report: ConformanceReport) -> None:
    report.checked += 2  # BU-1 folded into counters; BU-2 checked here
    for bu in sim.bus_units.values():
        c = bu.counters
        if c.input_packages != c.output_packages:
            report.add(
                "BU-1",
                f"{bu.name}: {c.input_packages} loads vs "
                f"{c.output_packages} unloads",
            )
        useful = 2 * sim.package_size * c.output_packages
        if c.tct < useful:
            report.add(
                "BU-2", f"{bu.name}: TCT {c.tct} below useful period {useful}"
            )


def _check_grant_accounting(sim: Simulation, report: ConformanceReport) -> None:
    report.checked += 1
    total = sim.application.total_packages(sim.package_size)
    local_grants = sum(s.counters.grants for s in sim.segments.values())
    circuit_grants = sim.ca.counters.grants
    if local_grants + circuit_grants != total:
        report.add(
            "CNT-1",
            f"{local_grants} local + {circuit_grants} circuit grants for "
            f"{total} scheduled packages",
        )


def _check_execution_time_covers(sim: Simulation, report: ConformanceReport) -> None:
    report.checked += 1
    exec_fs = sim.execution_time_fs()
    latest = 0
    for segment in sim.segments.values():
        for _, end in segment.counters.busy_intervals:
            latest = max(latest, end)
    for counters in sim.process_counters.values():
        if counters.end_fs:
            latest = max(latest, counters.end_fs)
    if exec_fs < latest:
        report.add(
            "END-1",
            f"execution time {exec_fs} fs below last activity {latest} fs",
        )


def _check_delivery_order(
    sim: Simulation, tracer: Tracer, report: ConformanceReport
) -> None:
    report.checked += 1
    # per flow label prefix "src->dst", sequence numbers must be delivered
    # in ascending order; fills/hops carry the label "src->dst#k/n"
    last_seq: Dict[Tuple[str, str], int] = {}
    for event in tracer.events:
        if event.kind not in ("transfer_done", "hop_done"):
            continue
        label = event.detail
        if "#" not in label:
            continue
        pair_text, seq_text = label.split("#", 1)
        source, target = pair_text.split("->", 1)
        seq = int(seq_text.split("/", 1)[0])
        key = (source, target)
        if event.kind == "transfer_done" or _is_final_hop(sim, source, target, event):
            previous = last_seq.get(key, 0)
            if seq < previous:
                report.add(
                    "ORD-1",
                    f"flow {source}->{target}: package #{seq} completed "
                    f"after #{previous}",
                )
            last_seq[key] = max(previous, seq)


def _is_final_hop(sim: Simulation, source: str, target: str, event) -> bool:
    # a hop_done on the BU adjacent to the target's segment is the delivery
    target_segment = sim.spec.placement[target]
    return event.subject in (
        f"BU{target_segment - 1}{target_segment}",
        f"BU{target_segment}{target_segment + 1}",
    )


def _check_firing_rules(
    sim: Simulation, tracer: Tracer, report: ConformanceReport
) -> None:
    report.checked += 1
    fired_at: Dict[str, int] = {}
    deliveries: Dict[str, int] = {}
    for event in tracer.events:
        if event.kind == "fire":
            fired_at[event.subject] = event.time_fs
            expected = sim.schedule.inputs_of[event.subject]
            if deliveries.get(event.subject, 0) < expected:
                report.add(
                    "FIRE-1",
                    f"{event.subject} fired after "
                    f"{deliveries.get(event.subject, 0)}/{expected} inputs",
                )
        elif event.kind == "deliver":
            deliveries[event.subject] = deliveries.get(event.subject, 0) + 1
        elif event.kind == "request":
            if event.subject not in fired_at:
                report.add(
                    "FIRE-1",
                    f"{event.subject} requested the bus before firing",
                )
