"""Differential oracles: cross-check one emulation against independent laws.

The emulator's headline claim is a *timing* estimate, so the oracle does
not re-derive the timing — it bounds and conserves it from three
independent directions and fails loudly on any divergence:

* **ANA — analytic differential.**  The contention-free analytic walk
  (:func:`repro.analysis.analytic.analytic_estimate`) must never exceed
  the emulated time by more than its documented per-crossing alignment
  slack (``ANA-1``), and the emulated time must stay within a documented
  contention multiple of the analytic one (``ANA-2``) — an emulator change
  that suddenly doubles contention on lightly loaded random models is a
  bug, not a workload property.
* **LAW — the paper's total-time law.**  The reported execution time is
  exactly ``max(t_SA1 … t_SAn, t_CA)`` (section 4, "Calculation of the
  execution time"), and the TCT counters are monotone: every recorded bus
  activity lies inside ``[0, global_end]``, every SA's TCT covers its own
  busy ticks, and the CA's TCT covers the global end (``LAW-1``/``MONO-1``).
* **CONS — package conservation.**  Per BU: packages in = packages out
  (+drops), and per direction nothing is conjured or lost; per process:
  received packages equal the schedule's expected inputs and sent packages
  equal the outgoing package count; per BU pair the crossing count matches
  the mapped schedule exactly (``CONS-*``).

* **ENG — engine equivalence.**  The same model runs through *every*
  simulation engine (the cycle-stepped reference, the event-driven fast
  kernel and the vectorized batch kernel, see docs/PERFORMANCE.md) and
  the trace, timeline and report digests plus the executed event count
  must be byte-identical across the whole matrix (``ENG-1``) — the
  derived kernels are only allowed constant-factor optimizations, never
  observable ones.

* **SAN — stochastic estimator band.**  The static contention estimator
  (:func:`repro.analysis.stochastic.stochastic_estimate`) must stay at or
  above the analytic lower bound and within a pinned relative error band
  of the emulated time (``SAN-1``) — the "estimation" in the paper's title
  is only trustworthy while its error against ground truth stays bounded
  on every corpus model (measured ≤ 4% worst case; the band leaves
  headroom at 15%, docs/PERFORMANCE.md).

* **MODE — multi-mode composition.**  For a
  :class:`~repro.psdf.modes.MultiModeApplication`
  (:func:`run_multimode_oracle`), the composed emulated total must cover
  the largest per-mode analytic lower bound plus every charged transition
  delay (``MODE-1``); every per-mode run re-passes the full ANA/LAW/MONO/
  CONS/SAN single-mode battery (package conservation therefore holds
  across every switch boundary — each phase starts from drained queues);
  the end-to-end composed stochastic estimate stays inside the SAN-1
  band; and the composed trace/timeline/report digests are byte-identical
  across all three engines (ENG-1 lifted to mode-switch traces).

On top, the protocol conformance checker
(:func:`repro.emulator.conformance.check_conformance`) runs with a live
tracer, so its BUS/BU/ORD/FIRE/CNT invariants ride along for free.

The oracle is deliberately *fault-free*: fault injection changes the
conservation laws (drops, retries) and has its own property suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.analytic import analytic_estimate, analytic_estimate_multimode
from repro.analysis.stochastic import (
    stochastic_estimate,
    stochastic_estimate_multimode,
)
from repro.emulator.config import EmulationConfig
from repro.emulator.conformance import check_conformance
from repro.emulator.fastkernel import (
    ENGINE_NAMES,
    resolve_engine,
    simulation_class,
)
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.multimode import run_multimode, run_multimode_detailed
from repro.emulator.report import build_report
from repro.emulator.trace import Tracer
from repro.model.elements import SegBusPlatform
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import MultiModeApplication
from repro.units import fs_to_us


@dataclass(frozen=True)
class OracleTolerance:
    """The documented divergence tolerances (docs/TESTING.md).

    ``contention_ratio_max`` bounds ``emulated / analytic``: the analytic
    walk is contention-free, so the ratio measures arbitration and queueing
    cost.  On the generator's computation-bound random models the observed
    ratio stays well below 2; 4.0 leaves room for genuinely contended
    draws while still catching runaway-contention regressions.

    ``stochastic_error_max`` bounds ``|stochastic − emulated| / emulated``:
    the corpus-measured worst case is below 4% (MAE < 1%), so 0.15 is a
    generous regression ceiling, not the expected accuracy.
    """

    contention_ratio_max: float = 4.0
    stochastic_error_max: float = 0.15


@dataclass
class OracleReport:
    """The verdict for one model: empty ``violations`` means conformant."""

    label: str
    emulated_us: float
    analytic_us: float
    total_events: int
    violations: List[str] = field(default_factory=list)
    checked: int = 0
    stochastic_us: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def contention_ratio(self) -> float:
        return self.emulated_us / self.analytic_us if self.analytic_us else 0.0

    def add(self, invariant: str, message: str) -> None:
        self.violations.append(f"[{invariant}] {message}")

    def format(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [
            f"{self.label}: {status} — emulated {self.emulated_us:.2f} us, "
            f"analytic {self.analytic_us:.2f} us, "
            f"stochastic {self.stochastic_us:.2f} us, "
            f"{self.total_events} events"
        ]
        lines.extend(f"    {v}" for v in self.violations)
        return "\n".join(lines)


def run_differential_oracle(
    application: PSDFGraph,
    platform: SegBusPlatform,
    config: Optional[EmulationConfig] = None,
    tolerance: OracleTolerance = OracleTolerance(),
    label: Optional[str] = None,
    engine: Optional[str] = None,
) -> OracleReport:
    """Emulate ``application`` on ``platform`` and check every oracle law.

    ``engine`` names the *primary* engine whose run feeds the ANA/LAW/CONS
    laws and the conformance checker (default honours ``SEGBUS_ENGINE``);
    the ``ENG-1`` check always re-runs the model through the other engine
    and compares digests, so either choice covers both kernels.
    """
    config = config or EmulationConfig()
    spec = PlatformSpec.from_platform(platform)
    primary = resolve_engine(engine)
    tracer = Tracer()
    sim = simulation_class(primary)(
        application, spec, config, tracer=tracer
    ).run()
    analytic = analytic_estimate(application, spec, config)
    stochastic = stochastic_estimate(application, spec, config)

    report = OracleReport(
        label=label or f"{application.name} on {platform.name}",
        emulated_us=fs_to_us(sim.execution_time_fs()),
        analytic_us=analytic.execution_time_us,
        total_events=sim.queue.executed,
        stochastic_us=stochastic.execution_time_us,
    )
    _check_analytic_bounds(sim, spec, analytic, tolerance, report)
    _check_stochastic_band(sim, analytic, stochastic, tolerance, report)
    _check_total_time_law(sim, report)
    _check_tct_monotonicity(sim, report)
    _check_bu_conservation(sim, spec, report)
    _check_process_conservation(sim, report)
    _check_engine_equivalence(sim, spec, config, tracer, primary, report)
    conformance = check_conformance(sim, tracer)
    report.checked += conformance.checked
    report.violations.extend(conformance.violations)
    return report


def run_multimode_oracle(
    application: MultiModeApplication,
    platform,
    config: Optional[EmulationConfig] = None,
    tolerance: OracleTolerance = OracleTolerance(),
    label: Optional[str] = None,
    engine: Optional[str] = None,
) -> OracleReport:
    """Execute a multi-mode application and check the MODE battery.

    ``platform`` may be a :class:`~repro.model.elements.SegBusPlatform`
    or a prepared :class:`~repro.emulator.kernel.PlatformSpec`.  The
    primary ``engine`` feeds the per-mode law checks; the composed run is
    then repeated under every other engine for the lifted ENG-1 check.
    """
    config = config or EmulationConfig()
    if isinstance(platform, PlatformSpec):
        spec = platform
    else:
        spec = PlatformSpec.from_platform(platform)
    primary = resolve_engine(engine)
    composed, measurements = run_multimode_detailed(
        application, spec, config, engine=primary
    )
    analytic = analytic_estimate_multimode(application, spec, config)
    stochastic = stochastic_estimate_multimode(application, spec, config)

    report = OracleReport(
        label=label or application.name,
        emulated_us=composed.execution_time_us,
        analytic_us=analytic.execution_time_us,
        total_events=composed.executed_events,
        stochastic_us=stochastic.execution_time_us,
    )

    scheduled = application.scheduled_modes()

    # MODE-1: the composed total covers the largest per-mode analytic
    # lower bound plus every charged transition (each scheduled mode runs
    # at least one full iteration, and transitions are pure added delay)
    report.checked += 1
    slack_fs = max(
        analytic_slack_fs(application.modes[name], spec, config)
        for name in scheduled
    )
    bound_fs = (
        max(analytic.per_mode[name].execution_time_fs for name in scheduled)
        + analytic.transition_total_fs
    )
    if composed.execution_time_fs + slack_fs < bound_fs:
        report.add(
            "MODE-1",
            f"composed emulated total {composed.execution_time_us:.3f} us "
            f"(+{fs_to_us(slack_fs):.3f} us slack) falls below the largest "
            f"per-mode analytic bound plus transition charges "
            f"({fs_to_us(bound_fs):.3f} us)",
        )

    # per-mode battery: every distinct scheduled mode's run re-passes the
    # single-mode laws, so conservation holds across every switch boundary
    for name in scheduled:
        measurement = measurements[name]
        sim, tracer = measurement.sim, measurement.tracer
        start = len(report.violations)
        _check_analytic_bounds(
            sim, spec, analytic.per_mode[name], tolerance, report
        )
        _check_stochastic_band(
            sim, analytic.per_mode[name], stochastic.per_mode[name],
            tolerance, report,
        )
        _check_total_time_law(sim, report)
        _check_tct_monotonicity(sim, report)
        _check_bu_conservation(sim, spec, report)
        _check_process_conservation(sim, report)
        conformance = check_conformance(sim, tracer)
        report.checked += conformance.checked
        report.violations.extend(conformance.violations)
        for index in range(start, len(report.violations)):
            report.violations[index] = (
                f"mode {name}: {report.violations[index]}"
            )

    # end-to-end SAN-1 on the composed estimate
    report.checked += 1
    if composed.execution_time_fs > 0:
        error = (
            abs(stochastic.execution_time_fs - composed.execution_time_fs)
            / composed.execution_time_fs
        )
        if error > tolerance.stochastic_error_max:
            report.add(
                "SAN-1",
                f"composed stochastic estimate "
                f"{stochastic.execution_time_us:.3f} us is {error:.1%} off "
                f"the composed emulated {composed.execution_time_us:.3f} us "
                f"(band: {tolerance.stochastic_error_max:.0%})",
            )

    # ENG-1 lifted to mode-switch traces
    for other in ENGINE_NAMES:
        if other == primary:
            continue
        report.checked += 1
        theirs = run_multimode(application, spec, config, engine=other)
        for kind, a, b in (
            ("trace", composed.trace_digest(), theirs.trace_digest()),
            ("timeline", composed.timeline_digest(), theirs.timeline_digest()),
            ("report", composed.report_digest(), theirs.report_digest()),
        ):
            if a != b:
                report.add(
                    "ENG-1",
                    f"composed {kind} digest diverges between the {primary} "
                    f"and {other} engines ({a[:12]}… != {b[:12]}…) on a "
                    "mode-switch trace",
                )
        if composed.total_events != theirs.total_events:
            report.add(
                "ENG-1",
                f"composed event counts diverge: {primary} traced "
                f"{composed.total_events}, {other} traced "
                f"{theirs.total_events}",
            )
    return report


# ---------------------------------------------------------------------------
# ENG — engine equivalence
# ---------------------------------------------------------------------------


def _check_engine_equivalence(
    sim: Simulation,
    spec: PlatformSpec,
    config: EmulationConfig,
    tracer: Tracer,
    primary: str,
    report: OracleReport,
) -> None:
    """ENG-1: every other engine must reproduce the run byte-for-byte."""
    mine = build_report(sim)
    for other in ENGINE_NAMES:
        if other == primary:
            continue
        report.checked += 1
        other_tracer = Tracer()
        other_sim = simulation_class(other)(
            sim.application, spec, config, tracer=other_tracer
        ).run()
        theirs = build_report(other_sim)
        for name, a, b in (
            ("trace", tracer.digest(), other_tracer.digest()),
            ("timeline", mine.timeline.digest(), theirs.timeline.digest()),
            ("report", mine.digest(), theirs.digest()),
        ):
            if a != b:
                report.add(
                    "ENG-1",
                    f"{name} digest diverges between the {primary} and "
                    f"{other} engines ({a[:12]}… != {b[:12]}…): the engines "
                    "must be tick-for-tick equivalent",
                )
        if sim.queue.executed != other_sim.queue.executed:
            report.add(
                "ENG-1",
                f"executed event counts diverge: {primary} ran "
                f"{sim.queue.executed}, {other} ran "
                f"{other_sim.queue.executed}",
            )


# ---------------------------------------------------------------------------
# ANA — analytic differential
# ---------------------------------------------------------------------------


def analytic_slack_fs(
    application: PSDFGraph, spec: PlatformSpec, config: EmulationConfig
) -> int:
    """Upper bound on how far the analytic walk may *overshoot* emulation.

    The walk charges every clock-domain alignment (one per package per BU
    crossing, plus one per firing) as a full destination tick where the
    kernel aligns fractionally (see :mod:`repro.analysis.analytic`); the
    overshoot is therefore at most one slowest-clock period per charged
    alignment, accumulated along a serial chain.
    """
    periods = [
        round(1e9 / mhz) for mhz in spec.segment_frequencies_mhz.values()
    ]
    periods.append(round(1e9 / spec.ca_frequency_mhz))
    max_period_fs = max(periods)
    alignments = len(application.process_names)  # one firing edge each
    for flow in application.flows:
        crossings = abs(
            spec.placement[flow.source] - spec.placement[flow.target]
        )
        packages = flow.packages(spec.package_size)
        # fill + one alignment per crossed segment, per package
        alignments += packages * (crossings + 1)
    return alignments * max_period_fs


def _check_analytic_bounds(
    sim: Simulation,
    spec: PlatformSpec,
    analytic,
    tolerance: OracleTolerance,
    report: OracleReport,
) -> None:
    report.checked += 2
    emulated_fs = sim.execution_time_fs()
    slack_fs = analytic_slack_fs(sim.application, spec, sim.config)
    if analytic.execution_time_fs > emulated_fs + slack_fs:
        report.add(
            "ANA-1",
            f"analytic estimate {analytic.execution_time_us:.3f} us exceeds "
            f"emulated {fs_to_us(emulated_fs):.3f} us beyond the alignment "
            f"slack ({fs_to_us(slack_fs):.3f} us): the contention-free walk "
            "must lower-bound the emulation",
        )
    limit_fs = int(
        analytic.execution_time_fs * tolerance.contention_ratio_max
    ) + slack_fs
    if emulated_fs > limit_fs:
        report.add(
            "ANA-2",
            f"emulated {fs_to_us(emulated_fs):.3f} us is more than "
            f"{tolerance.contention_ratio_max}x the analytic "
            f"{analytic.execution_time_us:.3f} us: contention beyond the "
            "documented tolerance (emulator regression or generator drift)",
        )


# ---------------------------------------------------------------------------
# SAN — stochastic estimator band
# ---------------------------------------------------------------------------


def _check_stochastic_band(
    sim: Simulation,
    analytic,
    stochastic,
    tolerance: OracleTolerance,
    report: OracleReport,
) -> None:
    """SAN-1: the static contention estimate brackets the emulated time.

    Lower side exactly (the estimate only ever *adds* expected waiting to
    the analytic walk, so falling below it means the estimator is broken);
    upper and lower error against the emulation within the pinned band.
    """
    report.checked += 2
    if stochastic.execution_time_fs < analytic.execution_time_fs:
        report.add(
            "SAN-1",
            f"stochastic estimate {stochastic.execution_time_us:.3f} us "
            f"fell below its own analytic lower bound "
            f"{analytic.execution_time_us:.3f} us: the contention term "
            "must be non-negative",
        )
    emulated_fs = sim.execution_time_fs()
    if emulated_fs > 0:
        error = (
            abs(stochastic.execution_time_fs - emulated_fs) / emulated_fs
        )
        if error > tolerance.stochastic_error_max:
            report.add(
                "SAN-1",
                f"stochastic estimate {stochastic.execution_time_us:.3f} us "
                f"is {error:.1%} off the emulated "
                f"{fs_to_us(emulated_fs):.3f} us (band: "
                f"{tolerance.stochastic_error_max:.0%}): estimator drift "
                "against ground truth",
            )


# ---------------------------------------------------------------------------
# LAW / MONO — total-time law and TCT monotonicity
# ---------------------------------------------------------------------------


def _check_total_time_law(sim: Simulation, report: OracleReport) -> None:
    report.checked += 1
    times = [sim.sa_time_fs(i) for i in sorted(sim.segments)]
    times.append(sim.ca_time_fs())
    expected = max(times)
    if sim.execution_time_fs() != expected:
        report.add(
            "LAW-1",
            f"execution time {sim.execution_time_fs()} fs != "
            f"max(t_SA..., t_CA) = {expected} fs (the paper's total-time "
            "law)",
        )


def _check_tct_monotonicity(sim: Simulation, report: OracleReport) -> None:
    report.checked += 1
    end = sim.global_end_fs
    for index in sorted(sim.segments):
        segment = sim.segments[index]
        for start_fs, end_fs in segment.counters.busy_intervals:
            if start_fs < 0 or end_fs > end:
                report.add(
                    "MONO-1",
                    f"segment {index} busy interval [{start_fs}, {end_fs}] "
                    f"escapes the run window [0, {end}]",
                )
                break
        busy_ticks = sum(
            segment.clock.ticks_between(s, e)
            for s, e in segment.counters.busy_intervals
        )
        if sim.sa_tct(index) < busy_ticks:
            report.add(
                "MONO-1",
                f"SA{index} TCT {sim.sa_tct(index)} does not cover its own "
                f"busy ticks {busy_ticks}",
            )
    if sim.ca.counters.tct < sim.ca.clock.ticks(end):
        report.add(
            "MONO-1",
            f"CA TCT {sim.ca.counters.tct} below the global end "
            f"({sim.ca.clock.ticks(end)} CA ticks)",
        )


# ---------------------------------------------------------------------------
# CONS — conservation laws
# ---------------------------------------------------------------------------


def _expected_crossings(
    sim: Simulation, spec: PlatformSpec
) -> Dict[Tuple[int, int], int]:
    crossings: Dict[Tuple[int, int], int] = {
        pair: 0 for pair in sim.bus_units
    }
    for flow in sim.application.flows:
        src = spec.placement[flow.source]
        dst = spec.placement[flow.target]
        if src == dst:
            continue
        packages = flow.packages(spec.package_size)
        lo, hi = min(src, dst), max(src, dst)
        for left in range(lo, hi):
            crossings[(left, left + 1)] += packages
    return crossings


def _check_bu_conservation(
    sim: Simulation, spec: PlatformSpec, report: OracleReport
) -> None:
    report.checked += 1
    expected = _expected_crossings(sim, spec)
    for pair in sorted(sim.bus_units):
        bu = sim.bus_units[pair]
        c = bu.counters
        if bu.occupancy:
            report.add(
                "CONS-1", f"{bu.name} still holds {bu.occupancy} package(s)"
            )
        if c.input_packages != c.output_packages + c.dropped_packages:
            report.add(
                "CONS-1",
                f"{bu.name}: {c.input_packages} in != {c.output_packages} "
                f"out + {c.dropped_packages} dropped",
            )
        if c.received_from_left != c.transferred_to_right:
            report.add(
                "CONS-1",
                f"{bu.name}: left->right flow not conserved "
                f"({c.received_from_left} received, "
                f"{c.transferred_to_right} transferred)",
            )
        if c.received_from_right != c.transferred_to_left:
            report.add(
                "CONS-1",
                f"{bu.name}: right->left flow not conserved "
                f"({c.received_from_right} received, "
                f"{c.transferred_to_left} transferred)",
            )
        if c.input_packages != expected[pair]:
            report.add(
                "CONS-2",
                f"{bu.name}: {c.input_packages} crossings observed, the "
                f"mapped schedule implies {expected[pair]}",
            )


def _check_process_conservation(sim: Simulation, report: OracleReport) -> None:
    report.checked += 1
    for name in sim.application.process_names:
        counters = sim.process_counters[name]
        expected_in = sim.schedule.inputs_of[name]
        if counters.packages_received != expected_in:
            report.add(
                "CONS-3",
                f"process {name}: received {counters.packages_received} "
                f"packages, schedule expects {expected_in}",
            )
        expected_out = sum(
            t.packages for t in sim.schedule.transfers_of[name]
        )
        if counters.packages_sent != expected_out:
            report.add(
                "CONS-3",
                f"process {name}: sent {counters.packages_sent} packages, "
                f"schedule expects {expected_out}",
            )
        if not counters.done:
            report.add("CONS-3", f"process {name} never completed")
