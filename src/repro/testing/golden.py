"""Golden-trace store: pinned digests for the example models.

``tests/integration/golden`` already pins the headline listing as text;
this store generalizes the idea to *trace-level* behaviour for every
(PSDF, PSM) pair under ``examples/models/``.  For each pair it records

* the canonical **trace digest** (every semantic event, in order),
* the **timeline digest** (per-process start/end/packages),
* the **report digest** (every counter of the results listing),
* readable metadata — event count, per-kind event counts, execution time —

in one JSON file.  ``segbus selftest`` re-emulates the pairs and fails on
*unexplained drift*: any digest mismatch is reported with the metadata
diff (which digests moved, how the event mix and the execution time
changed), so a reviewer can tell a timing refactor from a broken kernel
at a glance.  Intentional changes are re-pinned with
``segbus selftest --update-golden`` (see docs/TESTING.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.emulator.fastkernel import ENGINE_NAMES, simulation_class
from repro.emulator.kernel import PlatformSpec
from repro.emulator.report import build_report
from repro.emulator.trace import Tracer
from repro.errors import SegBusError
from repro.units import fs_to_ps
from repro.xmlio.psdf_parser import parse_psdf_xml
from repro.xmlio.psm_parser import parse_psm_xml

#: default locations, relative to a repository checkout
DEFAULT_MODELS_DIR = Path("examples") / "models"
DEFAULT_STORE = (
    Path("tests") / "integration" / "golden" / "trace_digests.json"
)
#: pinned digests for the named workload scenarios (see
#: :mod:`repro.apps.workloads`), including the composed multi-mode digests
DEFAULT_WORKLOAD_STORE = (
    Path("tests") / "integration" / "golden" / "workload_digests.json"
)
#: the scenarios pinned by default: one adversarial shape and the
#: two-phase multi-mode composition
WORKLOAD_GOLDEN_NAMES = ("adversarial_hot_segment", "mp3_jpeg_multimode")
STORE_VERSION = 2


@dataclass(frozen=True)
class GoldenEntry:
    """The pinned digests and readable metadata of one model pair."""

    key: str
    trace_digest: str
    timeline_digest: str
    report_digest: str
    events: int
    kind_counts: Dict[str, int]
    execution_time_ps: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_digest": self.trace_digest,
            "timeline_digest": self.timeline_digest,
            "report_digest": self.report_digest,
            "events": self.events,
            "kind_counts": self.kind_counts,
            "execution_time_ps": self.execution_time_ps,
        }

    @classmethod
    def from_dict(cls, key: str, data: Dict[str, object]) -> "GoldenEntry":
        return cls(
            key=key,
            trace_digest=str(data["trace_digest"]),
            timeline_digest=str(data["timeline_digest"]),
            report_digest=str(data["report_digest"]),
            events=int(data["events"]),
            kind_counts={
                str(k): int(v) for k, v in dict(data["kind_counts"]).items()
            },
            execution_time_ps=int(data["execution_time_ps"]),
        )


@dataclass
class GoldenCheck:
    """Outcome of one golden comparison run."""

    drifts: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    unpinned: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.drifts and not self.missing and not self.unpinned

    def format(self) -> str:
        if self.ok:
            return f"golden traces: {self.checked} pair(s) unchanged"
        lines = [f"golden traces: {self.checked} pair(s) checked"]
        for drift in self.drifts:
            lines.append(drift)
        for key in self.missing:
            lines.append(
                f"  {key}: pinned but the model files are gone — regenerate "
                "the store or restore the files"
            )
        for key in self.unpinned:
            lines.append(
                f"  {key}: present but not pinned — run with --update-golden "
                "to pin it"
            )
        return "\n".join(lines)


def discover_pairs(
    models_dir: Union[str, Path] = DEFAULT_MODELS_DIR,
) -> List[Tuple[str, Path, Path]]:
    """(key, psdf path, psm path) for every application/platform pair.

    A PSM named ``<app>_psm*.xml`` pairs with the PSDF ``<app>_psdf.xml``;
    the key is ``<psdf name>+<psm name>``.
    """
    directory = Path(models_dir)
    if not directory.is_dir():
        raise SegBusError(f"model directory {directory} does not exist")
    psdfs = {
        p.name.split("_psdf")[0]: p for p in sorted(directory.glob("*_psdf.xml"))
    }
    pairs: List[Tuple[str, Path, Path]] = []
    for psm in sorted(directory.glob("*_psm*.xml")):
        app = psm.name.split("_psm")[0]
        psdf = psdfs.get(app)
        if psdf is None:
            continue
        pairs.append((f"{psdf.name}+{psm.name}", psdf, psm))
    return pairs


def measure_pair(
    psdf_path: Path, psm_path: Path, key: str, engine: str = "stepped"
) -> GoldenEntry:
    """Emulate one pair with a tracer and digest everything.

    ``engine`` picks the simulation kernel; every engine is pinned
    against the *same* store entries, so drift in any one trips the
    same check.
    """
    application = parse_psdf_xml(
        psdf_path.read_text(encoding="utf-8")
    ).to_graph()
    spec = PlatformSpec.from_parsed_psm(
        parse_psm_xml(psm_path.read_text(encoding="utf-8"))
    )
    tracer = Tracer()
    sim = simulation_class(engine)(application, spec, tracer=tracer).run()
    report = build_report(sim)
    return GoldenEntry(
        key=key,
        trace_digest=tracer.digest(),
        timeline_digest=report.timeline.digest(),
        report_digest=report.digest(),
        events=len(tracer),
        kind_counts=tracer.kind_counts(),
        execution_time_ps=fs_to_ps(sim.execution_time_fs()),
    )


def load_store(path: Union[str, Path]) -> Dict[str, GoldenEntry]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != STORE_VERSION:
        raise SegBusError(
            f"golden store {path}: unsupported version {data.get('version')!r}"
        )
    return {
        key: GoldenEntry.from_dict(key, entry)
        for key, entry in data.get("entries", {}).items()
    }


def write_store(
    entries: Dict[str, GoldenEntry], path: Union[str, Path]
) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": STORE_VERSION,
        "engines": list(ENGINE_NAMES),
        "entries": {
            key: entries[key].to_dict() for key in sorted(entries)
        },
    }
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def update_goldens(
    models_dir: Union[str, Path] = DEFAULT_MODELS_DIR,
    store_path: Union[str, Path] = DEFAULT_STORE,
) -> Dict[str, GoldenEntry]:
    """Re-measure every pair and (re)write the store — the intentional path.

    Pinning refuses to proceed if the engines disagree with each other:
    a store written from a divergent matrix would silently bless exactly
    the bug ENG-1 exists to catch.
    """
    entries: Dict[str, GoldenEntry] = {}
    for key, psdf, psm in discover_pairs(models_dir):
        entries[key] = measure_pair(psdf, psm, key)
        for engine in ENGINE_NAMES[1:]:
            drift = _diff_entry(
                entries[key], measure_pair(psdf, psm, key, engine=engine)
            )
            if drift:
                raise SegBusError(
                    f"refusing to pin {key}: the {engine} engine diverges "
                    f"from {ENGINE_NAMES[0]}:\n{drift}"
                )
    if not entries:
        raise SegBusError(f"no (psdf, psm) pairs found under {models_dir}")
    write_store(entries, store_path)
    return entries


def _diff_entry(pinned: GoldenEntry, measured: GoldenEntry) -> Optional[str]:
    """A readable drift description, or None when digests all match."""
    moved = [
        name
        for name, attr in (
            ("trace", "trace_digest"),
            ("timeline", "timeline_digest"),
            ("report", "report_digest"),
        )
        if getattr(pinned, attr) != getattr(measured, attr)
    ]
    if not moved:
        return None
    lines = [f"  {pinned.key}: {', '.join(moved)} digest(s) drifted"]
    if pinned.events != measured.events:
        lines.append(
            f"      events: {pinned.events} -> {measured.events}"
        )
    kinds = sorted(set(pinned.kind_counts) | set(measured.kind_counts))
    for kind in kinds:
        before = pinned.kind_counts.get(kind, 0)
        after = measured.kind_counts.get(kind, 0)
        if before != after:
            lines.append(f"      {kind}: {before} -> {after}")
    if pinned.execution_time_ps != measured.execution_time_ps:
        lines.append(
            f"      execution time: {pinned.execution_time_ps} ps -> "
            f"{measured.execution_time_ps} ps"
        )
    if len(lines) == 1:
        lines.append(
            "      counters identical at this granularity — event order or "
            "payload changed; diff the canonical trace lines of the two "
            "builds to localize it"
        )
    lines.append(
        "      intentional? re-pin with `segbus selftest --update-golden` "
        "and justify in EXPERIMENTS.md"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# workload scenarios: the same store machinery over the named catalog
# ---------------------------------------------------------------------------


def measure_workload(name: str, engine: str = "stepped") -> GoldenEntry:
    """Run one named scenario with a tracer and digest everything.

    Single-mode scenarios digest exactly like :func:`measure_pair`;
    multi-mode scenarios pin the *composed*
    :class:`~repro.emulator.multimode.MultiModeReport` digests, so a
    drift in any per-mode run, the phase resolution, or the transition
    accounting trips the check.
    """
    # lazy: the workload catalog pulls in the generators (numpy + lint)
    from repro.apps.workloads import workload_model

    workload = workload_model(name)
    if workload.is_multimode:
        from repro.emulator.multimode import run_multimode

        composed = run_multimode(
            workload.application, workload.platform, engine=engine
        )
        return GoldenEntry(
            key=name,
            trace_digest=composed.trace_digest(),
            timeline_digest=composed.timeline_digest(),
            report_digest=composed.report_digest(),
            events=composed.total_events,
            kind_counts=composed.kind_counts(),
            execution_time_ps=composed.execution_time_ps,
        )
    spec = PlatformSpec.from_platform(workload.platform)
    tracer = Tracer()
    sim = simulation_class(engine)(
        workload.application, spec, tracer=tracer
    ).run()
    report = build_report(sim)
    return GoldenEntry(
        key=name,
        trace_digest=tracer.digest(),
        timeline_digest=report.timeline.digest(),
        report_digest=report.digest(),
        events=len(tracer),
        kind_counts=tracer.kind_counts(),
        execution_time_ps=fs_to_ps(sim.execution_time_fs()),
    )


def update_workload_goldens(
    store_path: Union[str, Path] = DEFAULT_WORKLOAD_STORE,
    names: Tuple[str, ...] = WORKLOAD_GOLDEN_NAMES,
) -> Dict[str, GoldenEntry]:
    """Re-measure the named scenarios and (re)write their store.

    Same refuse-to-pin discipline as :func:`update_goldens`: if any
    engine diverges from the stepped reference on any scenario —
    including on the composed multi-mode digests — nothing is written.
    """
    entries: Dict[str, GoldenEntry] = {}
    for name in names:
        entries[name] = measure_workload(name)
        for engine in ENGINE_NAMES[1:]:
            drift = _diff_entry(
                entries[name], measure_workload(name, engine=engine)
            )
            if drift:
                raise SegBusError(
                    f"refusing to pin workload {name}: the {engine} engine "
                    f"diverges from {ENGINE_NAMES[0]}:\n{drift}"
                )
    write_store(entries, store_path)
    return entries


def check_workload_goldens(
    store_path: Union[str, Path] = DEFAULT_WORKLOAD_STORE,
    names: Tuple[str, ...] = WORKLOAD_GOLDEN_NAMES,
    engines: Tuple[str, ...] = ENGINE_NAMES,
) -> GoldenCheck:
    """Compare the named scenarios against their pinned store, per engine."""
    store = load_store(store_path)
    check = GoldenCheck()
    seen = set()
    for name in names:
        seen.add(name)
        pinned = store.get(name)
        if pinned is None:
            check.unpinned.append(name)
            continue
        for engine in engines:
            check.checked += 1
            drift = _diff_entry(
                pinned, measure_workload(name, engine=engine)
            )
            if drift:
                check.drifts.append(
                    drift.replace(
                        f"  {name}:", f"  {name} [{engine} engine]:", 1
                    )
                )
    check.missing.extend(sorted(set(store) - seen))
    return check


def check_goldens(
    models_dir: Union[str, Path] = DEFAULT_MODELS_DIR,
    store_path: Union[str, Path] = DEFAULT_STORE,
    engines: Tuple[str, ...] = ENGINE_NAMES,
) -> GoldenCheck:
    """Compare every pair against the pinned store, once per engine.

    The store holds a single set of digests per pair; every engine in
    ``engines`` must reproduce them exactly, so the same pins catch drift
    in the stepped kernel, the fast kernel, the batch kernel, or any
    combination — the matrix is pairs x engines.
    """
    store = load_store(store_path)
    check = GoldenCheck()
    seen = set()
    for key, psdf, psm in discover_pairs(models_dir):
        seen.add(key)
        pinned = store.get(key)
        if pinned is None:
            check.unpinned.append(key)
            continue
        for engine in engines:
            check.checked += 1
            drift = _diff_entry(
                pinned, measure_pair(psdf, psm, key, engine=engine)
            )
            if drift:
                check.drifts.append(
                    drift.replace(
                        f"  {key}:", f"  {key} [{engine} engine]:", 1
                    )
                )
    check.missing.extend(sorted(set(store) - seen))
    return check
