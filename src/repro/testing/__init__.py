"""Conformance harness: random model generators, differential oracles,
golden-trace pinning, and the headless perf-regression bench.

Entry points:

* :func:`repro.testing.generators.generate_model` — seeded, lint-clean
  random (application, platform) pairs.
* :func:`repro.testing.oracles.run_differential_oracle` — one model
  through the emulator plus every independent invariant.
* :func:`repro.testing.golden.check_goldens` — digest drift detection
  over ``examples/models/``.
* :func:`repro.testing.bench.run_bench` / ``check_bench`` — headless
  perf scenarios against committed ``BENCH_*.json`` baselines.
* :func:`repro.testing.selftest.run_selftest` — the ``segbus selftest``
  orchestration of all of the above.
"""

from repro.testing.generators import (
    ADVERSARIAL_SHAPES,
    DEFAULT_PROFILE,
    GenerationError,
    GeneratorProfile,
    RandomModel,
    RandomMultiModeModel,
    generate_adversarial_model,
    generate_model,
    generate_models,
    generate_multimode_model,
)
from repro.testing.oracles import (
    OracleReport,
    OracleTolerance,
    run_differential_oracle,
    run_multimode_oracle,
)

__all__ = [
    "ADVERSARIAL_SHAPES",
    "DEFAULT_PROFILE",
    "GenerationError",
    "GeneratorProfile",
    "OracleReport",
    "OracleTolerance",
    "RandomModel",
    "RandomMultiModeModel",
    "generate_adversarial_model",
    "generate_model",
    "generate_models",
    "generate_multimode_model",
    "run_differential_oracle",
    "run_multimode_oracle",
]
