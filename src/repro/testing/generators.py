"""Seeded random generators for complete, lint-clean SegBus models.

The conformance harness needs a stream of *valid* inputs: PSDF graphs,
platform models and mappings that the static analyzer (``segbus lint``)
accepts without warnings, yet that vary enough in shape — segment counts,
package sizes, clock plans, fan-out, inter-segment traffic — to exercise
the emulator's arbitration, circuit and BU machinery.  One seed always
yields one model; the differential oracle (:mod:`repro.testing.oracles`)
and ``segbus selftest`` are built on that reproducibility.

Construction strategy (per candidate):

* a layered random DAG in topological index order; every flow gets a
  *unique* transfer order ``T`` numbered contiguously by source depth, so
  the transfer-order rules (SB207/SB208/SB209) and the concurrency hazard
  rules (SB301/SB302) hold by construction;
* data volumes are multiples of the chosen package size (no padding,
  SB212) and production costs ``C`` are several package-times long, which
  keeps segments computation-bound (SB220/SB221);
* placement cuts the topological order into contiguous segment blocks, so
  inter-segment traffic flows forward over the linear topology.

Because some rule (typically a bandwidth-saturation bound) can still fire
on an unlucky draw, the generator *verifies* each candidate with the real
rule engine and deterministically re-draws (``seed``, ``attempt``) until
the lint report is clean — so "generated" implies "lint-passing" by
checked construction, not by hope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import SegBusError
from repro.model.elements import SegBusPlatform
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import ModeSchedule, MultiModeApplication, TransitionSpec


class GenerationError(SegBusError):
    """No lint-clean model could be drawn for a seed within the attempt cap."""


@dataclass(frozen=True)
class RandomModel:
    """One generated (application, platform) pair plus its provenance."""

    seed: int
    application: PSDFGraph
    platform: SegBusPlatform
    attempts: int

    @property
    def label(self) -> str:
        return (
            f"seed={self.seed} app={self.application.name} "
            f"segments={self.platform.segment_count} "
            f"s={self.platform.package_size}"
        )


@dataclass(frozen=True)
class GeneratorProfile:
    """The knobs of the random-model family (defaults are selftest's)."""

    min_processes: int = 4
    max_processes: int = 9
    max_segments: int = 3
    package_sizes: Tuple[int, ...] = (9, 18, 36)
    max_packages_per_flow: int = 4
    extra_edge_probability: float = 0.3
    min_frequency_mhz: int = 60
    max_frequency_mhz: int = 140
    max_attempts: int = 64


DEFAULT_PROFILE = GeneratorProfile()


def generate_model(
    seed: int, profile: GeneratorProfile = DEFAULT_PROFILE
) -> RandomModel:
    """Draw the lint-clean model of ``seed`` (deterministic, verified).

    Candidates are drawn from ``default_rng((seed, attempt))`` and checked
    against the full default rule registry; the first candidate whose lint
    exit code is 0 (no errors, no warnings) wins.  Raises
    :class:`GenerationError` if ``profile.max_attempts`` candidates all
    trip a rule — with the defaults this is astronomically unlikely and
    indicates a generator/rule-engine drift worth investigating.
    """
    from repro.lint import lint_models

    for attempt in range(profile.max_attempts):
        rng = np.random.default_rng((seed, attempt))
        application, platform = _candidate(rng, profile)
        report = lint_models(application=application, platform=platform)
        if report.exit_code == 0:
            return RandomModel(
                seed=seed,
                application=application,
                platform=platform,
                attempts=attempt + 1,
            )
    raise GenerationError(
        f"seed {seed}: no lint-clean model in {profile.max_attempts} attempts"
    )


def generate_models(
    count: int,
    base_seed: int = 1,
    profile: GeneratorProfile = DEFAULT_PROFILE,
) -> Iterator[RandomModel]:
    """Yield ``count`` models for seeds ``base_seed .. base_seed+count-1``."""
    for offset in range(count):
        yield generate_model(base_seed + offset, profile)


# ---------------------------------------------------------------------------
# candidate construction
# ---------------------------------------------------------------------------


def _candidate(
    rng: np.random.Generator, profile: GeneratorProfile
) -> Tuple[PSDFGraph, SegBusPlatform]:
    processes = int(
        rng.integers(profile.min_processes, profile.max_processes + 1)
    )
    package_size = int(rng.choice(np.asarray(profile.package_sizes)))
    edges = _random_edges(rng, processes, package_size, profile)
    application = PSDFGraph.from_edges(
        edges, name=f"random_{processes}p"
    )
    allocation = _contiguous_allocation(rng, processes, profile)
    segment_count = allocation.segment_count
    frequencies = [
        float(
            rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 1)
        )
        for _ in range(segment_count)
    ]
    ca_frequency = float(
        rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 41)
    )
    psm = map_application(
        application,
        allocation,
        segment_frequencies_mhz=frequencies,
        ca_frequency_mhz=ca_frequency,
        package_size=package_size,
        name=f"SBP_random_{segment_count}seg",
    )
    return application, psm.platform


def _random_edges(
    rng: np.random.Generator,
    processes: int,
    package_size: int,
    profile: GeneratorProfile,
) -> List[Tuple[str, str, int, int, int]]:
    """A connected layered DAG over ``P0..Pn-1`` with unique contiguous T.

    Every flow's T exceeds the T of every flow into its source (flows are
    numbered by ascending source depth), so the schedule is feasible and
    free of ordering inversions; uniqueness rules out the same-T concurrency
    hazards statically.
    """
    links: List[Tuple[int, int]] = []
    for j in range(1, processes):
        # one mandatory predecessor guarantees connectivity; biasing it
        # toward the immediate predecessor keeps traffic pipeline-shaped
        if j == 1 or rng.random() < 0.5:
            i = j - 1
        else:
            i = int(rng.integers(0, j))
        links.append((i, j))
        for k in range(j):
            if k != i and rng.random() < profile.extra_edge_probability:
                links.append((k, j))

    depth = [0] * processes
    for i, j in sorted(links, key=lambda e: e[1]):
        depth[j] = max(depth[j], depth[i] + 1)

    ordered = sorted(links, key=lambda e: (depth[e[0]], e[0], e[1]))
    edges: List[Tuple[str, str, int, int, int]] = []
    for order, (i, j) in enumerate(ordered, start=1):
        data_items = package_size * int(
            rng.integers(1, profile.max_packages_per_flow + 1)
        )
        # C spans several package-times so production, not the bus, bounds
        # each segment (keeps the SB220/SB221 saturation rules quiet)
        ticks_per_package = int(rng.integers(3 * package_size, 12 * package_size))
        edges.append((f"P{i}", f"P{j}", data_items, order, ticks_per_package))
    return edges


# ---------------------------------------------------------------------------
# adversarial shapes
# ---------------------------------------------------------------------------

#: the named traffic shapes of :func:`generate_adversarial_model`
ADVERSARIAL_SHAPES = (
    "bursty",
    "adversarial_hot_segment",
    "long_tail",
    "pipelined_streaming",
)


def generate_adversarial_model(
    seed: int, shape: str, profile: GeneratorProfile = DEFAULT_PROFILE
) -> RandomModel:
    """Draw the lint-clean adversarial model of (``seed``, ``shape``).

    Each shape stresses one emulator mechanism the uniform random family
    rarely concentrates on — while staying lint-clean by the same
    verified-retry construction as :func:`generate_model`:

    * ``bursty`` — a chain whose links alternate single-package trickles
      with multi-package bursts, exercising SA back-to-back grants;
    * ``adversarial_hot_segment`` — a chain plus fan-in from the early
      processes onto the final one, which sits alone on the last segment,
      funnelling every flow through one BU;
    * ``long_tail`` — a chain with one oversized mid-chain transfer that
      dominates the schedule tail;
    * ``pipelined_streaming`` — a source feeding parallel branch chains
      that rejoin at a sink, the classic streaming split/merge.
    """
    from repro.lint import lint_models

    if shape not in ADVERSARIAL_SHAPES:
        raise SegBusError(
            f"unknown adversarial shape {shape!r}; "
            f"known: {', '.join(ADVERSARIAL_SHAPES)}"
        )
    for attempt in range(profile.max_attempts):
        rng = np.random.default_rng((seed, attempt))
        application, platform = _adversarial_candidate(rng, shape, profile)
        report = lint_models(application=application, platform=platform)
        if report.exit_code == 0:
            return RandomModel(
                seed=seed,
                application=application,
                platform=platform,
                attempts=attempt + 1,
            )
    raise GenerationError(
        f"seed {seed} shape {shape!r}: no lint-clean model in "
        f"{profile.max_attempts} attempts"
    )


def _adversarial_candidate(
    rng: np.random.Generator, shape: str, profile: GeneratorProfile
) -> Tuple[PSDFGraph, SegBusPlatform]:
    package_size = int(rng.choice(np.asarray(profile.package_sizes)))
    if shape == "bursty":
        processes = int(rng.integers(5, 9))
        links = [
            (i, i + 1, 1 if i % 2 == 0 else int(rng.integers(6, 10)))
            for i in range(processes - 1)
        ]
        allocation = _cut_allocation(rng, processes, int(rng.integers(2, 4)))
    elif shape == "adversarial_hot_segment":
        processes = int(rng.integers(5, 9))
        links = [
            (i, i + 1, int(rng.integers(1, 3))) for i in range(processes - 1)
        ]
        # fan-in: early processes also feed the final one directly, so every
        # flow funnels into the lone process on the last segment
        for i in range(processes - 2):
            if rng.random() < 0.6:
                links.append((i, processes - 1, int(rng.integers(1, 4))))
        allocation = Allocation.from_groups(
            [
                [f"P{i}" for i in range(processes - 1)],
                [f"P{processes - 1}"],
            ]
        )
    elif shape == "long_tail":
        processes = int(rng.integers(6, 10))
        heavy = int(rng.integers(2, processes - 2))
        links = [
            (i, i + 1, int(rng.integers(8, 13)) if i == heavy else 1)
            for i in range(processes - 1)
        ]
        allocation = _cut_allocation(rng, processes, int(rng.integers(2, 4)))
    elif shape == "pipelined_streaming":
        branches = int(rng.integers(2, 4))
        length = int(rng.integers(2, 4))
        links = []
        nxt = 1
        heads: List[int] = []
        for _ in range(branches):
            head = nxt
            links.append((0, head, int(rng.integers(1, 3))))
            for step in range(1, length):
                links.append(
                    (head + step - 1, head + step, int(rng.integers(1, 3)))
                )
            heads.append(head + length - 1)
            nxt = head + length
        sink = nxt
        for tail in heads:
            links.append((tail, sink, int(rng.integers(1, 3))))
        processes = sink + 1
        allocation = _cut_allocation(rng, processes, int(rng.integers(2, 4)))
    else:  # pragma: no cover - guarded by generate_adversarial_model
        raise SegBusError(f"unknown adversarial shape {shape!r}")

    application = PSDFGraph.from_edges(
        _links_to_edges(rng, links, package_size),
        name=f"{shape}_{processes}p",
    )
    segment_count = allocation.segment_count
    frequencies = [
        float(
            rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 1)
        )
        for _ in range(segment_count)
    ]
    ca_frequency = float(
        rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 41)
    )
    psm = map_application(
        application,
        allocation,
        segment_frequencies_mhz=frequencies,
        ca_frequency_mhz=ca_frequency,
        package_size=package_size,
        name=f"SBP_{shape}_{segment_count}seg",
    )
    return application, psm.platform


def _links_to_edges(
    rng: np.random.Generator,
    links: List[Tuple[int, int, int]],
    package_size: int,
) -> List[Tuple[str, str, int, int, int]]:
    """Assign contiguous depth-ordered T and pipeline-safe costs to links.

    Same ordering discipline as :func:`_random_edges`: flows are numbered
    by ascending source depth, so every flow's T exceeds the T of every
    flow into its source, and costs span several package-times to keep
    segments computation-bound.
    """
    depth: Dict[int, int] = {}
    for i, j, _ in sorted(links, key=lambda e: e[1]):
        depth.setdefault(i, 0)
        depth[j] = max(depth.get(j, 0), depth[i] + 1)
    ordered = sorted(links, key=lambda e: (depth[e[0]], e[0], e[1]))
    edges: List[Tuple[str, str, int, int, int]] = []
    for order, (i, j, packages) in enumerate(ordered, start=1):
        ticks_per_package = int(rng.integers(3 * package_size, 12 * package_size))
        edges.append(
            (
                f"P{i}",
                f"P{j}",
                packages * package_size,
                order,
                ticks_per_package,
            )
        )
    return edges


def _cut_allocation(
    rng: np.random.Generator, processes: int, segment_count: int
) -> Allocation:
    """Cut ``P0..Pn-1`` into exactly ``segment_count`` contiguous blocks."""
    segment_count = min(segment_count, processes)
    if segment_count == 1:
        return Allocation.from_groups([[f"P{i}" for i in range(processes)]])
    cuts = sorted(
        int(c)
        for c in rng.choice(
            np.arange(1, processes), size=segment_count - 1, replace=False
        )
    )
    bounds = [0, *cuts, processes]
    groups = [
        [f"P{i}" for i in range(bounds[b], bounds[b + 1])]
        for b in range(segment_count)
    ]
    return Allocation.from_groups(groups)


# ---------------------------------------------------------------------------
# multi-mode models
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RandomMultiModeModel:
    """One generated multi-mode application + shared platform + provenance."""

    seed: int
    application: MultiModeApplication
    platform: SegBusPlatform
    attempts: int

    @property
    def label(self) -> str:
        return (
            f"seed={self.seed} app={self.application.name} "
            f"modes={len(self.application.modes)} "
            f"phases={len(self.application.schedule.phases)} "
            f"segments={self.platform.segment_count} "
            f"s={self.platform.package_size}"
        )


def generate_multimode_model(
    seed: int,
    profile: GeneratorProfile = DEFAULT_PROFILE,
    min_modes: int = 2,
    max_modes: int = 4,
) -> RandomMultiModeModel:
    """Draw the lint-clean multi-mode application of ``seed``.

    Every mode's flow set spans the same process universe ``P0..Pn-1``
    (each drawn with :func:`_random_edges`, so each is connected on its
    own), sharing one platform: the mapping is built from the first mode
    and then every FU gains the master/slave devices the *other* modes'
    flow directions need.  The switch schedule covers every mode
    (:meth:`~repro.psdf.modes.ModeSchedule.seeded`), mixes dwell- and
    iteration-based switch points, and draws a small non-zero transition
    cost.  Candidates are verified with
    :func:`repro.lint.engine.lint_multimode` and re-drawn on the usual
    (``seed``, ``attempt``) ladder until clean.
    """
    from repro.lint import lint_multimode

    for attempt in range(profile.max_attempts):
        rng = np.random.default_rng((seed, attempt))
        model = _multimode_candidate(rng, profile, min_modes, max_modes)
        application, platform = model
        report = lint_multimode(application, platform=platform)
        if report.exit_code == 0:
            return RandomMultiModeModel(
                seed=seed,
                application=application,
                platform=platform,
                attempts=attempt + 1,
            )
    raise GenerationError(
        f"seed {seed}: no lint-clean multi-mode model in "
        f"{profile.max_attempts} attempts"
    )


def _multimode_candidate(
    rng: np.random.Generator,
    profile: GeneratorProfile,
    min_modes: int,
    max_modes: int,
) -> Tuple[MultiModeApplication, SegBusPlatform]:
    processes = int(
        rng.integers(profile.min_processes, profile.max_processes + 1)
    )
    package_size = int(rng.choice(np.asarray(profile.package_sizes)))
    mode_count = int(rng.integers(min_modes, max_modes + 1))
    modes: Dict[str, PSDFGraph] = {}
    for index in range(mode_count):
        edges = _random_edges(rng, processes, package_size, profile)
        modes[f"mode{index}"] = PSDFGraph.from_edges(
            edges, name=f"mode{index}_{processes}p"
        )

    allocation = _contiguous_allocation(rng, processes, profile)
    segment_count = allocation.segment_count
    frequencies = [
        float(
            rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 1)
        )
        for _ in range(segment_count)
    ]
    ca_frequency = float(
        rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 41)
    )
    psm = map_application(
        modes["mode0"],
        allocation,
        segment_frequencies_mhz=frequencies,
        ca_frequency_mhz=ca_frequency,
        package_size=package_size,
        name=f"SBP_multimode_{segment_count}seg",
    )
    platform = psm.platform
    # the mapping instantiated devices for mode0's flow directions only;
    # the other modes may drive a process the opposite way
    for graph in modes.values():
        for name in graph.process_names:
            fu = platform.fu_of_process(name)
            if graph.outgoing(name) and not fu.masters:
                fu.add_master()
            if graph.incoming(name) and not fu.slaves:
                fu.add_slave()

    transition = TransitionSpec(
        reconfig_ticks=int(rng.integers(0, 65)),
        flush_ticks_per_bu=int(rng.integers(0, 9)),
    )
    schedule = ModeSchedule.seeded(
        seed=int(rng.integers(0, 2**31)),
        mode_names=tuple(modes),
        phase_count=int(rng.integers(mode_count, mode_count + 3)),
        transition=transition,
        dwell_probability=0.25,
    )
    application = MultiModeApplication(
        name=f"multimode_{mode_count}x{processes}p",
        modes=modes,
        schedule=schedule,
    )
    return application, platform


def _contiguous_allocation(
    rng: np.random.Generator, processes: int, profile: GeneratorProfile
) -> Allocation:
    """Cut ``P0..Pn-1`` (topological order) into contiguous segment blocks."""
    max_segments = min(profile.max_segments, processes)
    segment_count = int(rng.integers(1, max_segments + 1))
    if segment_count == 1:
        return Allocation.from_groups([[f"P{i}" for i in range(processes)]])
    cuts = sorted(
        int(c)
        for c in rng.choice(
            np.arange(1, processes), size=segment_count - 1, replace=False
        )
    )
    bounds = [0, *cuts, processes]
    groups = [
        [f"P{i}" for i in range(bounds[b], bounds[b + 1])]
        for b in range(segment_count)
    ]
    return Allocation.from_groups(groups)
