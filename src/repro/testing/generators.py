"""Seeded random generators for complete, lint-clean SegBus models.

The conformance harness needs a stream of *valid* inputs: PSDF graphs,
platform models and mappings that the static analyzer (``segbus lint``)
accepts without warnings, yet that vary enough in shape — segment counts,
package sizes, clock plans, fan-out, inter-segment traffic — to exercise
the emulator's arbitration, circuit and BU machinery.  One seed always
yields one model; the differential oracle (:mod:`repro.testing.oracles`)
and ``segbus selftest`` are built on that reproducibility.

Construction strategy (per candidate):

* a layered random DAG in topological index order; every flow gets a
  *unique* transfer order ``T`` numbered contiguously by source depth, so
  the transfer-order rules (SB207/SB208/SB209) and the concurrency hazard
  rules (SB301/SB302) hold by construction;
* data volumes are multiples of the chosen package size (no padding,
  SB212) and production costs ``C`` are several package-times long, which
  keeps segments computation-bound (SB220/SB221);
* placement cuts the topological order into contiguous segment blocks, so
  inter-segment traffic flows forward over the linear topology.

Because some rule (typically a bandwidth-saturation bound) can still fire
on an unlucky draw, the generator *verifies* each candidate with the real
rule engine and deterministically re-draws (``seed``, ``attempt``) until
the lint report is clean — so "generated" implies "lint-passing" by
checked construction, not by hope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import SegBusError
from repro.model.elements import SegBusPlatform
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph


class GenerationError(SegBusError):
    """No lint-clean model could be drawn for a seed within the attempt cap."""


@dataclass(frozen=True)
class RandomModel:
    """One generated (application, platform) pair plus its provenance."""

    seed: int
    application: PSDFGraph
    platform: SegBusPlatform
    attempts: int

    @property
    def label(self) -> str:
        return (
            f"seed={self.seed} app={self.application.name} "
            f"segments={self.platform.segment_count} "
            f"s={self.platform.package_size}"
        )


@dataclass(frozen=True)
class GeneratorProfile:
    """The knobs of the random-model family (defaults are selftest's)."""

    min_processes: int = 4
    max_processes: int = 9
    max_segments: int = 3
    package_sizes: Tuple[int, ...] = (9, 18, 36)
    max_packages_per_flow: int = 4
    extra_edge_probability: float = 0.3
    min_frequency_mhz: int = 60
    max_frequency_mhz: int = 140
    max_attempts: int = 64


DEFAULT_PROFILE = GeneratorProfile()


def generate_model(
    seed: int, profile: GeneratorProfile = DEFAULT_PROFILE
) -> RandomModel:
    """Draw the lint-clean model of ``seed`` (deterministic, verified).

    Candidates are drawn from ``default_rng((seed, attempt))`` and checked
    against the full default rule registry; the first candidate whose lint
    exit code is 0 (no errors, no warnings) wins.  Raises
    :class:`GenerationError` if ``profile.max_attempts`` candidates all
    trip a rule — with the defaults this is astronomically unlikely and
    indicates a generator/rule-engine drift worth investigating.
    """
    from repro.lint import lint_models

    for attempt in range(profile.max_attempts):
        rng = np.random.default_rng((seed, attempt))
        application, platform = _candidate(rng, profile)
        report = lint_models(application=application, platform=platform)
        if report.exit_code == 0:
            return RandomModel(
                seed=seed,
                application=application,
                platform=platform,
                attempts=attempt + 1,
            )
    raise GenerationError(
        f"seed {seed}: no lint-clean model in {profile.max_attempts} attempts"
    )


def generate_models(
    count: int,
    base_seed: int = 1,
    profile: GeneratorProfile = DEFAULT_PROFILE,
) -> Iterator[RandomModel]:
    """Yield ``count`` models for seeds ``base_seed .. base_seed+count-1``."""
    for offset in range(count):
        yield generate_model(base_seed + offset, profile)


# ---------------------------------------------------------------------------
# candidate construction
# ---------------------------------------------------------------------------


def _candidate(
    rng: np.random.Generator, profile: GeneratorProfile
) -> Tuple[PSDFGraph, SegBusPlatform]:
    processes = int(
        rng.integers(profile.min_processes, profile.max_processes + 1)
    )
    package_size = int(rng.choice(np.asarray(profile.package_sizes)))
    edges = _random_edges(rng, processes, package_size, profile)
    application = PSDFGraph.from_edges(
        edges, name=f"random_{processes}p"
    )
    allocation = _contiguous_allocation(rng, processes, profile)
    segment_count = allocation.segment_count
    frequencies = [
        float(
            rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 1)
        )
        for _ in range(segment_count)
    ]
    ca_frequency = float(
        rng.integers(profile.min_frequency_mhz, profile.max_frequency_mhz + 41)
    )
    psm = map_application(
        application,
        allocation,
        segment_frequencies_mhz=frequencies,
        ca_frequency_mhz=ca_frequency,
        package_size=package_size,
        name=f"SBP_random_{segment_count}seg",
    )
    return application, psm.platform


def _random_edges(
    rng: np.random.Generator,
    processes: int,
    package_size: int,
    profile: GeneratorProfile,
) -> List[Tuple[str, str, int, int, int]]:
    """A connected layered DAG over ``P0..Pn-1`` with unique contiguous T.

    Every flow's T exceeds the T of every flow into its source (flows are
    numbered by ascending source depth), so the schedule is feasible and
    free of ordering inversions; uniqueness rules out the same-T concurrency
    hazards statically.
    """
    links: List[Tuple[int, int]] = []
    for j in range(1, processes):
        # one mandatory predecessor guarantees connectivity; biasing it
        # toward the immediate predecessor keeps traffic pipeline-shaped
        if j == 1 or rng.random() < 0.5:
            i = j - 1
        else:
            i = int(rng.integers(0, j))
        links.append((i, j))
        for k in range(j):
            if k != i and rng.random() < profile.extra_edge_probability:
                links.append((k, j))

    depth = [0] * processes
    for i, j in sorted(links, key=lambda e: e[1]):
        depth[j] = max(depth[j], depth[i] + 1)

    ordered = sorted(links, key=lambda e: (depth[e[0]], e[0], e[1]))
    edges: List[Tuple[str, str, int, int, int]] = []
    for order, (i, j) in enumerate(ordered, start=1):
        data_items = package_size * int(
            rng.integers(1, profile.max_packages_per_flow + 1)
        )
        # C spans several package-times so production, not the bus, bounds
        # each segment (keeps the SB220/SB221 saturation rules quiet)
        ticks_per_package = int(rng.integers(3 * package_size, 12 * package_size))
        edges.append((f"P{i}", f"P{j}", data_items, order, ticks_per_package))
    return edges


def _contiguous_allocation(
    rng: np.random.Generator, processes: int, profile: GeneratorProfile
) -> Allocation:
    """Cut ``P0..Pn-1`` (topological order) into contiguous segment blocks."""
    max_segments = min(profile.max_segments, processes)
    segment_count = int(rng.integers(1, max_segments + 1))
    if segment_count == 1:
        return Allocation.from_groups([[f"P{i}" for i in range(processes)]])
    cuts = sorted(
        int(c)
        for c in rng.choice(
            np.arange(1, processes), size=segment_count - 1, replace=False
        )
    )
    bounds = [0, *cuts, processes]
    groups = [
        [f"P{i}" for i in range(bounds[b], bounds[b + 1])]
        for b in range(segment_count)
    ]
    return Allocation.from_groups(groups)
