"""Chaos harness: seeded worker kills, stalls, poisoned jobs, SIGTERM.

The supervised executor (:mod:`repro.analysis.executor`) claims four
properties — worker-crash recovery, per-job timeout enforcement, graceful
degradation on poisoned jobs, and crash-safe checkpoint/resume.  This
module *attacks* all four, with the same seeded-determinism discipline
the fault injector follows: every hazard decision is one draw from a
:class:`repro.faults.prng.DeterministicStream` keyed on
``(seed, label, attempt)``, so a chaotic run is exactly reproducible and
adding a hazard never perturbs the draws of the others.

A :class:`ChaosPlan` is either built directly (tests) or parsed from the
``SEGBUS_CHAOS`` environment variable (how the chaos suite reaches a
``segbus`` subprocess)::

    SEGBUS_CHAOS="seed=7,kill=0.2,stall=0.1,stall_s=30,interrupt_after=3"
    SEGBUS_CHAOS="kill_on=s18:1;s36:2,poison_labels=bad"

Hazards, decided per ``(job label, attempt)`` in fixed order:

``kill``     the worker SIGKILLs itself mid-job (crash recovery path);
``stall``    the worker sleeps ``stall_s`` (timeout/kill path);
``poison``   the job raises :class:`ChaosPoisonError` — with
             ``poison_labels`` it raises on *every* attempt, exhausting
             retries and landing in the failure ledger;
``interrupt_after``
             after N newly completed jobs the supervisor sends itself a
             real SIGTERM (mid-campaign interruption + resume path).

Because the hazards wrap the runner *outside* the job function, the job
results themselves are untouched: a chaotic campaign that completes must
be byte-identical to a calm one — the equivalence gate in
``tests/testing/test_chaos.py`` pins exactly that.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.errors import SegBusError
from repro.faults.prng import DeterministicStream

#: hazard identifiers, in decision order
KILL, STALL, POISON = "kill", "stall", "poison"


class ChaosConfigError(SegBusError):
    """A chaos spec (env var or constructor) is malformed."""


class ChaosPoisonError(RuntimeError):
    """The chaos plan poisoned this (label, attempt) combination."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic hazard schedule for one campaign.

    ``kill_rate``/``stall_rate``/``poison_rate`` are Bernoulli rates per
    (label, attempt); ``kill_on``/``stall_on``/``poison_on`` pin exact
    ``"label:attempt"`` combinations (tests use these for precise
    scenarios); ``poison_labels`` poisons every attempt of the named
    jobs — the canonical "poisoned job" that must surface in the
    failure ledger without aborting the batch.
    """

    seed: int = 1
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    poison_rate: float = 0.0
    stall_s: float = 3600.0
    kill_on: Tuple[str, ...] = ()
    stall_on: Tuple[str, ...] = ()
    poison_on: Tuple[str, ...] = ()
    poison_labels: Tuple[str, ...] = ()
    interrupt_after: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("kill_rate", "stall_rate", "poison_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ChaosConfigError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.stall_s < 0:
            raise ChaosConfigError("stall_s must be non-negative")
        if self.interrupt_after is not None and self.interrupt_after < 1:
            raise ChaosConfigError("interrupt_after must be >= 1 (or None)")

    @property
    def active(self) -> bool:
        """True when any worker-side hazard can fire."""
        return bool(
            self.kill_rate
            or self.stall_rate
            or self.poison_rate
            or self.kill_on
            or self.stall_on
            or self.poison_on
            or self.poison_labels
        )

    def decide(self, label: str, attempt: int) -> Optional[str]:
        """The hazard for this (label, attempt), or None.

        Pinned combinations win over rates; rates draw once per hazard
        in fixed order from a private stream, so enabling ``stall``
        never changes which attempts ``kill`` hits.
        """
        key = f"{label}:{attempt}"
        if label in self.poison_labels or key in self.poison_on:
            return POISON
        if key in self.kill_on:
            return KILL
        if key in self.stall_on:
            return STALL
        stream = DeterministicStream(
            self.seed, "chaos", str(label), str(int(attempt))
        )
        kill = stream.chance(self.kill_rate)
        stall = stream.chance(self.stall_rate)
        poison = stream.chance(self.poison_rate)
        if kill:
            return KILL
        if stall:
            return STALL
        if poison:
            return POISON
        return None

    # -- environment round-trip ----------------------------------------------

    ENV_VAR = "SEGBUS_CHAOS"

    @classmethod
    def from_env(cls, text: Optional[str] = None) -> Optional["ChaosPlan"]:
        """Parse ``SEGBUS_CHAOS`` (or ``text``); None when unset/empty."""
        if text is None:
            text = os.environ.get(cls.ENV_VAR, "")
        text = text.strip()
        if not text:
            return None
        values: dict = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ChaosConfigError(
                    f"chaos spec entry {item!r} is not key=value"
                )
            key, raw = (part.strip() for part in item.split("=", 1))
            if key in ("seed", "interrupt_after"):
                values[key] = int(raw)
            elif key in ("kill", "stall", "poison"):
                values[f"{key}_rate"] = float(raw)
            elif key == "stall_s":
                values[key] = float(raw)
            elif key in ("kill_on", "stall_on", "poison_on", "poison_labels"):
                values[key] = tuple(
                    entry for entry in raw.split(";") if entry
                )
            else:
                raise ChaosConfigError(
                    f"unknown chaos spec key {key!r} "
                    "(expected seed, kill, stall, poison, stall_s, "
                    "kill_on, stall_on, poison_on, poison_labels, "
                    "interrupt_after)"
                )
        return cls(**values)

    def to_env(self) -> str:
        """The spec string that :meth:`from_env` parses back to this plan."""
        parts = [f"seed={self.seed}"]
        if self.kill_rate:
            parts.append(f"kill={self.kill_rate}")
        if self.stall_rate:
            parts.append(f"stall={self.stall_rate}")
        if self.poison_rate:
            parts.append(f"poison={self.poison_rate}")
        if self.stall_s != 3600.0:
            parts.append(f"stall_s={self.stall_s}")
        for name in ("kill_on", "stall_on", "poison_on", "poison_labels"):
            entries = getattr(self, name)
            if entries:
                parts.append(f"{name}={';'.join(entries)}")
        if self.interrupt_after is not None:
            parts.append(f"interrupt_after={self.interrupt_after}")
        return ",".join(parts)


def chaotic_call(
    runner: Callable[[object], object],
    plan: ChaosPlan,
    attempt: int,
    job: object,
) -> object:
    """Apply the plan's hazard for this attempt, then run the job.

    Executed *inside the worker process* (the executor wraps each
    assignment with ``functools.partial``): ``kill`` SIGKILLs the
    worker itself — the supervisor sees a genuine dead process, not a
    simulated one.
    """
    label = str(getattr(job, "label", job))
    hazard = plan.decide(label, attempt)
    if hazard == KILL:  # pragma: no cover - dies before reporting
        os.kill(os.getpid(), signal.SIGKILL)
    elif hazard == STALL:  # pragma: no cover - killed by the supervisor
        time.sleep(plan.stall_s)
    elif hazard == POISON:
        raise ChaosPoisonError(
            f"chaos poisoned {label!r} (attempt {attempt})"
        )
    return runner(job)


# ---------------------------------------------------------------------------
# probe jobs: tiny deterministic work for exercising the executor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProbeJob:
    """A trivial deterministic job for chaos/executor tests.

    ``sleep_s`` simulates genuinely slow work (every attempt), and
    ``fail_attempts`` raises on the listed attempt numbers — but the
    *attempt-aware* behaviours are normally injected via
    :class:`ChaosPlan`, keeping the job itself pure.
    """

    label: str
    value: int = 0
    sleep_s: float = 0.0
    fail: bool = False

    def digest(self) -> str:
        payload = f"probe|{self.label}|{self.value}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


def run_probe(job: ProbeJob) -> dict:
    """The module-level (picklable) runner for :class:`ProbeJob`."""
    if job.sleep_s:
        time.sleep(job.sleep_s)  # pragma: no cover - killed mid-sleep
    if job.fail:
        raise ValueError(f"probe {job.label} always fails")
    digest = hashlib.sha256(
        f"{job.label}:{job.value}".encode("utf-8")
    ).hexdigest()
    return {"label": job.label, "value": job.value * 2, "digest": digest}


__all__ = [
    "ChaosConfigError",
    "ChaosPlan",
    "ChaosPoisonError",
    "ProbeJob",
    "chaotic_call",
    "run_probe",
]
