"""``segbus selftest``: the conformance harness' one-shot entry point.

Two stages, both deterministic:

1. **Differential fuzzing** — generate ``count`` seeded lint-clean models
   (:mod:`repro.testing.generators`) and push each through the matching
   oracle (:mod:`repro.testing.oracles`).  The corpus cycles through
   *families* (:data:`FAMILY_CYCLE`): half uniform random models, one of
   each adversarial shape (bursty, hot-segment, long-tail, pipelined
   streaming), and one random multi-mode application per ten seeds — the
   multi-mode jobs run the MODE battery
   (:func:`~repro.testing.oracles.run_multimode_oracle`), everything else
   the single-mode differential oracle.  Any violation of the analytic
   bounds, the total-time law, TCT monotonicity, package conservation,
   engine equivalence (ENG-1 runs every model through the stepped, fast
   *and* batch kernels and compares digests), or protocol conformance
   fails the selftest with the model's seed and family (re-run the
   matching ``generate_*`` function to reproduce it alone).
2. **Golden traces** — re-emulate every ``examples/models/`` pair *and*
   every pinned workload scenario (including the composed multi-mode
   digests of ``mp3_jpeg_multimode``) with *every* engine and compare
   trace/timeline/report digests against the pinned stores
   (:mod:`repro.testing.golden`).

The default ``count`` is 200 (the conformance bar); ``--quick`` drops to
25 for CI smoke runs.  Exit code 0 means fully conformant, 1 means at
least one divergence or drift.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    canonical_digest,
)
from repro.testing.generators import (
    ADVERSARIAL_SHAPES,
    DEFAULT_PROFILE,
    GenerationError,
    GeneratorProfile,
    generate_adversarial_model,
    generate_model,
    generate_multimode_model,
)
from repro.testing.golden import (
    DEFAULT_MODELS_DIR,
    DEFAULT_STORE,
    DEFAULT_WORKLOAD_STORE,
    GoldenCheck,
    check_goldens,
    check_workload_goldens,
    update_goldens,
    update_workload_goldens,
)
from repro.testing.oracles import (
    OracleTolerance,
    run_differential_oracle,
    run_multimode_oracle,
)

DEFAULT_COUNT = 200
QUICK_COUNT = 25

#: family of the job at seed offset ``i`` (cycled): half uniform random,
#: one of each adversarial shape, one multi-mode per ten seeds
FAMILY_CYCLE = ("random",) * 5 + ADVERSARIAL_SHAPES + ("multimode",)


@dataclass(frozen=True)
class _FuzzJob:
    """One seeded generate-and-oracle round, picklable for the executor.

    ``engine`` is the *resolved* oracle engine (the parent folds in
    ``SEGBUS_ENGINE``) so the checkpoint digest cannot silently replay a
    result produced under a different kernel.
    """

    seed: int
    profile: GeneratorProfile
    tolerance: OracleTolerance
    engine: Optional[str]
    family: str = "random"

    @property
    def label(self) -> str:
        return f"fuzz:{self.family}#{self.seed}"

    def digest(self) -> str:
        return canonical_digest(
            self.seed,
            self.profile,
            self.tolerance,
            self.engine or "",
            self.family,
        )


def _run_fuzz_job(job: _FuzzJob) -> Dict[str, object]:
    """Generate one model and run its family's oracle (worker-side)."""
    try:
        if job.family == "multimode":
            model = generate_multimode_model(job.seed, job.profile)
        elif job.family in ADVERSARIAL_SHAPES:
            model = generate_adversarial_model(
                job.seed, job.family, job.profile
            )
        else:
            model = generate_model(job.seed, job.profile)
    except GenerationError as exc:
        return {"generated": False, "failure": f"[GEN] {exc}"}
    if job.family == "multimode":
        oracle = run_multimode_oracle(
            model.application,
            model.platform,
            tolerance=job.tolerance,
            label=model.label,
            engine=job.engine,
        )
    else:
        oracle = run_differential_oracle(
            model.application,
            model.platform,
            tolerance=job.tolerance,
            label=model.label,
            engine=job.engine,
        )
    return {
        "generated": True,
        "checked": oracle.checked,
        "ok": oracle.ok,
        "failure": None if oracle.ok else oracle.format(),
    }


@dataclass
class SelftestReport:
    """Aggregated outcome of one selftest run."""

    models: int = 0
    divergent: int = 0
    checks: int = 0
    failures: List[str] = field(default_factory=list)
    golden: Optional[GoldenCheck] = None
    workload_golden: Optional[GoldenCheck] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        if self.failures:
            return False
        if self.golden is not None and not self.golden.ok:
            return False
        return self.workload_golden is None or self.workload_golden.ok

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def format(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"selftest {verdict}: {self.models} random model(s), "
            f"{self.divergent} divergent, {self.checks} oracle check(s), "
            f"{self.elapsed_s:.1f}s"
        ]
        lines.extend(f"  {item}" for item in self.failures)
        if self.golden is not None:
            lines.append(self.golden.format())
        if self.workload_golden is not None:
            lines.append(
                self.workload_golden.format().replace(
                    "golden traces:", "workload goldens:", 1
                )
            )
        return "\n".join(lines)


def run_selftest(
    count: int = DEFAULT_COUNT,
    base_seed: int = 1,
    profile: GeneratorProfile = DEFAULT_PROFILE,
    tolerance: OracleTolerance = OracleTolerance(),
    include_golden: bool = True,
    models_dir: Union[str, Path] = DEFAULT_MODELS_DIR,
    store_path: Union[str, Path] = DEFAULT_STORE,
    workload_store_path: Union[str, Path] = DEFAULT_WORKLOAD_STORE,
    update_golden: bool = False,
    progress=None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> SelftestReport:
    """Run the full conformance selftest; see the module docstring.

    ``progress`` is an optional ``callable(str)`` for incremental status
    lines (the CLI passes ``print``); ``update_golden`` re-pins the golden
    store instead of checking it.  ``engine`` names the primary oracle
    engine (default honours ``SEGBUS_ENGINE``) — the ENG-1 check and the
    golden stage cover every engine regardless.

    The fuzz stage runs through the supervised campaign executor:
    ``workers`` parallelizes the seeds, ``executor_policy`` adds per-seed
    timeout/retries, and ``checkpoint_dir``/``resume`` journal finished
    seeds so an interrupted selftest resumes without re-fuzzing — the
    report aggregates in seed order either way.
    """
    report = SelftestReport()
    started = time.perf_counter()

    resolved_engine = engine or os.environ.get("SEGBUS_ENGINE") or None
    jobs = [
        _FuzzJob(
            seed=base_seed + offset,
            profile=profile,
            tolerance=tolerance,
            engine=resolved_engine,
            family=FAMILY_CYCLE[offset % len(FAMILY_CYCLE)],
        )
        for offset in range(count)
    ]

    done = 0

    def _tick(_label: str, _outcome: object) -> None:
        nonlocal done
        done += 1
        if progress and done % 50 == 0:
            progress(f"  ... {done}/{count} models")

    executor = CampaignExecutor(
        _run_fuzz_job,
        policy=executor_policy,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name,
        resume=resume,
        on_result=_tick if progress else None,
    )
    batch = executor.run(jobs).raise_on_failure(what="selftest seed")

    for outcome in batch.results:
        if not outcome["generated"]:
            report.failures.append(outcome["failure"])
            continue
        report.models += 1
        report.checks += outcome["checked"]
        if not outcome["ok"]:
            report.divergent += 1
            report.failures.append(outcome["failure"])

    if update_golden:
        entries = update_goldens(models_dir, store_path)
        if progress:
            progress(
                f"golden traces: re-pinned {len(entries)} pair(s) "
                f"into {store_path}"
            )
        report.golden = check_goldens(models_dir, store_path)
        workload_entries = update_workload_goldens(workload_store_path)
        if progress:
            progress(
                f"workload goldens: re-pinned {len(workload_entries)} "
                f"scenario(s) into {workload_store_path}"
            )
        report.workload_golden = check_workload_goldens(workload_store_path)
    elif include_golden:
        report.golden = check_goldens(models_dir, store_path)
        report.workload_golden = check_workload_goldens(workload_store_path)

    report.elapsed_s = time.perf_counter() - started
    return report
