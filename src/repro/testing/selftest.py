"""``segbus selftest``: the conformance harness' one-shot entry point.

Two stages, both deterministic:

1. **Differential fuzzing** — generate ``count`` seeded lint-clean random
   models (:mod:`repro.testing.generators`) and push each through the
   differential oracle (:mod:`repro.testing.oracles`).  Any violation of
   the analytic bounds, the total-time law, TCT monotonicity, package
   conservation, engine equivalence (ENG-1 runs every model through the
   stepped, fast *and* batch kernels and compares digests), or protocol
   conformance fails the selftest with the model's seed (re-run
   ``generate_model(seed)`` to reproduce it alone).
2. **Golden traces** — re-emulate every ``examples/models/`` pair with
   *every* engine and compare trace/timeline/report digests against the
   pinned store (:mod:`repro.testing.golden`).

The default ``count`` is 200 (the conformance bar); ``--quick`` drops to
25 for CI smoke runs.  Exit code 0 means fully conformant, 1 means at
least one divergence or drift.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    canonical_digest,
)
from repro.testing.generators import (
    DEFAULT_PROFILE,
    GenerationError,
    GeneratorProfile,
    generate_model,
)
from repro.testing.golden import (
    DEFAULT_MODELS_DIR,
    DEFAULT_STORE,
    GoldenCheck,
    check_goldens,
    update_goldens,
)
from repro.testing.oracles import OracleTolerance, run_differential_oracle

DEFAULT_COUNT = 200
QUICK_COUNT = 25


@dataclass(frozen=True)
class _FuzzJob:
    """One seeded generate-and-oracle round, picklable for the executor.

    ``engine`` is the *resolved* oracle engine (the parent folds in
    ``SEGBUS_ENGINE``) so the checkpoint digest cannot silently replay a
    result produced under a different kernel.
    """

    seed: int
    profile: GeneratorProfile
    tolerance: OracleTolerance
    engine: Optional[str]

    @property
    def label(self) -> str:
        return f"fuzz#{self.seed}"

    def digest(self) -> str:
        return canonical_digest(
            self.seed, self.profile, self.tolerance, self.engine or ""
        )


def _run_fuzz_job(job: _FuzzJob) -> Dict[str, object]:
    """Generate one model and run the differential oracle (worker-side)."""
    try:
        model = generate_model(job.seed, job.profile)
    except GenerationError as exc:
        return {"generated": False, "failure": f"[GEN] {exc}"}
    oracle = run_differential_oracle(
        model.application,
        model.platform,
        tolerance=job.tolerance,
        label=model.label,
        engine=job.engine,
    )
    return {
        "generated": True,
        "checked": oracle.checked,
        "ok": oracle.ok,
        "failure": None if oracle.ok else oracle.format(),
    }


@dataclass
class SelftestReport:
    """Aggregated outcome of one selftest run."""

    models: int = 0
    divergent: int = 0
    checks: int = 0
    failures: List[str] = field(default_factory=list)
    golden: Optional[GoldenCheck] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        if self.failures:
            return False
        return self.golden is None or self.golden.ok

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def format(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"selftest {verdict}: {self.models} random model(s), "
            f"{self.divergent} divergent, {self.checks} oracle check(s), "
            f"{self.elapsed_s:.1f}s"
        ]
        lines.extend(f"  {item}" for item in self.failures)
        if self.golden is not None:
            lines.append(self.golden.format())
        return "\n".join(lines)


def run_selftest(
    count: int = DEFAULT_COUNT,
    base_seed: int = 1,
    profile: GeneratorProfile = DEFAULT_PROFILE,
    tolerance: OracleTolerance = OracleTolerance(),
    include_golden: bool = True,
    models_dir: Union[str, Path] = DEFAULT_MODELS_DIR,
    store_path: Union[str, Path] = DEFAULT_STORE,
    update_golden: bool = False,
    progress=None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> SelftestReport:
    """Run the full conformance selftest; see the module docstring.

    ``progress`` is an optional ``callable(str)`` for incremental status
    lines (the CLI passes ``print``); ``update_golden`` re-pins the golden
    store instead of checking it.  ``engine`` names the primary oracle
    engine (default honours ``SEGBUS_ENGINE``) — the ENG-1 check and the
    golden stage cover every engine regardless.

    The fuzz stage runs through the supervised campaign executor:
    ``workers`` parallelizes the seeds, ``executor_policy`` adds per-seed
    timeout/retries, and ``checkpoint_dir``/``resume`` journal finished
    seeds so an interrupted selftest resumes without re-fuzzing — the
    report aggregates in seed order either way.
    """
    report = SelftestReport()
    started = time.perf_counter()

    resolved_engine = engine or os.environ.get("SEGBUS_ENGINE") or None
    jobs = [
        _FuzzJob(
            seed=base_seed + offset,
            profile=profile,
            tolerance=tolerance,
            engine=resolved_engine,
        )
        for offset in range(count)
    ]

    done = 0

    def _tick(_label: str, _outcome: object) -> None:
        nonlocal done
        done += 1
        if progress and done % 50 == 0:
            progress(f"  ... {done}/{count} models")

    executor = CampaignExecutor(
        _run_fuzz_job,
        policy=executor_policy,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name,
        resume=resume,
        on_result=_tick if progress else None,
    )
    batch = executor.run(jobs).raise_on_failure(what="selftest seed")

    for outcome in batch.results:
        if not outcome["generated"]:
            report.failures.append(outcome["failure"])
            continue
        report.models += 1
        report.checks += outcome["checked"]
        if not outcome["ok"]:
            report.divergent += 1
            report.failures.append(outcome["failure"])

    if update_golden:
        entries = update_goldens(models_dir, store_path)
        if progress:
            progress(
                f"golden traces: re-pinned {len(entries)} pair(s) "
                f"into {store_path}"
            )
        report.golden = check_goldens(models_dir, store_path)
    elif include_golden:
        report.golden = check_goldens(models_dir, store_path)

    report.elapsed_s = time.perf_counter() - started
    return report
