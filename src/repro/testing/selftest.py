"""``segbus selftest``: the conformance harness' one-shot entry point.

Two stages, both deterministic:

1. **Differential fuzzing** — generate ``count`` seeded lint-clean random
   models (:mod:`repro.testing.generators`) and push each through the
   differential oracle (:mod:`repro.testing.oracles`).  Any violation of
   the analytic bounds, the total-time law, TCT monotonicity, package
   conservation, engine equivalence (ENG-1 runs every model through both
   the stepped and the fast kernel and compares digests), or protocol
   conformance fails the selftest with the model's seed (re-run
   ``generate_model(seed)`` to reproduce it alone).
2. **Golden traces** — re-emulate every ``examples/models/`` pair with
   *both* engines and compare trace/timeline/report digests against the
   pinned store (:mod:`repro.testing.golden`).

The default ``count`` is 200 (the conformance bar); ``--quick`` drops to
25 for CI smoke runs.  Exit code 0 means fully conformant, 1 means at
least one divergence or drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.testing.generators import (
    DEFAULT_PROFILE,
    GenerationError,
    GeneratorProfile,
    generate_model,
)
from repro.testing.golden import (
    DEFAULT_MODELS_DIR,
    DEFAULT_STORE,
    GoldenCheck,
    check_goldens,
    update_goldens,
)
from repro.testing.oracles import OracleTolerance, run_differential_oracle

DEFAULT_COUNT = 200
QUICK_COUNT = 25


@dataclass
class SelftestReport:
    """Aggregated outcome of one selftest run."""

    models: int = 0
    divergent: int = 0
    checks: int = 0
    failures: List[str] = field(default_factory=list)
    golden: Optional[GoldenCheck] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        if self.failures:
            return False
        return self.golden is None or self.golden.ok

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def format(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"selftest {verdict}: {self.models} random model(s), "
            f"{self.divergent} divergent, {self.checks} oracle check(s), "
            f"{self.elapsed_s:.1f}s"
        ]
        lines.extend(f"  {item}" for item in self.failures)
        if self.golden is not None:
            lines.append(self.golden.format())
        return "\n".join(lines)


def run_selftest(
    count: int = DEFAULT_COUNT,
    base_seed: int = 1,
    profile: GeneratorProfile = DEFAULT_PROFILE,
    tolerance: OracleTolerance = OracleTolerance(),
    include_golden: bool = True,
    models_dir: Union[str, Path] = DEFAULT_MODELS_DIR,
    store_path: Union[str, Path] = DEFAULT_STORE,
    update_golden: bool = False,
    progress=None,
    engine: Optional[str] = None,
) -> SelftestReport:
    """Run the full conformance selftest; see the module docstring.

    ``progress`` is an optional ``callable(str)`` for incremental status
    lines (the CLI passes ``print``); ``update_golden`` re-pins the golden
    store instead of checking it.  ``engine`` names the primary oracle
    engine (default honours ``SEGBUS_ENGINE``) — the ENG-1 check and the
    golden stage cover both engines regardless.
    """
    report = SelftestReport()
    started = time.perf_counter()

    for offset in range(count):
        seed = base_seed + offset
        try:
            model = generate_model(seed, profile)
        except GenerationError as exc:
            report.failures.append(f"[GEN] {exc}")
            continue
        report.models += 1
        oracle = run_differential_oracle(
            model.application,
            model.platform,
            tolerance=tolerance,
            label=model.label,
            engine=engine,
        )
        report.checks += oracle.checked
        if not oracle.ok:
            report.divergent += 1
            report.failures.append(oracle.format())
        if progress and (offset + 1) % 50 == 0:
            progress(
                f"  ... {offset + 1}/{count} models, "
                f"{report.divergent} divergent"
            )

    if update_golden:
        entries = update_goldens(models_dir, store_path)
        if progress:
            progress(
                f"golden traces: re-pinned {len(entries)} pair(s) "
                f"into {store_path}"
            )
        report.golden = check_goldens(models_dir, store_path)
    elif include_golden:
        report.golden = check_goldens(models_dir, store_path)

    report.elapsed_s = time.perf_counter() - started
    return report
