"""Headless perf-regression bench: deterministic ticks + wall-clock gates.

``benchmarks/`` holds the pytest-benchmark studies (tables, figures,
ablations) for humans; this module distills the same workloads into a
small registry of *headless* scenarios that ``segbus bench`` can run in
CI without pytest plugins.  Each scenario reports two things:

* **ticks** — deterministic workload counters (executed events, CA TCT,
  execution time in ps).  These must match the committed baseline
  *exactly*: a tick drift means the emulator's behaviour changed, which
  is either a bug or a change that must re-pin the baselines.
* **wall_ms / wall_median_ms** — the best and the median of ``repeats``
  wall-clock runs.  The gate compares median against median with a ratio
  (default 1.5×, so a genuine 2× slowdown fails): the best-of-N envelope
  fluctuates ~2× on busy hosts, but the median is a stable "typical
  cost" center on both sides.  Absolute wall time is machine-dependent;
  ``--no-wall`` skips the gate entirely for heterogeneous CI runners.

Emulation scenarios are *engine-aware* (see docs/PERFORMANCE.md): by
default each one is timed under every kernel — the cycle-stepped
reference, the event-driven fast kernel and the vectorized batch kernel
— the tick counters are asserted exact-equal across engines at run
time, and the result records a per-engine median plus **speedup** ratios
(stepped/fast and stepped/batch).  Scenarios may pin a ``speedup_min``
(``mp3_2seg_emulate`` demands ≥2.5x fast) and/or a ``speedup_min_batch``
(``faults_sweep`` demands ≥5x batch) which ``--check`` gates even under
``--no-wall`` — the ratios are taken on one host, so they are far more
machine-independent than absolute wall time.  ``--engine`` restricts
the measurement to a single engine (no speedups).

Since baseline **v3** each engine-aware result also records, per
engine: **throughput** (models/sec = ``models_per_round`` over the
median round), **tick-jitter percentiles** (p50/p90/p99 of the
per-round walls — how much identical deterministic rounds wobble on the
host), and the **peak traced memory** of one untimed round
(``tracemalloc``, KiB) — see docs/TESTING.md.  The ``faults_sweep``
scenario runs a whole reliability grid per engine, which is where the
batch kernel's aggregate-throughput win (one model construction, one
lockstep group, zero-hit cloning) is measured and gated.

Baselines live in ``benchmarks/baselines/BENCH_<scenario>.json`` and are
(re)written by ``segbus bench --update``.  ``--inject-slowdown N`` is a
self-test hook that multiplies the measured wall time — uniformly across
*every* engine's walls, so the wall gate trips no matter which engine
feeds it — used by the test suite to prove the gate actually trips.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.analytic import analytic_estimate
from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    canonical_digest,
)
from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.fastkernel import (
    ENGINE_NAMES,
    resolve_engine,
    simulation_class,
)
from repro.emulator.kernel import PlatformSpec
from repro.errors import SegBusError
from repro.units import fs_to_ps

BASELINE_VERSION = 3
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"
#: wall-clock gate: measured may be at most this multiple of the baseline
DEFAULT_WALL_RATIO_MAX = 1.5


@dataclass(frozen=True)
class BenchScenario:
    """One headless workload: ``run`` returns its deterministic ticks.

    ``prepare`` (when set) makes the workload engine-aware: called once
    per engine name with the model/spec setup *outside* the timed
    region, it returns the thunk the runner times — so the recorded wall
    and the speedup ratio measure the simulation kernels themselves, not
    XML parsing or platform construction.  The runner asserts the
    returned ticks are exact-equal across engines.  ``speedup_min`` pins
    a minimum stepped/fast ratio and ``speedup_min_batch`` a minimum
    stepped/batch ratio, both enforced by :func:`check_bench`.
    ``models_per_round`` is how many model instances one round of the
    thunk simulates — the denominator of the throughput metric.
    """

    name: str
    description: str
    run: Callable[[], Dict[str, int]]
    prepare: Optional[Callable[[str], Callable[[], Dict[str, int]]]] = None
    speedup_min: Optional[float] = None
    speedup_min_batch: Optional[float] = None
    models_per_round: int = 1
    #: when set, a *simulation-free* evaluation of the same workload
    #: (the stochastic estimator); timed interleaved with the engines as a
    #: pseudo-engine.  Its ticks are recorded under an ``est_`` prefix and
    #: exempt from the cross-engine equality assert (an estimate is not an
    #: emulation).  ``estimator_speedup_min`` pins batch-median /
    #: estimator-median, the harshest comparison available.
    prepare_estimator: Optional[Callable[[], Callable[[], Dict[str, int]]]] = None
    estimator_speedup_min: Optional[float] = None
    #: serving scenarios: called per engine *after* the timed rounds with
    #: the engine name, returns wall-side metrics of the last round
    #: (throughput, latency percentiles, cache hit rate) for the
    #: baseline's ``service`` block — recorded, not tick-gated
    service_metrics: Optional[Callable[[str], Dict[str, float]]] = None
    #: minimum cache hit rate (``reused``/``requests`` ticks), enforced by
    #: :func:`check_bench` even under ``--no-wall`` — the ratio is
    #: deterministic, not a wall measurement
    cache_hit_rate_min: Optional[float] = None


@dataclass(frozen=True)
class BenchResult:
    """Ticks plus best/median observed wall time for one scenario.

    ``engine_wall_ms`` maps engine name to its median wall time (empty
    for scenarios without an engine dimension); ``speedup`` is the
    stepped-median / fast-median ratio and ``batch_speedup`` the
    stepped-median / batch-median ratio, when the engines involved were
    measured.  Since v3, three per-engine metric maps ride along:
    ``throughput_models_per_s`` (models simulated per second of median
    round), ``jitter_ms`` (p50/p90/p99 of the per-round walls) and
    ``peak_mem_kb`` (tracemalloc peak of one untimed round, KiB).
    """

    name: str
    ticks: Dict[str, int]
    wall_ms: float
    wall_median_ms: float
    repeats: int
    engine_wall_ms: Dict[str, float] = field(default_factory=dict)
    speedup: Optional[float] = None
    batch_speedup: Optional[float] = None
    throughput_models_per_s: Dict[str, float] = field(default_factory=dict)
    jitter_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    peak_mem_kb: Dict[str, int] = field(default_factory=dict)
    #: stochastic-estimator pseudo-engine (scenarios with
    #: ``prepare_estimator`` only): median wall of the estimator pass and
    #: the batch-median / estimator-median per-round ratio
    estimator_wall_ms: Optional[float] = None
    estimator_speedup: Optional[float] = None
    #: serving scenarios only: per-engine wall-side metrics of the last
    #: timed round (throughput_rps, latency p50/p90/p99 ms, hit_rate)
    service: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "name": self.name,
            "ticks": dict(sorted(self.ticks.items())),
            "wall_ms": round(self.wall_ms, 3),
            "wall_median_ms": round(self.wall_median_ms, 3),
            "repeats": self.repeats,
            "engine_wall_ms": {
                k: round(v, 3) for k, v in sorted(self.engine_wall_ms.items())
            },
            "speedup": (
                round(self.speedup, 2) if self.speedup is not None else None
            ),
            "batch_speedup": (
                round(self.batch_speedup, 2)
                if self.batch_speedup is not None
                else None
            ),
            "throughput_models_per_s": {
                k: round(v, 2)
                for k, v in sorted(self.throughput_models_per_s.items())
            },
            "jitter_ms": {
                engine: {p: round(v, 3) for p, v in sorted(pcts.items())}
                for engine, pcts in sorted(self.jitter_ms.items())
            },
            "peak_mem_kb": dict(sorted(self.peak_mem_kb.items())),
            "estimator_wall_ms": (
                round(self.estimator_wall_ms, 3)
                if self.estimator_wall_ms is not None
                else None
            ),
            "estimator_speedup": (
                round(self.estimator_speedup, 2)
                if self.estimator_speedup is not None
                else None
            ),
            "service": {
                engine: {
                    metric: round(value, 3)
                    for metric, value in sorted(metrics.items())
                }
                for engine, metrics in sorted(self.service.items())
            },
        }


@dataclass
class BenchCheck:
    """Outcome of comparing results against the committed baselines."""

    failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [
            f"bench check: {self.checked} scenario(s), "
            + ("ok" if self.ok else f"{len(self.failures)} failure(s)")
        ]
        lines.extend(f"  FAIL {f}" for f in self.failures)
        lines.extend(f"  note {n}" for n in self.notes)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# scenario registry
# ---------------------------------------------------------------------------


def _emulate_runner(
    application, platform, engine: str
) -> Callable[[], Dict[str, int]]:
    """Build the model once; the returned thunk only exercises the kernel."""
    spec = PlatformSpec.from_platform(platform)
    cls = simulation_class(engine)

    def run() -> Dict[str, int]:
        sim = cls(application, spec).run()
        return {
            "events": sim.queue.executed,
            "ca_tct": sim.ca.counters.tct,
            "execution_time_ps": fs_to_ps(sim.execution_time_fs()),
        }

    return run


def _mp3_prepare(segment_count: int, engine: str) -> Callable[[], Dict[str, int]]:
    return _emulate_runner(
        mp3_decoder_psdf(), paper_platform(segment_count), engine
    )


def _jpeg_prepare(segment_count: int, engine: str) -> Callable[[], Dict[str, int]]:
    return _emulate_runner(
        jpeg_decoder_psdf(), jpeg_platform(segment_count), engine
    )


def _mp3_emulate(segment_count: int, engine: str = "fast") -> Dict[str, int]:
    return _mp3_prepare(segment_count, engine)()


def _jpeg_emulate(segment_count: int, engine: str = "fast") -> Dict[str, int]:
    return _jpeg_prepare(segment_count, engine)()


def _mp3_analytic() -> Dict[str, int]:
    application = mp3_decoder_psdf()
    spec = PlatformSpec.from_platform(paper_platform(3))
    estimate = analytic_estimate(application, spec)
    return {"execution_time_ps": fs_to_ps(estimate.execution_time_fs)}


def _sweep_prepare(engine: str) -> Callable[[], Dict[str, int]]:
    application = mp3_decoder_psdf()
    specs = {
        size: PlatformSpec.from_platform(paper_platform(3, package_size=size))
        for size in (9, 18, 36)
    }
    cls = simulation_class(engine)

    def run() -> Dict[str, int]:
        ticks: Dict[str, int] = {"events": 0}
        for size, spec in specs.items():
            sim = cls(application, spec).run()
            ticks["events"] += sim.queue.executed
            ticks[f"s{size}_execution_time_ps"] = fs_to_ps(
                sim.execution_time_fs()
            )
        return ticks

    return run


def _mp3_package_sweep(engine: str = "fast") -> Dict[str, int]:
    return _sweep_prepare(engine)()


#: the faults-sweep grid: 4 rates x 12 seeds + the fault-free baseline.
#: Low rates are the realistic regime *and* the one the batch kernel's
#: zero-hit clone path accelerates hardest — most members provably draw
#: no fault and are cloned from the group's reference run.
_FAULTS_SWEEP_RATES = (0.0, 0.0001, 0.0002, 0.0005)
_FAULTS_SWEEP_SEEDS = tuple(range(1, 13))
FAULTS_SWEEP_MODELS = (
    len(_FAULTS_SWEEP_RATES) * len(_FAULTS_SWEEP_SEEDS) + 1
)


def _faults_sweep_prepare(engine: str) -> Callable[[], Dict[str, int]]:
    """A whole reliability grid per round — the aggregate-throughput bench.

    The stepped/fast engines run the grid the way ``segbus faults``
    would (one in-process emulation per point, model construction
    included); the batch engine collapses it into one vectorized
    lockstep call.  The ticks pin the aggregated curve itself — counts
    per status plus every mean execution time at nanosecond granularity
    — so a batch-kernel shortcut that changed any measurement would trip
    the cross-engine equality assert, not just the baseline.
    """
    from repro.analysis.reliability import reliability_sweep

    application = mp3_decoder_psdf()
    platform = paper_platform(2, package_size=8)

    def run() -> Dict[str, int]:
        curve = reliability_sweep(
            application,
            platform,
            rates=_FAULTS_SWEEP_RATES,
            seeds=_FAULTS_SWEEP_SEEDS,
            engine=engine,
            workers=1,
        )
        ticks: Dict[str, int] = {
            "completed": sum(p.completed for p in curve.points),
            "degraded": sum(p.degraded for p in curve.points),
            "failed": sum(p.failed for p in curve.points),
            "baseline_ns": int(
                round(curve.baseline_execution_time_us * 1000)
            ),
        }
        for point in curve.points:
            ticks[f"r{point.rate:g}_mean_ns"] = int(
                round(point.mean_execution_time_us * 1000)
            )
        return ticks

    return run


def _faults_sweep(engine: str = "fast") -> Dict[str, int]:
    return _faults_sweep_prepare(engine)()


#: the estimator-vs-emulation DSE grid: MP3 across segment counts and
#: (small) package sizes.  Small packages multiply the emulated event
#: count but leave the estimator's schedule-pass cost untouched — exactly
#: the regime where a static estimate must pay off as a pruning inner loop.
_DSE_SWEEP_CANDIDATES: Tuple[Tuple[int, int], ...] = tuple(
    (segments, size) for segments in (2, 3) for size in (3, 4, 6)
)


def _dse_sweep_specs() -> Dict[Tuple[int, int], PlatformSpec]:
    return {
        (segments, size): PlatformSpec.from_platform(
            paper_platform(segments, package_size=size)
        )
        for segments, size in _DSE_SWEEP_CANDIDATES
    }


def _dse_sweep_prepare(engine: str) -> Callable[[], Dict[str, int]]:
    """Emulate every candidate of the DSE grid under one kernel."""
    application = mp3_decoder_psdf()
    specs = _dse_sweep_specs()
    cls = simulation_class(engine)

    def run() -> Dict[str, int]:
        ticks: Dict[str, int] = {"events": 0}
        for (segments, size), spec in specs.items():
            sim = cls(application, spec).run()
            ticks["events"] += sim.queue.executed
            ticks[f"g{segments}s{size}_execution_time_ps"] = fs_to_ps(
                sim.execution_time_fs()
            )
        return ticks

    return run


def _dse_sweep_estimator() -> Callable[[], Dict[str, int]]:
    """Score the same DSE grid with the stochastic estimator (no kernel)."""
    from repro.analysis.stochastic import stochastic_estimate

    application = mp3_decoder_psdf()
    specs = _dse_sweep_specs()

    def run() -> Dict[str, int]:
        ticks: Dict[str, int] = {}
        for (segments, size), spec in specs.items():
            estimate = stochastic_estimate(application, spec)
            ticks[f"g{segments}s{size}_estimate_ps"] = fs_to_ps(
                estimate.execution_time_fs
            )
        return ticks

    return run


def _dse_estimator_sweep(engine: str = "fast") -> Dict[str, int]:
    return _dse_sweep_prepare(engine)()


def _multimode_prepare(engine: str) -> Callable[[], Dict[str, int]]:
    """The mp3_jpeg_multimode scenario: per-mode runs + composed switches.

    Built once outside the timed region; the thunk re-executes both mode
    kernels and the composition.  The ticks pin the composed total, the
    transition charges, the switch count and every phase span, so a drift
    in any per-mode kernel *or* in the transition accounting trips the
    cross-engine equality assert and the baseline alike.
    """
    # lazy: the workload catalog pulls in the generators (numpy + lint)
    from repro.apps.workloads import workload_model
    from repro.emulator.multimode import run_multimode

    workload = workload_model("mp3_jpeg_multimode")
    spec = PlatformSpec.from_platform(workload.platform)

    def run() -> Dict[str, int]:
        composed = run_multimode(workload.application, spec, engine=engine)
        ticks: Dict[str, int] = {
            "events": composed.total_events,
            "execution_time_ps": composed.execution_time_ps,
            "transition_ps": fs_to_ps(composed.transition_total_fs),
            "switches": composed.switch_count,
        }
        for phase in composed.phases:
            ticks[f"phase{phase.index}_{phase.mode}_ps"] = fs_to_ps(
                phase.phase_fs
            )
        return ticks

    return run


def _multimode_switch(engine: str = "fast") -> Dict[str, int]:
    return _multimode_prepare(engine)()


def _random_oracle_batch() -> Dict[str, int]:
    from repro.testing.generators import generate_models
    from repro.testing.oracles import run_differential_oracle

    events = 0
    violations = 0
    for model in generate_models(20, base_seed=9000):
        report = run_differential_oracle(
            model.application, model.platform, label=model.label
        )
        events += report.total_events
        violations += len(report.violations)
    return {"events": events, "violations": violations}


def _serve_run() -> Dict[str, int]:
    from repro.serve.bench import serve_round

    return serve_round(resolve_engine(None))


def _serve_prepare(engine: str) -> Callable[[], Dict[str, int]]:
    # lazy: the serving harness boots real HTTP servers; keep
    # `segbus bench --list` and non-serving runs free of that cost
    from repro.serve.bench import serve_prepare

    return serve_prepare(engine)


def _serve_metrics(engine: str) -> Dict[str, float]:
    from repro.serve.bench import service_metrics

    return service_metrics(engine)


#: requests per serve_throughput round — mirrors
#: repro.serve.bench.BENCH_REQUESTS (pinned equal by a unit test; kept
#: literal here so the registry stays import-lazy)
_SERVE_BENCH_REQUESTS = 120


SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        "mp3_1seg_emulate",
        "MP3 decoder on the single-segment paper platform",
        lambda: _mp3_emulate(1),
        prepare=lambda engine: _mp3_prepare(1, engine),
    ),
    BenchScenario(
        "mp3_2seg_emulate",
        "MP3 decoder on the two-segment paper platform",
        lambda: _mp3_emulate(2),
        prepare=lambda engine: _mp3_prepare(2, engine),
        # was 3.0 before clock periods were cached (units.py): the stepped
        # reference makes far more period_fs calls per event than the fast
        # kernel, so the uniform caching win compressed this ratio to ~3x —
        # the pin keeps margin for host jitter while still catching a real
        # fast-kernel regression
        speedup_min=2.5,
    ),
    BenchScenario(
        "mp3_3seg_emulate",
        "MP3 decoder on the three-segment paper platform (headline case)",
        lambda: _mp3_emulate(3),
        prepare=lambda engine: _mp3_prepare(3, engine),
    ),
    BenchScenario(
        "jpeg_2seg_emulate",
        "JPEG decoder on the two-segment platform",
        lambda: _jpeg_emulate(2),
        prepare=lambda engine: _jpeg_prepare(2, engine),
    ),
    BenchScenario(
        "mp3_3seg_analytic",
        "Analytic estimator over the three-segment MP3 mapping",
        _mp3_analytic,
    ),
    BenchScenario(
        "mp3_package_sweep",
        "MP3 three-segment emulation across package sizes 9/18/36",
        _mp3_package_sweep,
        prepare=_sweep_prepare,
    ),
    BenchScenario(
        "faults_sweep",
        "MP3 two-segment reliability grid (4 rates x 12 seeds + baseline)",
        _faults_sweep,
        prepare=_faults_sweep_prepare,
        speedup_min_batch=5.0,
        models_per_round=FAULTS_SWEEP_MODELS,
    ),
    BenchScenario(
        "dse_estimator_sweep",
        "MP3 DSE grid (2-3 segments x package sizes 3/4/6): emulate vs "
        "stochastic estimate",
        _dse_estimator_sweep,
        prepare=_dse_sweep_prepare,
        prepare_estimator=_dse_sweep_estimator,
        estimator_speedup_min=50.0,
        models_per_round=len(_DSE_SWEEP_CANDIDATES),
    ),
    BenchScenario(
        "multimode_switch",
        "MP3<->JPEG two-phase multi-mode composition with transition "
        "charges",
        _multimode_switch,
        prepare=_multimode_prepare,
        models_per_round=2,
    ),
    BenchScenario(
        "random_oracle_batch",
        "20 generated models through the differential oracle",
        _random_oracle_batch,
    ),
    BenchScenario(
        "serve_throughput",
        "HTTP serving: 120 seeded repeat-heavy requests over real sockets "
        "against the digest-keyed result cache",
        _serve_run,
        prepare=_serve_prepare,
        models_per_round=_SERVE_BENCH_REQUESTS,
        service_metrics=_serve_metrics,
        cache_hit_rate_min=0.9,
    ),
)

SCENARIO_NAMES: Tuple[str, ...] = tuple(s.name for s in SCENARIOS)


def scenario(name: str) -> BenchScenario:
    for item in SCENARIOS:
        if item.name == name:
            return item
    raise SegBusError(
        f"unknown bench scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}"
    )


# ---------------------------------------------------------------------------
# running and checking
# ---------------------------------------------------------------------------


def _time_runs(
    run: Callable[[], Dict[str, int]], repeats: int
) -> Tuple[Dict[str, int], List[float]]:
    """Ticks from the last run plus the sorted wall times (ms)."""
    walls: List[float] = []
    ticks: Dict[str, int] = {}
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        ticks = run()
        walls.append((time.perf_counter() - start) * 1e3)
    walls.sort()
    return ticks, walls


def _percentiles(walls: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank p50/p90/p99 of the per-round walls (jitter profile)."""
    ordered = sorted(walls)
    out: Dict[str, float] = {}
    for q in (50, 90, 99):
        rank = max(0, min(len(ordered) - 1, -(-q * len(ordered) // 100) - 1))
        out[f"p{q}"] = ordered[rank]
    return out


def _traced_peak_kb(run: Callable[[], Dict[str, int]]) -> int:
    """Peak traced allocation of one (untimed) round, in KiB."""
    tracemalloc.start()
    try:
        run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak // 1024)


def run_scenario(
    item: BenchScenario,
    repeats: int = 3,
    inject_slowdown: float = 1.0,
    engine: Optional[str] = None,
) -> BenchResult:
    """Run one scenario ``repeats`` times; keep ticks, best and median wall.

    Engine-aware scenarios are timed once per engine (every engine by
    default, a single one when ``engine`` names it); their tick counters
    must be exact-equal across engines or the run itself fails.  The
    headline ``wall_ms``/``wall_median_ms`` pair reports the *fast*
    engine (the default execution path); the other engines' walls live
    in ``engine_wall_ms``.  The warm-up round doubles as the memory
    round: it runs untimed under ``tracemalloc`` and records the peak.
    ``inject_slowdown`` scales every engine's wall uniformly so the wall
    gate trips regardless of which engine feeds it (the speedup ratios,
    taken per round, are invariant to a uniform factor by design).
    """
    repeats = max(1, repeats)
    factor = max(inject_slowdown, 0.0)
    if item.prepare is None:
        ticks, walls = _time_runs(item.run, repeats)
        return BenchResult(
            name=item.name,
            ticks=ticks,
            wall_ms=walls[0] * factor,
            wall_median_ms=walls[len(walls) // 2] * factor,
            repeats=repeats,
        )
    engines = ENGINE_NAMES if engine is None else (resolve_engine(engine),)
    runners = {name: item.prepare(name) for name in engines}
    estimator_runner = (
        item.prepare_estimator() if item.prepare_estimator is not None else None
    )
    ticks_by: Dict[str, Dict[str, int]] = {}
    raw_walls: Dict[str, List[float]] = {name: [] for name in engines}
    estimator_walls: List[float] = []
    estimator_ticks: Dict[str, int] = {}
    peak_mem_kb: Dict[str, int] = {}
    for name in engines:  # untimed warm-up round, traced for peak memory
        peak_mem_kb[name] = _traced_peak_kb(runners[name])
        ticks_by[name] = runners[name]()
    if estimator_runner is not None:
        peak_mem_kb["estimator"] = _traced_peak_kb(estimator_runner)
        estimator_ticks = estimator_runner()
    # interleave the engines round by round: host-load episodes (CPU
    # scaling, noisy neighbours) then hit every engine alike, so the
    # per-round ratios stay meaningful even when absolute walls jitter
    for _ in range(repeats):
        for name in engines:
            start = time.perf_counter()
            ticks_by[name] = runners[name]()
            raw_walls[name].append((time.perf_counter() - start) * 1e3)
        if estimator_runner is not None:
            start = time.perf_counter()
            estimator_ticks = estimator_runner()
            estimator_walls.append((time.perf_counter() - start) * 1e3)
    reference = ticks_by[engines[0]]
    for name in engines[1:]:
        if ticks_by[name] != reference:
            raise SegBusError(
                f"{item.name}: tick counters diverge between engines — "
                f"{engines[0]} says {reference}, {name} says "
                f"{ticks_by[name]} (the engines must be tick-for-tick "
                "equivalent; run `segbus selftest` to localize)"
            )
    # the estimator is a pseudo-engine: its ticks are pinned in the
    # baseline too (the estimate is deterministic) but under an ``est_``
    # prefix, outside the cross-engine equality above — an expected TCT
    # is not an emulated TCT
    ticks = dict(reference)
    for key, value in estimator_ticks.items():
        ticks[f"est_{key}"] = value

    def _ratio(numer: str, denom: str) -> Optional[float]:
        if numer not in raw_walls or denom not in raw_walls:
            return None
        ratios = sorted(
            n / d
            for n, d in zip(raw_walls[numer], raw_walls[denom])
            if d > 0
        )
        return ratios[len(ratios) // 2] if ratios else None

    primary = "fast" if "fast" in raw_walls else engines[0]
    walls = sorted(raw_walls[primary])
    engine_wall_ms = {
        name: sorted(times)[len(times) // 2] * factor
        for name, times in raw_walls.items()
    }
    estimator_wall_ms: Optional[float] = None
    estimator_speedup: Optional[float] = None
    if estimator_walls:
        ordered = sorted(estimator_walls)
        estimator_wall_ms = ordered[len(ordered) // 2] * factor
        if "batch" in raw_walls:  # per-round ratio, like _ratio above
            ratios = sorted(
                b / e
                for b, e in zip(raw_walls["batch"], estimator_walls)
                if e > 0
            )
            if ratios:
                estimator_speedup = ratios[len(ratios) // 2]
    service: Dict[str, Dict[str, float]] = {}
    if item.service_metrics is not None:
        # wall-side serving metrics of each engine's *last* timed round
        service = {
            name: dict(item.service_metrics(name)) for name in engines
        }
    return BenchResult(
        name=item.name,
        ticks=ticks,
        wall_ms=walls[0] * factor,
        wall_median_ms=walls[len(walls) // 2] * factor,
        repeats=repeats,
        engine_wall_ms=engine_wall_ms,
        speedup=_ratio("stepped", "fast"),
        batch_speedup=_ratio("stepped", "batch"),
        throughput_models_per_s={
            name: item.models_per_round * 1e3 / median
            for name, median in engine_wall_ms.items()
            if median > 0
        },
        jitter_ms={
            name: {p: v * factor for p, v in _percentiles(times).items()}
            for name, times in raw_walls.items()
        },
        peak_mem_kb=peak_mem_kb,
        estimator_wall_ms=estimator_wall_ms,
        estimator_speedup=estimator_speedup,
        service=service,
    )


@dataclass(frozen=True)
class _BenchJob:
    """One scenario *by name* — the registry's lambdas never pickle.

    The worker resolves :func:`scenario` locally and times it there, so
    the job carries only primitives.  The checkpoint digest includes the
    full measurement recipe; note that journaled wall times are replayed
    verbatim on ``resume`` (deterministic ticks are, wall clocks are
    measurements of the original run).
    """

    name: str
    repeats: int
    inject_slowdown: float
    engine: Optional[str]

    @property
    def label(self) -> str:
        return self.name

    def digest(self) -> str:
        return canonical_digest(
            self.name,
            self.repeats,
            repr(self.inject_slowdown),
            self.engine or "",
        )


def _run_bench_job(job: _BenchJob) -> BenchResult:
    return run_scenario(
        scenario(job.name),
        repeats=job.repeats,
        inject_slowdown=job.inject_slowdown,
        engine=job.engine,
    )


def run_bench(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    inject_slowdown: float = 1.0,
    engine: Optional[str] = None,
    workers: Optional[int] = 1,
    executor_policy: Optional[ExecutorPolicy] = None,
    checkpoint_dir=None,
    checkpoint_name: Optional[str] = None,
    resume: bool = False,
) -> List[BenchResult]:
    """Run the selected scenarios through the supervised executor.

    ``workers`` defaults to 1 — wall-clock numbers from scenarios timed
    concurrently on the same host would contend for CPU and gate
    unreliably — but the retry/timeout/checkpoint machinery still
    applies on the serial path (timeouts need ``workers >= 2``).
    """
    selected = (
        [scenario(n) for n in names] if names else list(SCENARIOS)
    )
    jobs = [
        _BenchJob(
            name=item.name,
            repeats=repeats,
            inject_slowdown=inject_slowdown,
            engine=engine,
        )
        for item in selected
    ]
    executor = CampaignExecutor(
        _run_bench_job,
        policy=executor_policy,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name,
        resume=resume,
    )
    batch = executor.run(jobs).raise_on_failure(what="bench scenario")
    return list(batch.results)


def baseline_path(name: str, baseline_dir: Union[str, Path]) -> Path:
    return Path(baseline_dir) / f"BENCH_{name}.json"


def write_baselines(
    results: Sequence[BenchResult],
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
) -> List[Path]:
    directory = Path(baseline_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for result in results:
        path = baseline_path(result.name, directory)
        path.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def load_baseline(name: str, baseline_dir: Union[str, Path]) -> BenchResult:
    path = baseline_path(name, baseline_dir)
    if not path.is_file():
        raise SegBusError(
            f"no baseline for scenario {name!r} at {path} — run "
            "`segbus bench --update` once and commit the files"
        )
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise SegBusError(
            f"baseline {path}: unsupported version {data.get('version')!r}"
        )
    speedup = data.get("speedup")
    batch_speedup = data.get("batch_speedup")
    return BenchResult(
        name=str(data["name"]),
        ticks={str(k): int(v) for k, v in dict(data["ticks"]).items()},
        wall_ms=float(data["wall_ms"]),
        wall_median_ms=float(data["wall_median_ms"]),
        repeats=int(data["repeats"]),
        engine_wall_ms={
            str(k): float(v)
            for k, v in dict(data.get("engine_wall_ms", {})).items()
        },
        speedup=float(speedup) if speedup is not None else None,
        batch_speedup=(
            float(batch_speedup) if batch_speedup is not None else None
        ),
        throughput_models_per_s={
            str(k): float(v)
            for k, v in dict(data.get("throughput_models_per_s", {})).items()
        },
        jitter_ms={
            str(engine): {str(p): float(v) for p, v in dict(pcts).items()}
            for engine, pcts in dict(data.get("jitter_ms", {})).items()
        },
        peak_mem_kb={
            str(k): int(v)
            for k, v in dict(data.get("peak_mem_kb", {})).items()
        },
        estimator_wall_ms=(
            float(data["estimator_wall_ms"])
            if data.get("estimator_wall_ms") is not None
            else None
        ),
        estimator_speedup=(
            float(data["estimator_speedup"])
            if data.get("estimator_speedup") is not None
            else None
        ),
        service={
            str(engine): {str(m): float(v) for m, v in dict(metrics).items()}
            for engine, metrics in dict(data.get("service", {})).items()
        },
    )


def check_bench(
    results: Sequence[BenchResult],
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
    wall_ratio_max: float = DEFAULT_WALL_RATIO_MAX,
    check_wall: bool = True,
) -> BenchCheck:
    """Fail on tick drift, wall regression, or a speedup below the pin.

    The per-scenario ``speedup_min`` gate runs even with
    ``check_wall=False``: both engines are timed on the *same* host in
    the same run, so their ratio is robust to runner heterogeneity in a
    way absolute wall time is not.
    """
    check = BenchCheck()
    for result in results:
        check.checked += 1
        baseline = load_baseline(result.name, baseline_dir)
        for key in sorted(set(baseline.ticks) | set(result.ticks)):
            before = baseline.ticks.get(key)
            after = result.ticks.get(key)
            if before != after:
                check.failures.append(
                    f"{result.name}: tick {key} drifted {before} -> {after} "
                    "(behaviour change — fix it or re-pin with "
                    "`segbus bench --update`)"
                )
        try:
            item = scenario(result.name)
            speedup_min = item.speedup_min
            speedup_min_batch = item.speedup_min_batch
            estimator_min = item.estimator_speedup_min
            hit_rate_min = item.cache_hit_rate_min
        except SegBusError:  # pragma: no cover - results come from the registry
            speedup_min = speedup_min_batch = estimator_min = None
            hit_rate_min = None
        for gate_min, measured, kernel in (
            (speedup_min, result.speedup, "fast"),
            (speedup_min_batch, result.batch_speedup, "batch"),
        ):
            if gate_min is None:
                continue
            if measured is None:
                check.notes.append(
                    f"{result.name}: {kernel} speedup gate (≥{gate_min}x) "
                    "skipped — run without --engine to time every engine"
                )
            elif measured < gate_min:
                check.failures.append(
                    f"{result.name}: {kernel} engine speedup {measured:.2f}x "
                    f"below the pinned minimum {gate_min}x "
                    f"({kernel}-kernel perf regression)"
                )
        if estimator_min is not None:
            if result.estimator_speedup is None:
                check.notes.append(
                    f"{result.name}: estimator speedup gate "
                    f"(≥{estimator_min}x) skipped — needs the batch engine "
                    "timed in the same run (no --engine restriction)"
                )
            elif result.estimator_speedup < estimator_min:
                check.failures.append(
                    f"{result.name}: stochastic estimator only "
                    f"{result.estimator_speedup:.2f}x faster than the batch "
                    f"engine, below the pinned minimum {estimator_min}x "
                    "(estimator perf regression)"
                )
        if hit_rate_min is not None:
            # from the ticks, not the wall side: reused/requests is
            # deterministic (request coalescing pins computations per
            # cache epoch), so this gate holds even under --no-wall
            requests = result.ticks.get("requests", 0)
            reused = result.ticks.get("reused", 0)
            if requests <= 0:
                check.notes.append(
                    f"{result.name}: cache hit-rate gate "
                    f"(≥{hit_rate_min:.0%}) skipped — no 'requests' tick"
                )
            elif reused / requests < hit_rate_min:
                check.failures.append(
                    f"{result.name}: cache hit rate "
                    f"{reused / requests:.1%} ({reused}/{requests}) below "
                    f"the pinned minimum {hit_rate_min:.0%} "
                    "(result-cache regression)"
                )
        if not check_wall:
            continue
        # median vs median: the best-of-N envelope fluctuates ~2x on busy
        # hosts, but the median is a stable typical-cost center on both
        # sides, so ratio x median separates regressions from noise
        limit = baseline.wall_median_ms * wall_ratio_max
        if result.wall_median_ms > limit:
            check.failures.append(
                f"{result.name}: median wall {result.wall_median_ms:.1f} ms "
                f"exceeds {wall_ratio_max}x baseline median "
                f"{baseline.wall_median_ms:.1f} ms (perf regression)"
            )
        elif result.wall_median_ms * wall_ratio_max < baseline.wall_median_ms:
            check.notes.append(
                f"{result.name}: median wall {result.wall_median_ms:.1f} ms "
                f"is much faster than baseline "
                f"{baseline.wall_median_ms:.1f} ms — consider re-pinning"
            )
    return check


def format_results(results: Sequence[BenchResult]) -> str:
    lines = [
        f"{'scenario':<24} {'wall_ms':>10} {'speedup':>8} {'batch':>8} "
        f"{'est':>8}  ticks"
    ]
    for result in results:
        ticks = ", ".join(
            f"{k}={v}" for k, v in sorted(result.ticks.items())
        )
        speedup = (
            f"{result.speedup:.2f}x" if result.speedup is not None else "-"
        )
        batch = (
            f"{result.batch_speedup:.2f}x"
            if result.batch_speedup is not None
            else "-"
        )
        est = (
            f"{result.estimator_speedup:.0f}x"
            if result.estimator_speedup is not None
            else "-"
        )
        lines.append(
            f"{result.name:<24} {result.wall_ms:>10.1f} {speedup:>8} "
            f"{batch:>8} {est:>8}  {ticks}"
        )
    return "\n".join(lines)
