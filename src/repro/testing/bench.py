"""Headless perf-regression bench: deterministic ticks + wall-clock gates.

``benchmarks/`` holds the pytest-benchmark studies (tables, figures,
ablations) for humans; this module distills the same workloads into a
small registry of *headless* scenarios that ``segbus bench`` can run in
CI without pytest plugins.  Each scenario reports two things:

* **ticks** — deterministic workload counters (executed events, CA TCT,
  execution time in ps).  These must match the committed baseline
  *exactly*: a tick drift means the emulator's behaviour changed, which
  is either a bug or a change that must re-pin the baselines.
* **wall_ms / wall_median_ms** — the best and the median of ``repeats``
  wall-clock runs.  The gate compares median against median with a ratio
  (default 1.5×, so a genuine 2× slowdown fails): the best-of-N envelope
  fluctuates ~2× on busy hosts, but the median is a stable "typical
  cost" center on both sides.  Absolute wall time is machine-dependent;
  ``--no-wall`` skips the gate entirely for heterogeneous CI runners.

Baselines live in ``benchmarks/baselines/BENCH_<scenario>.json`` and are
(re)written by ``segbus bench --update``.  ``--inject-slowdown N`` is a
self-test hook that multiplies the measured wall time, used by the test
suite to prove the gate actually trips.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.analytic import analytic_estimate
from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.errors import SegBusError
from repro.units import fs_to_ps

BASELINE_VERSION = 1
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"
#: wall-clock gate: measured may be at most this multiple of the baseline
DEFAULT_WALL_RATIO_MAX = 1.5


@dataclass(frozen=True)
class BenchScenario:
    """One headless workload: ``run`` returns its deterministic ticks."""

    name: str
    description: str
    run: Callable[[], Dict[str, int]]


@dataclass(frozen=True)
class BenchResult:
    """Ticks plus best/median observed wall time for one scenario."""

    name: str
    ticks: Dict[str, int]
    wall_ms: float
    wall_median_ms: float
    repeats: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "name": self.name,
            "ticks": dict(sorted(self.ticks.items())),
            "wall_ms": round(self.wall_ms, 3),
            "wall_median_ms": round(self.wall_median_ms, 3),
            "repeats": self.repeats,
        }


@dataclass
class BenchCheck:
    """Outcome of comparing results against the committed baselines."""

    failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [
            f"bench check: {self.checked} scenario(s), "
            + ("ok" if self.ok else f"{len(self.failures)} failure(s)")
        ]
        lines.extend(f"  FAIL {f}" for f in self.failures)
        lines.extend(f"  note {n}" for n in self.notes)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# scenario registry
# ---------------------------------------------------------------------------


def _emulate_ticks(application, platform) -> Dict[str, int]:
    spec = PlatformSpec.from_platform(platform)
    sim = Simulation(application, spec).run()
    return {
        "events": sim.queue.executed,
        "ca_tct": sim.ca.counters.tct,
        "execution_time_ps": fs_to_ps(sim.execution_time_fs()),
    }


def _mp3_emulate(segment_count: int) -> Dict[str, int]:
    return _emulate_ticks(mp3_decoder_psdf(), paper_platform(segment_count))


def _jpeg_emulate(segment_count: int) -> Dict[str, int]:
    return _emulate_ticks(jpeg_decoder_psdf(), jpeg_platform(segment_count))


def _mp3_analytic() -> Dict[str, int]:
    application = mp3_decoder_psdf()
    spec = PlatformSpec.from_platform(paper_platform(3))
    estimate = analytic_estimate(application, spec)
    return {"execution_time_ps": fs_to_ps(estimate.execution_time_fs)}


def _mp3_package_sweep() -> Dict[str, int]:
    application = mp3_decoder_psdf()
    ticks: Dict[str, int] = {"events": 0}
    for size in (9, 18, 36):
        spec = PlatformSpec.from_platform(paper_platform(3, package_size=size))
        sim = Simulation(application, spec).run()
        ticks["events"] += sim.queue.executed
        ticks[f"s{size}_execution_time_ps"] = fs_to_ps(
            sim.execution_time_fs()
        )
    return ticks


def _random_oracle_batch() -> Dict[str, int]:
    from repro.testing.generators import generate_models
    from repro.testing.oracles import run_differential_oracle

    events = 0
    violations = 0
    for model in generate_models(20, base_seed=9000):
        report = run_differential_oracle(
            model.application, model.platform, label=model.label
        )
        events += report.total_events
        violations += len(report.violations)
    return {"events": events, "violations": violations}


SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        "mp3_1seg_emulate",
        "MP3 decoder on the single-segment paper platform",
        lambda: _mp3_emulate(1),
    ),
    BenchScenario(
        "mp3_2seg_emulate",
        "MP3 decoder on the two-segment paper platform",
        lambda: _mp3_emulate(2),
    ),
    BenchScenario(
        "mp3_3seg_emulate",
        "MP3 decoder on the three-segment paper platform (headline case)",
        lambda: _mp3_emulate(3),
    ),
    BenchScenario(
        "jpeg_2seg_emulate",
        "JPEG decoder on the two-segment platform",
        lambda: _jpeg_emulate(2),
    ),
    BenchScenario(
        "mp3_3seg_analytic",
        "Analytic estimator over the three-segment MP3 mapping",
        _mp3_analytic,
    ),
    BenchScenario(
        "mp3_package_sweep",
        "MP3 three-segment emulation across package sizes 9/18/36",
        _mp3_package_sweep,
    ),
    BenchScenario(
        "random_oracle_batch",
        "20 generated models through the differential oracle",
        _random_oracle_batch,
    ),
)

SCENARIO_NAMES: Tuple[str, ...] = tuple(s.name for s in SCENARIOS)


def scenario(name: str) -> BenchScenario:
    for item in SCENARIOS:
        if item.name == name:
            return item
    raise SegBusError(
        f"unknown bench scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}"
    )


# ---------------------------------------------------------------------------
# running and checking
# ---------------------------------------------------------------------------


def run_scenario(
    item: BenchScenario, repeats: int = 3, inject_slowdown: float = 1.0
) -> BenchResult:
    """Run one scenario ``repeats`` times; keep ticks, best and median wall."""
    walls: List[float] = []
    ticks: Dict[str, int] = {}
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        ticks = item.run()
        walls.append((time.perf_counter() - start) * 1e3)
    walls.sort()
    median_ms = walls[len(walls) // 2]
    factor = max(inject_slowdown, 0.0)
    return BenchResult(
        name=item.name,
        ticks=ticks,
        wall_ms=walls[0] * factor,
        wall_median_ms=median_ms * factor,
        repeats=max(1, repeats),
    )


def run_bench(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    inject_slowdown: float = 1.0,
) -> List[BenchResult]:
    selected = (
        [scenario(n) for n in names] if names else list(SCENARIOS)
    )
    return [
        run_scenario(item, repeats=repeats, inject_slowdown=inject_slowdown)
        for item in selected
    ]


def baseline_path(name: str, baseline_dir: Union[str, Path]) -> Path:
    return Path(baseline_dir) / f"BENCH_{name}.json"


def write_baselines(
    results: Sequence[BenchResult],
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
) -> List[Path]:
    directory = Path(baseline_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for result in results:
        path = baseline_path(result.name, directory)
        path.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def load_baseline(name: str, baseline_dir: Union[str, Path]) -> BenchResult:
    path = baseline_path(name, baseline_dir)
    if not path.is_file():
        raise SegBusError(
            f"no baseline for scenario {name!r} at {path} — run "
            "`segbus bench --update` once and commit the files"
        )
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise SegBusError(
            f"baseline {path}: unsupported version {data.get('version')!r}"
        )
    return BenchResult(
        name=str(data["name"]),
        ticks={str(k): int(v) for k, v in dict(data["ticks"]).items()},
        wall_ms=float(data["wall_ms"]),
        wall_median_ms=float(data["wall_median_ms"]),
        repeats=int(data["repeats"]),
    )


def check_bench(
    results: Sequence[BenchResult],
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
    wall_ratio_max: float = DEFAULT_WALL_RATIO_MAX,
    check_wall: bool = True,
) -> BenchCheck:
    """Fail on any tick drift, or wall-clock regression past the ratio."""
    check = BenchCheck()
    for result in results:
        check.checked += 1
        baseline = load_baseline(result.name, baseline_dir)
        for key in sorted(set(baseline.ticks) | set(result.ticks)):
            before = baseline.ticks.get(key)
            after = result.ticks.get(key)
            if before != after:
                check.failures.append(
                    f"{result.name}: tick {key} drifted {before} -> {after} "
                    "(behaviour change — fix it or re-pin with "
                    "`segbus bench --update`)"
                )
        if not check_wall:
            continue
        # median vs median: the best-of-N envelope fluctuates ~2x on busy
        # hosts, but the median is a stable typical-cost center on both
        # sides, so ratio x median separates regressions from noise
        limit = baseline.wall_median_ms * wall_ratio_max
        if result.wall_median_ms > limit:
            check.failures.append(
                f"{result.name}: median wall {result.wall_median_ms:.1f} ms "
                f"exceeds {wall_ratio_max}x baseline median "
                f"{baseline.wall_median_ms:.1f} ms (perf regression)"
            )
        elif result.wall_median_ms * wall_ratio_max < baseline.wall_median_ms:
            check.notes.append(
                f"{result.name}: median wall {result.wall_median_ms:.1f} ms "
                f"is much faster than baseline "
                f"{baseline.wall_median_ms:.1f} ms — consider re-pinning"
            )
    return check


def format_results(results: Sequence[BenchResult]) -> str:
    lines = [f"{'scenario':<24} {'wall_ms':>10}  ticks"]
    for result in results:
        ticks = ", ".join(
            f"{k}={v}" for k, v in sorted(result.ticks.items())
        )
        lines.append(f"{result.name:<24} {result.wall_ms:>10.1f}  {ticks}")
    return "\n".join(lines)
