"""Digest-keyed LRU result cache with byte/entry caps and counters.

Values are the canonical response *bytes* (never parsed objects): a hit
replays exactly what the first computation served, which is what makes
the cache-correctness contract — repeat submissions return the identical
report — trivially byte-exact (tests/serve/test_cache.py).

Thread-safe: the service's request threads hit :meth:`ResultCache.get`
concurrently while the dispatcher calls :meth:`ResultCache.put`.
Eviction is strict LRU over both caps; an over-cap value is refused
outright (counted in ``oversized``) rather than evicting the whole
cache for one giant entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

#: default caps — generous for report JSON (tens of KiB each)
DEFAULT_MAX_ENTRIES = 1024
DEFAULT_MAX_BYTES = 64 << 20


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the counters (taken under the lock)."""

    hits: int
    misses: int
    evictions: int
    oversized: int
    entries: int
    bytes: int
    max_entries: int
    max_bytes: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "oversized": self.oversized,
            "entries": self.entries,
            "bytes": self.bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU map of cache key (SHA-256 hex) to cached response bytes."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._oversized = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Presence probe — no counter or recency side effects (tests)."""
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[bytes]:
        """The cached bytes for ``key``, refreshing recency; None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: str) -> Optional[bytes]:
        """Like :meth:`get` but with no counter or recency side effects.

        The service's post-validation re-check uses this so one request
        never counts two lookups against the hit rate.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: bytes) -> bool:
        """Store ``value``; evict LRU entries until both caps hold.

        Returns False (and stores nothing) when the value alone exceeds
        the byte cap.  Re-putting an existing key replaces the value —
        there is never a window where a lookup can see the old bytes
        after the new ones were stored.
        """
        size = len(value)
        with self._lock:
            if size > self.max_bytes:
                self._oversized += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = value
            self._bytes += size
            while (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self._evictions += 1
            return True

    def invalidate(self, key: str) -> bool:
        with self._lock:
            value = self._entries.pop(key, None)
            if value is None:
                return False
            self._bytes -= len(value)
            return True

    def clear(self) -> None:
        """Drop every entry and reset the counters (bench rounds do this)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._oversized = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                oversized=self._oversized,
                entries=len(self._entries),
                bytes=self._bytes,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
            )
