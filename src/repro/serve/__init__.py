"""Simulation-as-a-service: the ``segbus serve`` subsystem.

The ROADMAP's production-serving item: a stdlib-HTTP front end that
validates emulate/estimate/lint/selftest jobs against the XML scheme
loaders, dispatches them through the supervised campaign-executor pool,
memoizes canonical response bytes in a digest-keyed LRU cache, and
coalesces compatible batch-engine emulations into vectorized
``run_batch`` groups.  See docs/SERVING.md for the API schema, cache
semantics and backpressure contract, and ``repro.serve.loadgen`` for
the seeded load generator the ``serve_throughput`` bench drives.
"""

from repro.serve.cache import CacheStats, ResultCache
from repro.serve.jobs import (
    JOB_KINDS,
    MAX_SELFTEST_COUNT,
    RESPONSE_SCHEMA_VERSION,
    ServeJob,
    cache_key,
    execute_job,
    parse_job,
    response_bytes,
    validate_job,
)
from repro.serve.server import SegbusHTTPServer, create_server
from repro.serve.service import (
    SegbusService,
    ServeResponse,
    ServiceConfig,
)

__all__ = [
    "CacheStats",
    "JOB_KINDS",
    "MAX_SELFTEST_COUNT",
    "RESPONSE_SCHEMA_VERSION",
    "ResultCache",
    "SegbusHTTPServer",
    "SegbusService",
    "ServeJob",
    "ServeResponse",
    "ServiceConfig",
    "cache_key",
    "create_server",
    "execute_job",
    "parse_job",
    "response_bytes",
    "validate_job",
]
